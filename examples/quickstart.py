#!/usr/bin/env python3
"""Quickstart: accelerate a pointer-chasing C loop with CGPA.

Compiles a small irregular kernel (linked-list sum-of-squares), shows the
pipeline partition CGPA derives, simulates the generated accelerator
cycle-accurately against the LegUp-style single-FSM baseline and the MIPS
soft-core model, and verifies all three agree on the result.

Run:  python examples/quickstart.py
"""

from repro.analysis import Shape
from repro.frontend import compile_c
from repro.hw import AcceleratorSystem, DirectMappedCache, run_on_mips
from repro.interp import Interpreter, malloc_site_table
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module

SOURCE = """
typedef struct node { double value; struct node* next; } node_t;
void* malloc(int n);

node_t* build(int n) {
    node_t* head = 0;
    for (int i = 0; i < n; i++) {
        node_t* fresh = (node_t*)malloc(sizeof(node_t));
        fresh->value = 0.25 * i;
        fresh->next = head;
        head = fresh;
    }
    return head;
}

double kernel(node_t* list) {
    double sum = 0.0;
    for ( ; list; list = list->next) {
        double v = list->value;
        sum += v * v;             /* heavy parallel work ... */
    }
    return sum;
}

void driver(void) { kernel(build(4)); }   /* binds args for analysis */
"""


def main() -> None:
    # 1. Compile and tell the analysis the heap region is an acyclic list
    #    (the fact shape analysis would derive from `build`).
    module = compile_c(SOURCE, "quickstart")
    optimize_module(module)
    from repro.analysis import RegionShapes
    shapes = RegionShapes()
    for site in malloc_site_table(module):
        shapes.declare(site, Shape.LIST)

    compiled = cgpa_compile(
        module, "kernel", shapes=shapes, policy=ReplicationPolicy.P1,
        n_workers=4,
    )
    print("CGPA partition:", compiled.signature)
    print(compiled.spec.describe())
    print()

    # 2. Build the workload once, functionally.
    workload = Interpreter(compiled.module)
    head = workload.call("build", [256])

    # 3. Reference result.
    reference = Interpreter(
        compiled.module, workload.memory.clone(),
        global_addresses=workload.global_addresses,
    )
    # The transformed module's `kernel` is now a hardware wrapper; use the
    # original module for a software reference.
    ref_module = compile_c(SOURCE, "ref")
    optimize_module(ref_module)
    ref_interp = Interpreter(ref_module)
    ref_head = ref_interp.call("build", [256])
    expected = ref_interp.call("kernel", [ref_head])

    # 4. MIPS soft core and LegUp-style baselines (original module).
    mips_mem = ref_interp.memory.clone()
    mips = run_on_mips(ref_module, "kernel", [ref_head], mips_mem,
                       global_addresses=ref_interp.global_addresses)
    legup_sys = AcceleratorSystem(
        ref_module, ref_interp.memory.clone(),
        cache=DirectMappedCache(ports=8),
        global_addresses=ref_interp.global_addresses,
    )
    legup = legup_sys.run("kernel", [ref_head])

    # 5. The CGPA pipelined accelerator.
    cgpa_sys = AcceleratorSystem(
        compiled.module, workload.memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=workload.global_addresses,
    )
    cgpa = cgpa_sys.run("kernel", [head])

    print(f"expected result : {expected:.6f}")
    print(f"MIPS   : {mips.cycles:7d} cycles  result={mips.return_value:.6f}")
    print(f"LegUp  : {legup.cycles:7d} cycles  result={legup.return_value:.6f}")
    print(f"CGPA   : {cgpa.cycles:7d} cycles  result={cgpa.return_value:.6f}")
    assert abs(mips.return_value - expected) < 1e-9
    assert abs(legup.return_value - expected) < 1e-9
    assert abs(cgpa.return_value - expected) < 1e-9
    print()
    print(f"speedup over MIPS : LegUp {mips.cycles / legup.cycles:.2f}x, "
          f"CGPA {mips.cycles / cgpa.cycles:.2f}x")
    print(f"speedup of CGPA over LegUp: {legup.cycles / cgpa.cycles:.2f}x")


if __name__ == "__main__":
    main()
