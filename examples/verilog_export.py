#!/usr/bin/env python3
"""Export the generated Verilog and testbench for a CGPA accelerator.

Runs the backend of Section 3.4 on the hash-indexing kernel: schedules
every task into an FSM under the paper's constraints (1)-(4), emits one
Verilog module per worker plus the support library (FIFO buffer and
live-out register cores), and a self-checking testbench.

Run:  python examples/verilog_export.py [output_dir]
"""

import pathlib
import sys

from repro.frontend import compile_c
from repro.kernels import HASH_INDEXING
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.rtl import (
    generate_testbench,
    generate_verilog,
    schedule_function,
    support_library,
)
from repro.transforms import optimize_module


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "verilog_out")
    out_dir.mkdir(exist_ok=True)

    module = compile_c(HASH_INDEXING.source, "hash_indexing")
    optimize_module(module)
    compiled = cgpa_compile(
        module, "kernel", shapes=HASH_INDEXING.shapes_for(module),
        policy=ReplicationPolicy.P1,
    )
    print(f"pipeline: {compiled.signature}")

    (out_dir / "cgpa_support.v").write_text(support_library())
    print(f"wrote {out_dir / 'cgpa_support.v'} (FIFO + live-out cores)")

    total_states = 0
    for task in compiled.result.tasks:
        schedule = schedule_function(task)
        total_states += schedule.total_states
        verilog = generate_verilog(task, schedule)
        path = out_dir / f"{task.name}.v"
        path.write_text(verilog)
        info = task.task_info
        print(f"wrote {path} "
              f"(stage {info.stage_index}, {schedule.total_states} FSM states)")

    tb = generate_testbench(compiled.result.tasks[0])
    tb_path = out_dir / f"tb_{compiled.result.tasks[0].name}.v"
    tb_path.write_text(tb)
    print(f"wrote {tb_path} (self-checking testbench)")
    print(f"\ntotal FSM states across stages: {total_states}")
    print("note: functional sign-off in this repo is done by the "
          "cycle-accurate co-simulator (see tests/test_kernels.py), "
          "which executes the same schedules.")


if __name__ == "__main__":
    main()
