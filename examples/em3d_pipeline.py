#!/usr/bin/env python3
"""Walkthrough: how CGPA pipelines the paper's em3d motivating example.

Shows each compiler phase on the paper's Fig. 1 loop: the PDG SCC
classification (parallel / replicable / sequential), the P1 vs P2
partitions of Table 2, the generated task IR with the Table 1 primitives
(produce / produce_broadcast / consume, the ``it & MASK`` worker dispatch
of Fig. 1(e)), and the resulting speedup under the cycle-accurate model.

Run:  python examples/em3d_pipeline.py
"""

from repro.frontend import compile_c
from repro.harness import run_kernel
from repro.ir import print_function
from repro.kernels import EM3D
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module


def main() -> None:
    module = compile_c(EM3D.source, "em3d")
    optimize_module(module)
    shapes = EM3D.shapes_for(module)

    print("=" * 72)
    print("Phase 1-2: PDG construction and SCC classification")
    print("=" * 72)
    compiled = cgpa_compile(
        module, "kernel", shapes=shapes, policy=ReplicationPolicy.P1
    )
    summary = compiled.pdg.summary()
    print(f"SCCs: {summary['parallel']} parallel, "
          f"{summary['replicable']} replicable, "
          f"{summary['sequential']} sequential")
    for scc in compiled.pdg.sccs:
        if scc.is_replicable:
            weight = "lightweight" if scc.is_lightweight else "HEAVYWEIGHT"
            print(f"  replicable SCC #{scc.index}: {len(scc.instructions)} "
                  f"insts, {weight} "
                  f"({'traversal' if not scc.is_lightweight else 'control'})")

    print()
    print("=" * 72)
    print("Phase 3: pipeline partition (paper Table 2)")
    print("=" * 72)
    print(f"P1 (heuristic): {compiled.signature}   <- traversal in a "
          f"sequential stage")
    module_p2 = compile_c(EM3D.source, "em3d_p2")
    compiled_p2 = cgpa_compile(
        module_p2, "kernel", shapes=EM3D.shapes_for(module_p2),
        policy=ReplicationPolicy.P2,
    )
    print(f"P2 (forced)   : {compiled_p2.signature}      <- traversal "
          f"replicated into all 4 workers (Fig. 1(b))")

    print()
    print("=" * 72)
    print("Phase 4: generated tasks (compare with paper Fig. 1(e))")
    print("=" * 72)
    for task in compiled.result.tasks:
        info = task.task_info
        kind = f"parallel x{info.n_workers}" if info.is_parallel else "sequential"
        print(f"--- stage {info.stage_index} ({kind}) ---")
        print(print_function(task))
        print()

    print("=" * 72)
    print("Phase 5: cycle-accurate simulation")
    print("=" * 72)
    run = run_kernel(EM3D, ("mips", "legup", "cgpa-p1", "cgpa-p2"))
    mips = run.results["mips"].cycles
    for backend in ("mips", "legup", "cgpa-p1", "cgpa-p2"):
        result = run.results[backend]
        print(f"{backend:8s}: {result.cycles:7d} cycles "
              f"({mips / result.cycles:4.2f}x vs MIPS)")
    p1 = run.results["cgpa-p1"]
    p2 = run.results["cgpa-p2"]
    print(f"\nP1 beats P2 by {100 * (p2.cycles / p1.cycles - 1):.0f}% "
          f"(paper: 6%) and uses "
          f"{100 * (1 - p1.energy_uj / p2.energy_uj):.0f}% less energy "
          f"(paper: 11%)")


if __name__ == "__main__":
    main()
