#!/usr/bin/env python3
"""Bring your own kernel: accelerate a user-written C loop.

Demonstrates the adoption path for code outside the paper's benchmark
set: a sparse matrix-vector product over a CSR-like structure with an
irregular inner loop — the kind of loop affine-only HLS tools give up on.
CGPA finds the row loop's parallel section automatically.

Run:  python examples/custom_kernel.py
"""

from repro.analysis import RegionShapes, Shape
from repro.frontend import compile_c
from repro.hw import AcceleratorSystem, DirectMappedCache, run_on_mips
from repro.interp import Interpreter, malloc_site_table
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module

SOURCE = """
void* malloc(int n);
int rng = 7;
int rnd(void) { rng = rng * 1103515245 + 12345; return (rng >> 16) & 0x7fff; }

unsigned arg_rowptr; unsigned arg_cols; unsigned arg_vals;
unsigned arg_x; unsigned arg_y; unsigned arg_nrows;

void setup(int nrows, int max_nnz_per_row) {
    int* rowptr = (int*)malloc((nrows + 1) * sizeof(int));
    int nnz = 0;
    rowptr[0] = 0;
    for (int r = 0; r < nrows; r++) {
        nnz += 1 + rnd() % max_nnz_per_row;
        rowptr[r + 1] = nnz;
    }
    int* cols = (int*)malloc(nnz * sizeof(int));
    double* vals = (double*)malloc(nnz * sizeof(double));
    for (int k = 0; k < nnz; k++) {
        cols[k] = rnd() % nrows;
        vals[k] = 0.001 * (rnd() % 1000);
    }
    double* x = (double*)malloc(nrows * sizeof(double));
    double* y = (double*)malloc(nrows * sizeof(double));
    for (int r = 0; r < nrows; r++) { x[r] = 0.01 * r; y[r] = 0.0; }
    arg_rowptr = (unsigned)rowptr; arg_cols = (unsigned)cols;
    arg_vals = (unsigned)vals; arg_x = (unsigned)x; arg_y = (unsigned)y;
    arg_nrows = (unsigned)nrows;
}

void spmv(int* rowptr, int* cols, double* vals, double* x, double* y, int nrows) {
    for (int r = 0; r < nrows; r++) {
        double acc = 0.0;
        int end = rowptr[r + 1];
        for (int k = rowptr[r]; k < end; k++)
            acc += vals[k] * x[cols[k]];
        y[r] = acc;                    /* y[r] is affine: parallel */
    }
}

void driver(void) {
    setup(4, 3);
    spmv((int*)arg_rowptr, (int*)arg_cols, (double*)arg_vals,
         (double*)arg_x, (double*)arg_y, (int)arg_nrows);
}
"""


def main() -> None:
    module = compile_c(SOURCE, "spmv")
    optimize_module(module)
    shapes = RegionShapes()
    for site in malloc_site_table(module):
        shapes.declare(site, Shape.LIST)

    compiled = cgpa_compile(
        module, "spmv", shapes=shapes, policy=ReplicationPolicy.P1
    )
    print(f"CGPA partition for SpMV row loop: {compiled.signature}")
    print(compiled.spec.describe())

    # Build the workload and fetch arguments from the globals.
    setup = Interpreter(compiled.module)
    setup.call("setup", [96, 8])
    from repro.interp import to_unsigned
    from repro.ir import I32
    def arg(name):
        addr = setup.global_addresses[name]
        return to_unsigned(setup.memory.load(addr, I32), 32)
    args = [arg("arg_rowptr"), arg("arg_cols"), arg("arg_vals"),
            arg("arg_x"), arg("arg_y"), arg("arg_nrows")]

    # Reference (software) result on a clone.
    ref = Interpreter(compiled.module, setup.memory.clone(),
                      global_addresses=setup.global_addresses)
    # spmv in the transformed module is the hardware wrapper, so rebuild
    # a clean module for the reference.
    ref_module = compile_c(SOURCE, "spmv_ref")
    optimize_module(ref_module)
    ref_setup = Interpreter(ref_module)
    ref_setup.call("setup", [96, 8])
    ref_run = Interpreter(ref_module, ref_setup.memory,
                          global_addresses=ref_setup.global_addresses)
    ref_run.call("spmv", args)

    mips = run_on_mips(ref_module, "spmv", args, ref_setup.memory.clone(),
                       global_addresses=ref_setup.global_addresses)

    system = AcceleratorSystem(
        compiled.module, setup.memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=setup.global_addresses,
    )
    sim = system.run("spmv", args)

    # Compare the output vectors.
    from repro.ir import F64
    y_hw = setup.memory.load_array(args[4], F64, 96)
    y_sw = ref_setup.memory.load_array(args[4], F64, 96)
    assert y_hw == y_sw, "accelerator output differs from software"
    print(f"\ny[0..4] = {[round(v, 4) for v in y_hw[:5]]} (hardware == software)")
    print(f"MIPS : {mips.cycles:7d} cycles")
    print(f"CGPA : {sim.cycles:7d} cycles  "
          f"({mips.cycles / sim.cycles:.2f}x speedup)")


if __name__ == "__main__":
    main()
