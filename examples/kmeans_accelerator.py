#!/usr/bin/env python3
"""Domain scenario: accelerating K-means membership assignment.

Reproduces Appendix A.1: CGPA builds a P-S pipeline where four workers
run ``findNearestPoint`` concurrently and a sequential stage consumes the
cluster indices round-robin to update the centres — then sweeps the
number of parallel workers to show the scaling headroom the paper
discusses in Appendix B.1.

Run:  python examples/kmeans_accelerator.py
"""

from repro.harness import run_backend, run_kernel
from repro.kernels import KMEANS


def main() -> None:
    print("K-means on all backends (4 workers, FIFO depth 16)")
    run = run_kernel(KMEANS, ("mips", "legup", "cgpa-p1"))
    mips = run.results["mips"].cycles
    for backend, result in run.results.items():
        note = f" partition={result.signature}" if result.signature else ""
        print(f"  {backend:8s}: {result.cycles:7d} cycles "
              f"({mips / result.cycles:4.2f}x vs MIPS){note}")
    delta = run.results["cgpa-p1"].return_value
    print(f"  membership changes (delta): {delta} — identical on every "
          f"backend (checksums validated)")

    print("\nWorker sweep (Appendix B.1 scalability):")
    base = None
    for workers in (1, 2, 4, 8):
        result = run_backend(KMEANS, "cgpa-p1", n_workers=workers)
        base = base or result.cycles
        print(f"  {workers} workers: {result.cycles:7d} cycles "
              f"({base / result.cycles:4.2f}x vs 1 worker)")

    print("\nFIFO depth sweep (decoupling, Section 2.2):")
    for depth in (1, 4, 16, 64):
        result = run_backend(KMEANS, "cgpa-p1", fifo_depth=depth)
        print(f"  depth {depth:3d}: {result.cycles:7d} cycles")


if __name__ == "__main__":
    main()
