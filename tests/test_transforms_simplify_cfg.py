"""Focused tests for CFG simplification rewrites."""

import pytest

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import (
    BOOL,
    CondBranch,
    Constant,
    FunctionType,
    I32,
    IRBuilder,
    Jump,
    Module,
    verify_function,
)
from repro.transforms import simplify_cfg


class TestConstantBranches:
    def test_true_branch_folded(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, []), [])
        entry = f.new_block("entry")
        taken = f.new_block("taken")
        dead = f.new_block("dead")
        b = IRBuilder(entry)
        b.cond_branch(IRBuilder.const_bool(True), taken, dead)
        b.set_block(taken)
        b.ret(b.const_int(1))
        b.set_block(dead)
        b.ret(b.const_int(2))
        simplify_cfg(f)
        verify_function(f)
        names = {blk.name for blk in f.blocks}
        assert "dead" not in names
        assert Interpreter(m).call("f", []) == 1

    def test_same_target_condbr_becomes_jump(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, [I32]), ["x"])
        entry = f.new_block("entry")
        only = f.new_block("only")
        b = IRBuilder(entry)
        cond = b.icmp("sgt", f.args[0], b.const_int(0))
        b.cond_branch(cond, only, only)
        b.set_block(only)
        b.ret(f.args[0])
        simplify_cfg(f)
        verify_function(f)
        assert isinstance(f.blocks[0].terminator, Jump) or len(f.blocks) == 1

    def test_phi_arm_from_folded_branch_removed(self):
        src = """
        int f(int x) {
            int r;
            if (1) r = x + 1;
            else r = x - 1;
            return r;
        }
        """
        module = compile_c(src)
        fn = module.get_function("f")
        from repro.transforms import optimize_function
        optimize_function(fn)
        assert Interpreter(module).call("f", [10]) == 11


class TestChainMerging:
    def test_long_jump_chain_collapses(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, [I32]), ["x"])
        blocks = [f.new_block(f"b{i}") for i in range(6)]
        b = IRBuilder(None)
        for i in range(5):
            b.set_block(blocks[i])
            b.jump(blocks[i + 1])
        b.set_block(blocks[5])
        b.ret(f.args[0])
        simplify_cfg(f)
        verify_function(f)
        assert len(f.blocks) == 1
        assert Interpreter(m).call("f", [9]) == 9

    def test_merge_preserves_loop_back_edges(self):
        src = (
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) { s += i; } return s; }"
        )
        module = compile_c(src)
        fn = module.get_function("f")
        from repro.transforms import optimize_function
        optimize_function(fn)
        from repro.analysis import LoopInfo
        loops = LoopInfo(fn).loops
        assert len(loops) == 1
        assert Interpreter(module).call("f", [6]) == 15

    def test_diamond_with_phi_not_overmerged(self):
        src = """
        int f(int x) {
            int r;
            if (x > 0) r = x * 2;
            else r = x * 3;
            return r;
        }
        """
        module = compile_c(src)
        fn = module.get_function("f")
        from repro.transforms import optimize_function
        optimize_function(fn)
        assert Interpreter(module).call("f", [5]) == 10
        module2 = compile_c(src)
        from repro.transforms import optimize_module
        optimize_module(module2)
        assert Interpreter(module2).call("f", [-5]) == -15
