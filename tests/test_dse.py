"""Tests for the design-space exploration subsystem (repro.dse)."""

import dataclasses
import json

import pytest

from repro.dse import (
    ConfigSpace,
    DesignPoint,
    EvalResult,
    Evaluator,
    Explorer,
    GridStrategy,
    HillClimbStrategy,
    RandomStrategy,
    ResultCache,
    dominates,
    pareto_frontier,
    result_key,
)
from repro.errors import CgpaError
from repro.harness.__main__ import dse_main, main
from repro.kernels import KERNELS_BY_NAME

#: Scaled-down ks: the whole compile+simulate+cost path in ~50 ms.
SMALL_KS = dataclasses.replace(KERNELS_BY_NAME["ks"], setup_args=[10, 10])

#: A 6-point space that still varies compile and simulator knobs.
SMALL_SPACE = dict(
    policies=["p1"],
    n_workers=[1, 2],
    fifo_depths=[4],
    private_caches=[False],
    cache_lines=[64, 128, 256],
    cache_ports=[8],
)


@pytest.fixture(scope="module")
def small_sweep():
    """One serial grid sweep of the small space, shared across tests."""
    explorer = Explorer(SMALL_KS, ConfigSpace(**SMALL_SPACE), processes=1)
    return explorer.run(GridStrategy())


class TestDesignPoint:
    def test_compile_key_ignores_sim_knobs(self):
        a = DesignPoint(cache_lines=64)
        b = DesignPoint(cache_lines=512, private_caches=True)
        assert a.compile_key == b.compile_key

    def test_compile_key_tracks_compile_knobs(self):
        base = DesignPoint()
        assert base.compile_key != DesignPoint(policy="p2").compile_key
        assert base.compile_key != DesignPoint(n_workers=8).compile_key
        assert base.compile_key != DesignPoint(fifo_depth=8).compile_key

    def test_dict_roundtrip(self):
        point = DesignPoint(policy="none", n_workers=8, private_caches=True)
        assert DesignPoint.from_dict(point.to_dict()) == point

    def test_label_mentions_every_knob(self):
        label = DesignPoint(policy="p2", n_workers=8, fifo_depth=2).label
        assert "p2" in label and "w8" in label and "d2" in label


class TestConfigSpace:
    def test_grid_is_deterministic_and_complete(self):
        space = ConfigSpace(**SMALL_SPACE)
        grid = space.grid()
        assert len(grid) == space.size == 6
        assert grid == space.grid()
        assert len(set(grid)) == len(grid)

    @pytest.mark.parametrize("bad", [
        dict(n_workers=[0]),
        dict(fifo_depths=[4, 0]),
        dict(policies=["p3"]),
        dict(cache_lines=[100]),       # not a power of two
        dict(n_workers=[]),
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(CgpaError):
            ConfigSpace(**{**SMALL_SPACE, **bad})

    def test_sample_is_seeded_subset(self):
        space = ConfigSpace(**SMALL_SPACE)
        sample = space.sample(3, seed=7)
        assert sample == space.sample(3, seed=7)
        assert len(sample) == 3
        assert set(sample) <= set(space.grid())
        # Oversampling degrades to the full grid.
        assert space.sample(99) == space.grid()

    def test_neighbors_are_single_knob_moves(self):
        space = ConfigSpace(**SMALL_SPACE)
        point = DesignPoint(policy="p1", n_workers=1, fifo_depth=4,
                            cache_lines=128)
        neighbors = space.neighbors(point)
        assert DesignPoint(policy="p1", n_workers=2, fifo_depth=4,
                           cache_lines=128) in neighbors
        for n in neighbors:
            diff = [k for k, v in n.to_dict().items()
                    if v != getattr(point, k)]
            assert len(diff) == 1


class TestEvaluator:
    def test_ok_result_is_fully_populated(self, small_sweep):
        result = small_sweep.results[0]
        assert result.ok
        assert result.cycles > 0
        assert result.total_aluts > 0
        assert result.energy_uj > 0
        assert result.signature.startswith("S-P-S/p1/")
        assert sum(result.stall_cycles.values()) > 0
        assert result.error is None

    def test_deadlocking_fifo_depth_is_captured(self):
        # Depth-0 FIFOs can never be pushed: the producer blocks full, the
        # consumer blocks empty — a guaranteed deadlock the sweep must
        # record rather than re-raise.
        result = Evaluator(SMALL_KS).evaluate(DesignPoint(fifo_depth=0))
        assert result.status == "deadlock"
        assert "deadlock" in result.error
        assert result.cycles is None

    def test_cycle_budget_exhaustion_is_timeout(self):
        result = Evaluator(SMALL_KS, max_cycles=50).evaluate(DesignPoint())
        assert result.status == "timeout"
        assert "max_cycles" in result.error

    def test_failed_points_excluded_from_frontier(self):
        evaluator = Evaluator(SMALL_KS, max_cycles=50)
        good = Evaluator(SMALL_KS).evaluate(DesignPoint())
        bad = evaluator.evaluate(DesignPoint())
        dead = Evaluator(SMALL_KS).evaluate(DesignPoint(fifo_depth=0))
        frontier = pareto_frontier([good, bad, dead])
        assert frontier == [good]

    def test_compiled_pipeline_reused_across_sim_knobs(self):
        evaluator = Evaluator(SMALL_KS)
        points = [DesignPoint(cache_lines=n) for n in (64, 128, 256)]
        compiled = [evaluator.compile(p) for p in points]
        assert compiled[0] is compiled[1] is compiled[2]
        assert len(evaluator._compiled) == 1
        evaluator.compile(DesignPoint(n_workers=2))
        assert len(evaluator._compiled) == 2

    def test_eval_result_dict_roundtrip(self, small_sweep):
        result = small_sweep.results[0]
        assert EvalResult.from_dict(result.to_dict()) == result


class TestPareto:
    def _mk(self, cycles, aluts, energy, tag="x"):
        return EvalResult(
            point=DesignPoint(fifo_depth=cycles), status="ok",
            cycles=cycles, total_aluts=aluts, energy_uj=energy,
        )

    def test_dominated_points_dropped(self):
        best = self._mk(10, 10, 1.0)
        worse = self._mk(20, 20, 2.0)
        tradeoff = self._mk(5, 40, 3.0)
        frontier = pareto_frontier([worse, best, tradeoff])
        assert best in frontier and tradeoff in frontier
        assert worse not in frontier

    def test_frontier_points_are_mutually_undominated(self, small_sweep):
        frontier = small_sweep.frontier()
        assert frontier
        for a in frontier:
            for b in frontier:
                assert not dominates(a, b)

    def test_strict_improvement_required(self):
        a = self._mk(10, 10, 1.0)
        b = self._mk(10, 10, 1.0)
        assert not dominates(a, b) and not dominates(b, a)
        assert len(pareto_frontier([a, b])) == 2


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = result_key(SMALL_KS, DesignPoint(), 1000, "event")
        assert cache.get(key) is None
        cache.put(key, {"status": "ok"})
        assert cache.get(key) == {"status": "ok"}
        assert len(cache) == 1

    def test_key_covers_kernel_config_and_budget(self):
        base = result_key(SMALL_KS, DesignPoint(), 1000, "event")
        other_kernel = dataclasses.replace(SMALL_KS, source=SMALL_KS.source + "\n")
        assert result_key(other_kernel, DesignPoint(), 1000, "event") != base
        assert result_key(SMALL_KS, DesignPoint(n_workers=2), 1000,
                          "event") != base
        assert result_key(SMALL_KS, DesignPoint(), 2000, "event") != base
        assert result_key(SMALL_KS, DesignPoint(), 1000, "lockstep") != base

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = result_key(SMALL_KS, DesignPoint(), 1000, "event")
        cache.put(key, {"status": "ok"})
        cache._path(key).write_text("{truncated")
        assert cache.get(key) is None


class TestExplorer:
    def test_parallel_frontier_equals_serial(self, small_sweep, tmp_path):
        parallel = Explorer(
            SMALL_KS, ConfigSpace(**SMALL_SPACE), processes=4
        ).run(GridStrategy())
        serial_json = json.dumps(small_sweep.to_json_dict(), sort_keys=True)
        parallel_json = json.dumps(parallel.to_json_dict(), sort_keys=True)
        assert serial_json == parallel_json

    def test_warm_cache_skips_resimulation(self, tmp_path):
        space = ConfigSpace(**SMALL_SPACE)
        cache = ResultCache(tmp_path)
        cold = Explorer(SMALL_KS, space, cache=cache).run(GridStrategy())
        assert cold.cache_hits == 0 and cold.cache_misses == len(cold.results)
        warm = Explorer(SMALL_KS, space, cache=cache).run(GridStrategy())
        assert warm.cache_misses == 0
        assert warm.hit_rate == 1.0  # >= the 95% incrementality bar
        assert all(r.from_cache for r in warm.results)
        # Cache provenance must not leak into the deterministic report.
        assert (json.dumps(warm.to_json_dict(), sort_keys=True)
                == json.dumps(cold.to_json_dict(), sort_keys=True))

    def test_cache_invalidated_by_workload_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        space = ConfigSpace(**SMALL_SPACE)
        Explorer(SMALL_KS, space, cache=cache).run(GridStrategy())
        bigger = dataclasses.replace(SMALL_KS, setup_args=[12, 12])
        second = Explorer(bigger, space, cache=cache).run(GridStrategy())
        assert second.cache_hits == 0

    def test_hillclimb_respects_budget_and_finds_descent(self):
        space = ConfigSpace(policies=["p1"], n_workers=[1, 2, 4],
                            fifo_depths=[2, 4, 16])
        strategy = HillClimbStrategy(objective="cycles", max_evals=6)
        sweep = Explorer(SMALL_KS, space).run(strategy)
        assert 0 < len(sweep.results) <= 6
        assert strategy.best is not None
        by_point = {r.point: r for r in sweep.results}
        start_cycles = sweep.results[0].cycles
        # Greedy descent: the resting point is evaluated and no slower
        # than the seed configuration it started from.
        assert by_point[strategy.best].cycles <= start_cycles

    def test_random_strategy_is_reproducible(self):
        space = ConfigSpace(**SMALL_SPACE)
        a = Explorer(SMALL_KS, space).run(RandomStrategy(3, seed=5))
        b = Explorer(SMALL_KS, space).run(RandomStrategy(3, seed=5))
        assert [r.point for r in a.results] == [r.point for r in b.results]
        assert len(a.results) == 3


class TestCli:
    def test_rejects_nonpositive_workers(self, capsys):
        with pytest.raises(SystemExit):
            main(["--workers", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_nonpositive_fifo_depth(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "ks", "--fifo-depth", "-2"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["--engine", "warp"])
        assert "invalid choice" in capsys.readouterr().err

    def test_dse_rejects_bad_grid_values(self, capsys):
        with pytest.raises(SystemExit):
            dse_main(["ks", "--fifo-depths", "16,0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_dse_rejects_bad_policy(self, capsys):
        with pytest.raises(SystemExit):
            dse_main(["ks", "--policies", "p9"])
        err = capsys.readouterr().err
        assert "policies" in err and "p9" in err

    def test_dse_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(KERNELS_BY_NAME, "ks", SMALL_KS)
        rc = dse_main([
            "ks", "--strategy", "grid",
            "--policies", "p1", "--workers-list", "1,2",
            "--fifo-depths", "4", "--processes", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "results"),
            "--store", str(tmp_path / "store"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        payload = json.loads(
            (tmp_path / "results" / "dse_ks_grid.json").read_text()
        )
        assert payload["kernel"] == "ks"
        assert payload["n_points"] == 2
        assert payload["frontier"]
