"""Unit tests for the IR interpreter against hand-built functions."""

import pytest

from repro.errors import InterpError
from repro.interp import ChannelIO, Interpreter, Memory
from repro.ir import (
    BOOL,
    F64,
    I32,
    Channel,
    Consume,
    FunctionType,
    IRBuilder,
    Module,
    Produce,
    StoreLiveout,
    RetrieveLiveout,
    StructType,
    VOID,
    ptr,
    verify_module,
)


def build_add_function():
    m = Module("m")
    f = m.new_function("addmul", FunctionType(I32, [I32, I32]), ["a", "b"])
    b = IRBuilder(f.new_block("entry"))
    s = b.add(f.args[0], f.args[1])
    p = b.mul(s, b.const_int(3))
    b.ret(p)
    verify_module(m)
    return m


def build_abs_function():
    m = Module("m")
    f = m.new_function("absval", FunctionType(I32, [I32]), ["x"])
    entry = f.new_block("entry")
    neg = f.new_block("neg")
    out = f.new_block("out")
    b = IRBuilder(entry)
    is_neg = b.icmp("slt", f.args[0], b.const_int(0))
    b.cond_branch(is_neg, neg, out)
    b.set_block(neg)
    negated = b.sub(b.const_int(0), f.args[0])
    b.jump(out)
    b.set_block(out)
    phi = b.phi(I32)
    phi.add_incoming(f.args[0], entry)
    phi.add_incoming(negated, neg)
    b.ret(phi)
    verify_module(m)
    return m


def build_sum_loop():
    """sum = 0; for (i = 0; i < n; i++) sum += i; return sum."""
    m = Module("m")
    f = m.new_function("sumloop", FunctionType(I32, [I32]), ["n"])
    entry = f.new_block("entry")
    header = f.new_block("header")
    body = f.new_block("body")
    exit_ = f.new_block("exit")
    b = IRBuilder(entry)
    b.jump(header)
    b.set_block(header)
    i_phi = b.phi(I32, "i")
    sum_phi = b.phi(I32, "sum")
    cond = b.icmp("slt", i_phi, f.args[0])
    b.cond_branch(cond, body, exit_)
    b.set_block(body)
    new_sum = b.add(sum_phi, i_phi)
    new_i = b.add(i_phi, b.const_int(1))
    b.jump(header)
    i_phi.add_incoming(b.const_int(0), entry)
    i_phi.add_incoming(new_i, body)
    sum_phi.add_incoming(b.const_int(0), entry)
    sum_phi.add_incoming(new_sum, body)
    b.set_block(exit_)
    b.ret(sum_phi)
    verify_module(m)
    return m


class TestBasics:
    def test_straight_line(self):
        m = build_add_function()
        assert Interpreter(m).call("addmul", [2, 5]) == 21

    def test_branches_and_phi(self):
        m = build_abs_function()
        interp = Interpreter(m)
        assert interp.call("absval", [-7]) == 7
        interp2 = Interpreter(m)
        assert interp2.call("absval", [9]) == 9

    def test_loop(self):
        m = build_sum_loop()
        assert Interpreter(m).call("sumloop", [10]) == 45
        assert Interpreter(m).call("sumloop", [0]) == 0

    def test_wrong_arity_rejected(self):
        m = build_add_function()
        with pytest.raises(InterpError):
            Interpreter(m).call("addmul", [1])

    def test_max_steps_guard(self):
        m = build_sum_loop()
        with pytest.raises(InterpError):
            Interpreter(m, max_steps=10).call("sumloop", [1000])


class TestIntegerSemantics:
    def _run_binop(self, op, a, b, type_=I32):
        m = Module("m")
        f = m.new_function("f", FunctionType(type_, [type_, type_]), ["a", "b"])
        bld = IRBuilder(f.new_block("entry"))
        bld.ret(bld.binop(op, f.args[0], f.args[1]))
        return Interpreter(m).call("f", [a, b])

    def test_wraparound(self):
        assert self._run_binop("add", 2**31 - 1, 1) == -(2**31)
        assert self._run_binop("mul", 2**30, 4) == 0

    def test_sdiv_truncates_toward_zero(self):
        assert self._run_binop("sdiv", 7, 2) == 3
        assert self._run_binop("sdiv", -7, 2) == -3
        assert self._run_binop("srem", -7, 2) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpError):
            self._run_binop("sdiv", 1, 0)

    def test_shift_ops(self):
        assert self._run_binop("shl", 1, 5) == 32
        assert self._run_binop("ashr", -8, 1) == -4

    def test_unsigned_division(self):
        # -1 as u32 is 4294967295
        assert self._run_binop("udiv", -1, 2) == 2**31 - 1


class TestMemoryOps:
    def test_alloca_load_store(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, []), [])
        b = IRBuilder(f.new_block("entry"))
        slot = b.alloca(I32)
        b.store(b.const_int(42), slot)
        b.ret(b.load(slot))
        assert Interpreter(m).call("f", []) == 42

    def test_struct_field_access(self):
        m = Module("m")
        node = StructType("pnode", [("x", I32), ("y", F64)])
        f = m.new_function("f", FunctionType(F64, []), [])
        b = IRBuilder(f.new_block("entry"))
        slot = b.alloca(node)
        b.store(b.const_float(2.5), b.struct_gep(slot, 1))
        b.ret(b.load(b.struct_gep(slot, 1)))
        assert Interpreter(m).call("f", []) == 2.5

    def test_array_indexing_via_gep(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, [I32]), ["i"])
        b = IRBuilder(f.new_block("entry"))
        base = b.alloca(I32)  # we'll index off it like int*
        for k in range(4):
            b.store(b.const_int(k * k), b.gep(base, [b.const_int(k)]))
        b.ret(b.load(b.gep(base, [f.args[0]])))
        assert Interpreter(m).call("f", [3]) == 9

    def test_malloc_builtin(self):
        m = Module("m")
        malloc = m.new_function("malloc", FunctionType(ptr(I32), [I32]), ["n"])
        f = m.new_function("f", FunctionType(I32, []), [])
        b = IRBuilder(f.new_block("entry"))
        buf = b.call(malloc, [b.const_int(64)])
        b.store(b.const_int(7), b.gep(buf, [b.const_int(5)]))
        b.ret(b.load(b.gep(buf, [b.const_int(5)])))
        interp = Interpreter(m)
        assert interp.call("f", []) == 7
        sites = {a.site for a in interp.memory.allocations if a.site >= 0}
        assert sites == {0}

    def test_null_deref_raises(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, [ptr(I32)]), ["p"])
        b = IRBuilder(f.new_block("entry"))
        b.ret(b.load(f.args[0]))
        with pytest.raises(InterpError):
            Interpreter(m).call("f", [0])


class TestCalls:
    def test_nested_calls(self):
        m = Module("m")
        sq = m.new_function("sq", FunctionType(I32, [I32]), ["x"])
        b = IRBuilder(sq.new_block("entry"))
        b.ret(b.mul(sq.args[0], sq.args[0]))
        f = m.new_function("f", FunctionType(I32, [I32]), ["x"])
        b = IRBuilder(f.new_block("entry"))
        once = b.call(sq, [f.args[0]])
        twice = b.call(sq, [once])
        b.ret(twice)
        assert Interpreter(m).call("f", [3]) == 81

    def test_undefined_external_call_raises(self):
        m = Module("m")
        ext = m.new_function("mystery", FunctionType(I32, []), [])
        f = m.new_function("f", FunctionType(I32, []), [])
        b = IRBuilder(f.new_block("entry"))
        b.ret(b.call(ext, []))
        with pytest.raises(InterpError):
            Interpreter(m).call("f", [])


class TestChannelPrimitives:
    def test_produce_consume_roundtrip(self):
        m = Module("m")
        chan = Channel(0, "c", I32, 0, 1, n_channels=2)
        prod = m.new_function("prod", FunctionType(VOID, [I32]), ["v"])
        b = IRBuilder(prod.new_block("entry"))
        b.block.append(Produce(chan, b.const_int(1), prod.args[0]))
        b.ret()
        cons = m.new_function("cons", FunctionType(I32, []), [])
        b = IRBuilder(cons.new_block("entry"))
        got = b.block.append(Consume(chan, I32))
        b.ret(got)
        io = ChannelIO()
        mem = Memory()
        Interpreter(m, mem, channel_io=io).call("prod", [99])
        reader = Interpreter(m, mem, channel_io=io, worker_id=1)
        assert reader.call("cons", []) == 99

    def test_liveout_registers(self):
        m = Module("m")
        w = m.new_function("w", FunctionType(VOID, [I32]), ["v"])
        b = IRBuilder(w.new_block("entry"))
        b.block.append(StoreLiveout(4, w.args[0]))
        b.ret()
        r = m.new_function("r", FunctionType(I32, []), [])
        b = IRBuilder(r.new_block("entry"))
        got = b.block.append(RetrieveLiveout(4, I32))
        b.ret(got)
        io = ChannelIO()
        mem = Memory()
        Interpreter(m, mem, channel_io=io).call("w", [123])
        assert Interpreter(m, mem, channel_io=io).call("r", []) == 123

    def test_primitive_without_io_raises(self):
        m = Module("m")
        chan = Channel(0, "c", I32, 0, 1)
        f = m.new_function("f", FunctionType(I32, []), [])
        b = IRBuilder(f.new_block("entry"))
        got = b.block.append(Consume(chan, I32))
        b.ret(got)
        with pytest.raises(InterpError):
            Interpreter(m).call("f", [])
