"""Unit and property tests for the FIFO buffers and the D-cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import DirectMappedCache, FifoBuffer
from repro.ir import Channel, I32


def make_fifo(n_channels=4, depth=16):
    return FifoBuffer(Channel(0, "t", I32, 0, 1, n_channels=n_channels, depth=depth))


class TestFifo:
    def test_fifo_order_preserved(self):
        fifo = make_fifo()
        for i in range(10):
            fifo.push(0, i)
        assert [fifo.pop(0) for _ in range(10)] == list(range(10))

    def test_channels_independent(self):
        fifo = make_fifo()
        fifo.push(0, "a")
        fifo.push(1, "b")
        assert fifo.pop(1) == "b"
        assert fifo.pop(0) == "a"

    def test_capacity_enforced(self):
        fifo = make_fifo(depth=4)
        for i in range(4):
            assert fifo.can_push(0)
            fifo.push(0, i)
        assert not fifo.can_push(0)
        fifo.pop(0)
        assert fifo.can_push(0)

    def test_broadcast_pushes_to_all(self):
        fifo = make_fifo(n_channels=3)
        fifo.push_broadcast(42)
        assert all(fifo.pop(i) == 42 for i in range(3))

    def test_broadcast_blocked_by_any_full_channel(self):
        fifo = make_fifo(n_channels=2, depth=2)
        fifo.push(1, 0)
        fifo.push(1, 0)
        assert not fifo.can_push_broadcast()
        assert fifo.can_push(0)

    def test_reset_flushes(self):
        fifo = make_fifo()
        fifo.push(0, 1)
        fifo.push_broadcast(2)
        fifo.reset()
        assert not any(fifo.can_pop(i) for i in range(4))

    def test_stats_counters(self):
        fifo = make_fifo(n_channels=2)
        fifo.push(0, 1)
        fifo.push_broadcast(2)
        fifo.pop(0)
        assert fifo.stats.pushes == 3
        assert fifo.stats.pops == 1
        assert fifo.stats.max_occupancy == 2

    def test_bram_accounting(self):
        # 32-bit slots: a 64-bit channel costs two slots per value.
        from repro.ir import F64
        fifo64 = FifoBuffer(Channel(1, "d", F64, 0, 1, n_channels=4, depth=16))
        assert fifo64.bram_bits == 32 * 2 * 16 * 4

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_fifo_model_matches_reference_deque(self, ops):
        from collections import deque
        fifo = make_fifo(depth=8)
        reference = [deque() for _ in range(4)]
        counter = 0
        for is_push, chan in ops:
            if is_push:
                if fifo.can_push(chan):
                    assert len(reference[chan]) < 8
                    fifo.push(chan, counter)
                    reference[chan].append(counter)
                    counter += 1
                else:
                    assert len(reference[chan]) == 8
            else:
                if fifo.can_pop(chan):
                    assert fifo.pop(chan) == reference[chan].popleft()
                else:
                    assert not reference[chan]


class TestCache:
    def test_miss_then_hit(self):
        cache = DirectMappedCache(hit_latency=2, miss_penalty=24)
        t1 = cache.access(0x2000, False, 0)
        assert t1 >= 24
        t2 = cache.access(0x2000, False, t1)
        assert t2 == t1 + 2
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_same_block_hits(self):
        cache = DirectMappedCache(block_size=128)
        cache.access(0x4000, False, 0)
        cache.access(0x4000 + 64, False, 100)  # same 128B block
        assert cache.stats.hits == 1

    def test_conflict_eviction(self):
        cache = DirectMappedCache(n_lines=512, block_size=128)
        stride = 512 * 128  # same index, different tag
        cache.access(0x10000, False, 0)
        cache.access(0x10000 + stride, False, 100)
        cache.access(0x10000, False, 200)  # evicted: miss again
        assert cache.stats.misses == 3

    def test_port_arbitration(self):
        cache = DirectMappedCache(ports=2, hit_latency=1)
        cache.access(0x1000, False, 0)  # warm the line
        base = cache.access(0x1000, False, 10)
        # Four simultaneous accesses with 2 ports: two must slip.
        times = sorted(cache.access(0x1000, False, 20) for _ in range(4))
        assert times[0] == times[1]
        assert times[2] == times[3] == times[0] + 1
        assert cache.stats.port_conflicts >= 2

    def test_misses_serialize_on_memory_channel(self):
        cache = DirectMappedCache(miss_penalty=24, ports=8)
        t1 = cache.access(0x100000, False, 0)
        t2 = cache.access(0x200000, False, 0)
        assert t2 >= t1 + 24  # single DRAM channel

    def test_write_marks_dirty_and_writeback_counted(self):
        cache = DirectMappedCache(n_lines=512, block_size=128)
        stride = 512 * 128
        cache.access(0x8000, True, 0)
        cache.access(0x8000 + stride, False, 100)
        assert cache.stats.writebacks == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DirectMappedCache(n_lines=500)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_ready_cycle_never_before_request(self, addrs):
        cache = DirectMappedCache()
        cycle = 0
        for addr in addrs:
            ready = cache.access(addr, False, cycle)
            assert ready > cycle
            cycle = ready
