"""Error-path tests: unsupported shapes must fail loudly, not corrupt."""

import pytest

from repro.analysis import LoopInfo, PointsTo, ProgramDependenceGraph
from repro.errors import CgpaError, TransformError
from repro.frontend import compile_c
from repro.pipeline import cgpa_compile, partition_loop, transform_loop
from repro.transforms import optimize_module


class TestTransformErrors:
    def test_multi_exit_target_loop_rejected(self):
        # A break that jumps past the normal exit gives the loop two exit
        # target blocks; the parent rewrite refuses (documented limit).
        source = """
        void* malloc(int m);
        int kernel(int* a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (a[i] == 99) { s = -1; break; }
                s += a[i];
            }
            if (s < 0) return 0;
            return s;
        }
        void driver(void) { kernel((int*)malloc(64), 8); }
        """
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("kernel")
        loop = LoopInfo(fn).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        spec = partition_loop(pdg)
        # Either the two exit targets or the value-merging exit phi is
        # diagnosed; both are documented limits, and neither may silently
        # generate a wrong pipeline.
        with pytest.raises(TransformError,
                           match="single loop exit|exit phi"):
            transform_loop(module, spec)

    def test_loopless_kernel_rejected(self):
        module = compile_c("int kernel(int a) { return a + 1; }")
        with pytest.raises(CgpaError, match="no loops"):
            cgpa_compile(module, "kernel")

    def test_transform_without_parent_rewrite_keeps_original(self):
        source = """
        void* malloc(int m);
        int kernel(int* a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        void driver(void) { kernel((int*)malloc(64), 8); }
        """
        module = compile_c(source)
        compiled = cgpa_compile(module, "kernel", rewrite_parent=False)
        # The original loop must still be intact and executable.
        from repro.interp import Interpreter, Memory
        interp = Interpreter(compiled.module)
        base = interp.memory.malloc(64)
        for i in range(8):
            from repro.ir import I32
            interp.memory.store(base + 4 * i, I32, i)
        assert interp.call("kernel", [base, 8]) == sum(range(8))

    def test_task_names_unique_across_loops(self):
        source = """
        void* malloc(int m);
        int kernel(int* a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        void driver(void) { kernel((int*)malloc(64), 8); }
        """
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("kernel")
        loop = LoopInfo(fn).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        spec = partition_loop(pdg)
        transform_loop(module, spec, loop_id=0, rewrite_parent=False)
        # A second transform with the same loop id collides on task names.
        from repro.errors import IRError
        with pytest.raises(IRError, match="duplicate function"):
            transform_loop(module, spec, loop_id=0, rewrite_parent=False)


class TestPartitionDegenerate:
    def test_fully_sequential_loop_single_stage(self):
        # A pure pointer-chasing accumulation has no parallel section.
        source = """
        typedef struct n { int v; struct n* next; } n_t;
        void* malloc(int m);
        n_t* g_head;
        int kernel(n_t* p) {
            int s = 0;
            for ( ; p; p = p->next) s = s * 31 + p->v;
            return s;
        }
        void driver(void) { kernel(g_head); }
        """
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("kernel")
        loop = LoopInfo(fn).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        spec = partition_loop(pdg)
        # Everything is carried; whatever comes out must be legal, and
        # a degenerate single-S pipeline is acceptable.
        assert spec.signature in ("S", "S-P", "P-S", "S-P-S", "P")

    def test_empty_parallel_weight_reported(self):
        source = """
        int kernel(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s = s * 3 + 1;
            return s;
        }
        void driver(void) { kernel(5); }
        """
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("kernel")
        loop = LoopInfo(fn).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        spec = partition_loop(pdg)
        text = spec.describe()
        assert "pipeline" in text
