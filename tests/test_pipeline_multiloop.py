"""Tests for accelerating several loops of one function (distinct loop ids).

This exercises the part of Table 1's semantics single-loop tests cannot:
``parallel_fork``/``parallel_join`` groups for *different* LoopIDs in one
parent, and FIFO identity across two independent channel plans.
"""

import pytest

from repro.analysis import RegionShapes
from repro.frontend import compile_c
from repro.hw import AcceleratorSystem, DirectMappedCache
from repro.interp import Interpreter
from repro.ir import I32, ParallelFork, ParallelJoin
from repro.ir.primitives import ChannelPlan
from repro.pipeline import cgpa_compile_all, run_transformed
from repro.transforms import optimize_module

TWO_LOOP_SOURCE = """
void* malloc(int m);
unsigned out_sum;
int kernel(int* a, int* b, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) b[i] = a[i] * 3 + 1;
    for (int j = 0; j < n; j++) s += b[j] ^ a[j];
    return s;
}
void run(int n) {
    int* a = (int*)malloc(64 * sizeof(int));
    int* b = (int*)malloc(64 * sizeof(int));
    for (int k = 0; k < 64; k++) { a[k] = k * 7; b[k] = 0; }
    out_sum = (unsigned)kernel(a, b, n);
}
"""


@pytest.fixture()
def reference():
    module = compile_c(TWO_LOOP_SOURCE)
    optimize_module(module)
    interp = Interpreter(module)
    interp.call("run", [40])
    return interp


class TestMultiLoop:
    def test_both_loops_pipelined(self):
        module = compile_c(TWO_LOOP_SOURCE)
        compiled = cgpa_compile_all(module, "kernel", shapes=RegionShapes())
        assert len(compiled) == 2
        assert {c.result.loop_id for c in compiled} == {0, 1}
        # Both pipelines have a parallel stage (the loops are affine).
        for c in compiled:
            assert "P" in c.signature

    def test_parent_has_two_fork_groups(self):
        module = compile_c(TWO_LOOP_SOURCE)
        compiled = cgpa_compile_all(module, "kernel", shapes=RegionShapes())
        parent = module.get_function("kernel")
        fork_ids = {i.loop_id for i in parent.instructions()
                    if isinstance(i, ParallelFork)}
        join_ids = {i.loop_id for i in parent.instructions()
                    if isinstance(i, ParallelJoin)}
        assert fork_ids == join_ids == {0, 1}

    def test_functional_equivalence(self, reference):
        module = compile_c(TWO_LOOP_SOURCE)
        cgpa_compile_all(module, "kernel", shapes=RegionShapes())
        _, memory, _ = run_transformed(module, "run", [40])
        assert memory.snapshot() == reference.memory.snapshot()

    def test_hardware_simulation(self, reference):
        module = compile_c(TWO_LOOP_SOURCE)
        compiled = cgpa_compile_all(module, "kernel", shapes=RegionShapes())
        merged = ChannelPlan()
        for c in compiled:
            merged.channels.extend(c.result.channels)
        setup = Interpreter(module)
        system = AcceleratorSystem(
            module, setup.memory, channels=merged,
            cache=DirectMappedCache(ports=8),
            global_addresses=setup.global_addresses,
        )
        report = system.run("run", [40])
        assert report.invocations == 2
        out = setup.memory.load(setup.global_addresses["out_sum"], I32)
        expected = reference.memory.load(
            reference.global_addresses["out_sum"], I32
        )
        assert out == expected

    def test_distinct_channel_plans_do_not_collide(self):
        module = compile_c(TWO_LOOP_SOURCE)
        compiled = cgpa_compile_all(module, "kernel", shapes=RegionShapes())
        plans = [c.result.channels for c in compiled]
        if all(len(p) > 0 for p in plans):
            # Channel ids restart per loop; object identity must differ.
            a = plans[0].channels[0]
            b = plans[1].channels[0]
            assert a is not b
