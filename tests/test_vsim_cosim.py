"""RTL co-simulation acceptance: emitted Verilog vs the interpreter oracle.

The PR's headline property: for every kernel and policy, every emitted
worker module simulates to ``finish`` in vsim with live-outs, FIFO
traffic and the final memory image bit-identical to the interpreter.
"""

import struct

import pytest

from repro.errors import CgpaError
from repro.kernels import ALL_KERNELS, KERNELS_BY_NAME
from repro.vsim.cosim import (
    SMOKE_SETUP_ARGS,
    run_rtl_cosim,
    value_to_bits,
)

_CASES = []
for _spec in ALL_KERNELS:
    for _policy in ["p1", "none"] + (["p2"] if _spec.supports_p2 else []):
        _CASES.append((_spec.name, _policy))


@pytest.mark.parametrize(
    "kernel,policy", _CASES, ids=[f"{k}-{p}" for k, p in _CASES]
)
class TestBitIdenticalCosim:
    def test_liveouts_traffic_and_memory_match_oracle(self, kernel, policy):
        report = run_rtl_cosim(kernel, policy=policy)
        assert report.rounds, "oracle recorded no fork/join rounds"
        for rnd in report.rounds:
            assert rnd.memory_diff is None, rnd.memory_diff
            assert rnd.queue_diff is None, rnd.queue_diff
            for inst in rnd.instances:
                assert inst.cycles > 0, f"{inst.tag} never finished"
                assert inst.traffic_diff is None, (
                    f"{inst.tag}: {inst.traffic_diff}"
                )
                for diff in inst.liveouts:
                    assert diff.oracle_bits == diff.rtl_bits, (
                        f"{inst.tag} liveout[{diff.liveout_id}]"
                    )
        assert report.ok
        assert "bit-identical" in report.format()


class TestRoundSharedQueues:
    def test_deep_queue_fifo_order(self):
        # Regression: round queues are deques now — the per-edge head
        # pop used to be an O(n) list pop(0), quadratic over a deep
        # FIFO's lifetime.  FIFO order, head peek and extend semantics
        # must be unchanged.
        from repro.interp import Memory
        from repro.vsim.cosim import _RoundShared

        shared = _RoundShared(Memory(), {0: 1}, fifo_depth=4, liveouts={})
        queue = shared.queue(0, 0)
        n = 50_000
        queue.extend(range(n))
        assert shared.queue(0, 0) is queue  # setdefault, not replace
        assert queue[0] == 0  # head peek
        for expected in range(n):
            assert queue.popleft() == expected
        assert not queue


class TestCosimHarness:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(CgpaError, match="unknown kernel"):
            run_rtl_cosim("nope")

    def test_unknown_policy_rejected(self):
        with pytest.raises(CgpaError, match="unknown policy"):
            run_rtl_cosim("ks", policy="p9")

    def test_p2_rejected_where_unsupported(self):
        spec = KERNELS_BY_NAME["ks"]
        assert not spec.supports_p2
        with pytest.raises(CgpaError, match="does not support P2"):
            run_rtl_cosim("ks", policy="p2")

    def test_smoke_args_cover_every_kernel(self):
        assert set(SMOKE_SETUP_ARGS) == {s.name for s in ALL_KERNELS}

    def test_report_carries_oracle_checksum(self):
        report = run_rtl_cosim("ks")
        assert report.oracle_result is not None
        assert report.total_cycles > 0
        assert report.kernel == "ks"

    def test_emit_dir_writes_modules_and_testbenches(self, tmp_path):
        report = run_rtl_cosim("ks", emit_dir=tmp_path)
        assert report.ok
        modules = sorted(p.name for p in tmp_path.glob("*.v"))
        assert any(name.endswith("_tb.v") for name in modules)
        benches = [p for p in tmp_path.glob("*_tb.v")]
        text = benches[0].read_text()
        assert '"PASS"' in text  # oracle-scripted self-checking bench

    def test_spec_object_accepted_directly(self):
        report = run_rtl_cosim(KERNELS_BY_NAME["em3d"], policy="none")
        assert report.ok


class TestRtlCli:
    def test_rtl_cli_smoke(self, capsys):
        from repro.harness.__main__ import main

        rc = main(["rtl", "ks"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RTL co-simulation: ks" in out
        assert "bit-identical" in out
        assert "final: OK" in out

    def test_rtl_cli_emit_dir(self, capsys, tmp_path):
        from repro.harness.__main__ import main

        rc = main(["rtl", "em3d", "--policy", "none",
                   "--emit-dir", str(tmp_path)])
        assert rc == 0
        assert list(tmp_path.glob("*_tb.v"))

    def test_rtl_cli_rejects_unknown_kernel(self):
        from repro.harness.__main__ import rtl_main

        with pytest.raises(SystemExit):
            rtl_main(["nope"])

    def test_rtl_cli_budget_failure_is_one_line_exit_1(self, capsys):
        from repro.harness.__main__ import main

        rc = main(["rtl", "ks", "--max-cycles", "10"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: round 0: cycle budget (10) exceeded")


class TestValueToBits:
    def test_int_width_masking(self):
        assert value_to_bits(-1, 32) == 0xFFFFFFFF
        assert value_to_bits(5, 8) == 5
        assert value_to_bits(True, 1) == 1

    def test_float_is_ieee754_pattern(self):
        expected = int.from_bytes(struct.pack("<d", 1.5), "little")
        assert value_to_bits(1.5, 64) == expected
        expected32 = int.from_bytes(struct.pack("<f", 1.5), "little")
        assert value_to_bits(1.5, 32) == expected32
