"""Tests for the Andersen points-to analysis and mod/ref summaries."""

from repro.analysis import EXTERNAL, PointsTo
from repro.frontend import compile_c
from repro.interp import malloc_site_table
from repro.ir import Call, Load, Store
from repro.transforms import optimize_module


def compile_opt(source):
    module = compile_c(source)
    optimize_module(module)
    return module


def find_insts(function, klass):
    return [i for i in function.instructions() if isinstance(i, klass)]


class TestBasics:
    def test_distinct_sites_do_not_alias(self):
        module = compile_opt(
            """
            void* malloc(int n);
            int main(void) {
                int* a = (int*)malloc(40);
                int* b = (int*)malloc(40);
                a[1] = 1; b[1] = 2;
                return a[1];
            }
            """
        )
        pt = PointsTo(module)
        stores = find_insts(module.get_function("main"), Store)
        assert len(stores) == 2
        assert not pt.may_alias(stores[0].pointer, stores[1].pointer)

    def test_same_site_aliases(self):
        module = compile_opt(
            """
            void* malloc(int n);
            int* make(void) { return (int*)malloc(4); }
            int main(void) {
                int* a = make();
                int* b = make();
                *a = 1; *b = 2;
                return *a;
            }
            """
        )
        pt = PointsTo(module)
        stores = find_insts(module.get_function("main"), Store)
        # One malloc site serves both calls: context-insensitivity merges.
        assert pt.may_alias(stores[0].pointer, stores[1].pointer)

    def test_flow_through_heap(self):
        module = compile_opt(
            """
            typedef struct box { int* payload; } box_t;
            void* malloc(int n);
            int main(void) {
                box_t* b = (box_t*)malloc(sizeof(box_t));
                int* x = (int*)malloc(4);
                b->payload = x;
                int* y = b->payload;
                *y = 3;
                return *x;
            }
            """
        )
        pt = PointsTo(module)
        main = module.get_function("main")
        stores = [s for s in find_insts(main, Store) if s.value.type.is_integer]
        loads = [l for l in find_insts(main, Load) if l.type.is_integer]
        # The store through y and load through x hit the same object.
        assert pt.may_alias(stores[0].pointer, loads[0].pointer)

    def test_globals_are_distinct_objects(self):
        module = compile_opt(
            """
            int g1 = 0;
            int g2 = 0;
            int main(void) { g1 = 1; g2 = 2; return g1; }
            """
        )
        pt = PointsTo(module)
        g1 = module.globals["g1"]
        g2 = module.globals["g2"]
        assert not pt.may_alias(g1, g2)

    def test_phi_merges_points_to_sets(self):
        module = compile_opt(
            """
            void* malloc(int n);
            int main(int c) {
                int* a = (int*)malloc(4);
                int* b = (int*)malloc(4);
                int* p = c ? a : b;
                *p = 1;
                return *a;
            }
            """
        )
        pt = PointsTo(module)
        main = module.get_function("main")
        store = find_insts(main, Store)[0]
        assert len(pt.points_to(store.pointer)) == 2

    def test_uncalled_function_args_are_external(self):
        module = compile_opt("int take(int* p) { return *p; }")
        pt = PointsTo(module)
        f = module.get_function("take")
        assert EXTERNAL in pt.points_to(f.args[0])

    def test_called_function_args_bound_to_actuals(self):
        module = compile_opt(
            """
            void* malloc(int n);
            int take(int* p) { return *p; }
            int main(void) {
                int* a = (int*)malloc(4);
                *a = 7;
                return take(a);
            }
            """
        )
        pt = PointsTo(module)
        f = module.get_function("take")
        objs = pt.points_to(f.args[0])
        assert EXTERNAL not in objs
        assert len(objs) == 1 and next(iter(objs)).kind == "malloc"


class TestEm3dDisjointness:
    """The paper's flagship analysis fact: the two em3d lists are disjoint."""

    SOURCE = """
    typedef struct node {
        double value;
        int from_count;
        struct node** from_nodes;
        double* coeffs;
        struct node* next;
    } node_t;
    void* malloc(int n);

    node_t* build(int n_a, int n_b, int degree) {
        node_t* b_head = 0;
        for (int i = 0; i < n_b; i++) {
            node_t* nb = (node_t*)malloc(sizeof(node_t));   /* site B */
            nb->value = i; nb->from_count = 0;
            nb->from_nodes = 0; nb->coeffs = 0;
            nb->next = b_head; b_head = nb;
        }
        node_t* a_head = 0;
        for (int i = 0; i < n_a; i++) {
            node_t* na = (node_t*)malloc(sizeof(node_t));   /* site A */
            na->value = 0.0;
            na->from_count = degree;
            na->from_nodes = (node_t**)malloc(degree * sizeof(node_t*));
            na->coeffs = (double*)malloc(degree * sizeof(double));
            node_t* cursor = b_head;
            for (int j = 0; j < degree; j++) {
                na->from_nodes[j] = cursor;
                na->coeffs[j] = 0.5;
                cursor = cursor->next;
                if (!cursor) cursor = b_head;
            }
            na->next = a_head; a_head = na;
        }
        return a_head;
    }

    void kernel(node_t* nodelist) {
        for ( ; nodelist; nodelist = nodelist->next) {
            for (int i = 0; i < nodelist->from_count; i++) {
                node_t* from = nodelist->from_nodes[i];
                double coeff = nodelist->coeffs[i];
                double value = from->value;
                nodelist->value -= coeff * value;
            }
        }
    }

    int main(void) {
        node_t* list = build(8, 8, 3);
        kernel(list);
        return 0;
    }
    """

    def test_from_and_nodelist_disjoint(self):
        module = compile_opt(self.SOURCE)
        pt = PointsTo(module)
        kernel = module.get_function("kernel")
        stores = find_insts(kernel, Store)
        assert len(stores) == 1  # nodelist->value -= ...
        value_store = stores[0]
        # 'from->value' load: the only f64 load whose pointer is not
        # derived from the nodelist traversal.
        loads = [l for l in find_insts(kernel, Load) if l.type.is_float]
        from_value_loads = [
            l for l in loads
            if not pt.may_alias(l.pointer, value_store.pointer)
        ]
        # At least the from->value load is provably disjoint from the store.
        assert from_value_loads, "points-to failed to separate the two lists"

    def test_modref_of_kernel(self):
        module = compile_opt(self.SOURCE)
        pt = PointsTo(module)
        summary = pt.modref["kernel"]
        # kernel writes only the A-node region.
        assert len(summary.mod) == 1
        assert EXTERNAL not in summary.mod
        # It reads A nodes, the pointer array, the coeff array and B nodes.
        assert len(summary.ref) >= 3

    def test_site_numbering_matches_interpreter(self):
        module = compile_opt(self.SOURCE)
        table = malloc_site_table(module)
        # build() has four malloc sites (B node, A node, from_nodes array,
        # coeffs array), numbered in instruction order.
        assert len(table) == 4
        from repro.interp import Interpreter
        interp = Interpreter(module)
        interp.call("main", [])
        runtime_sites = {a.site for a in interp.memory.allocations if a.site >= 0}
        assert runtime_sites == set(table.keys())


class TestModRef:
    def test_pure_reader_has_empty_mod(self):
        module = compile_opt(
            """
            void* malloc(int n);
            double dist(double* a, double* b, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) {
                    double d = a[i] - b[i];
                    s += d * d;
                }
                return s;
            }
            int main(void) {
                double* x = (double*)malloc(80);
                double* y = (double*)malloc(80);
                double r = dist(x, y, 10);
                return (int)r;
            }
            """
        )
        pt = PointsTo(module)
        summary = pt.modref["dist"]
        assert not summary.mod
        assert len(summary.ref) == 2

    def test_transitive_mod_through_callee(self):
        module = compile_opt(
            """
            void* malloc(int n);
            void poke(int* p) { *p = 1; }
            void outer(int* p) { poke(p); }
            int main(void) {
                int* a = (int*)malloc(4);
                outer(a);
                return *a;
            }
            """
        )
        pt = PointsTo(module)
        assert pt.modref["outer"].mod == pt.modref["poke"].mod
        assert len(pt.modref["outer"].mod) == 1

    def test_calls_to_pure_functions_independent(self):
        module = compile_opt(
            """
            void* malloc(int n);
            int probe(int* p, int i) { return p[i]; }
            int main(void) {
                int* a = (int*)malloc(40);
                int x = probe(a, 0);
                int y = probe(a, 1);
                return x + y;
            }
            """
        )
        pt = PointsTo(module)
        calls = [
            i for i in module.get_function("main").instructions()
            if isinstance(i, Call) and i.callee.name == "probe"
        ]
        assert len(calls) == 2
        assert not pt.call_mod(calls[0])
        assert pt.call_ref(calls[0])
