"""Tests for the experiment harness: backends, validation, experiments."""

import dataclasses

import pytest

from repro.errors import CgpaError
from repro.harness import (
    BackendResult,
    KernelRun,
    figure4,
    geomean,
    run_backend,
    run_kernel,
    table2,
    table3,
)
from repro.kernels import KERNELS_BY_NAME, PAPER_KERNELS, KernelSpec

#: A scaled-down ks for fast harness tests.
SMALL_KS = dataclasses.replace(KERNELS_BY_NAME["ks"], setup_args=[10, 10])
SMALL_HASH = dataclasses.replace(
    KERNELS_BY_NAME["Hash-indexing"], setup_args=[64, 16]
)


class TestBackends:
    def test_mips_backend_fields(self):
        result = run_backend(SMALL_KS, "mips")
        assert result.backend == "mips"
        assert result.cycles > 0
        assert result.mips_instructions > 0
        assert result.area is None  # software has no ALUTs

    def test_legup_backend_fields(self):
        result = run_backend(SMALL_KS, "legup")
        assert result.aluts > 0
        assert result.power_mw > 0
        assert result.energy_uj > 0
        assert result.sim is not None

    def test_cgpa_backend_fields(self):
        result = run_backend(SMALL_KS, "cgpa-p1")
        assert result.signature == "S-P-S"
        assert result.aluts > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(CgpaError):
            run_backend(SMALL_KS, "gpu")

    def test_cache_kwargs_forwarded(self):
        fast = run_backend(SMALL_HASH, "legup", cache_kwargs={"miss_penalty": 2})
        slow = run_backend(SMALL_HASH, "legup", cache_kwargs={"miss_penalty": 80})
        assert slow.cycles > fast.cycles


class TestKernelRun:
    def test_checksums_cross_validated(self):
        run = run_kernel(SMALL_KS, ("mips", "legup", "cgpa-p1"))
        checksums = {r.checksum for r in run.results.values()}
        assert len(checksums) == 1

    def test_speedups(self):
        run = run_kernel(SMALL_KS, ("mips", "legup", "cgpa-p1"))
        assert run.speedup("cgpa-p1") > run.speedup("legup") > 1.0

    def test_energy_efficiency_defined(self):
        run = run_kernel(SMALL_KS, ("mips", "legup", "cgpa-p1"))
        assert run.energy_efficiency("legup") > 0
        assert run.energy_efficiency("cgpa-p1") > 0

    def test_validation_catches_divergence(self):
        run = run_kernel(SMALL_KS, ("mips", "legup"))
        run.results["legup"] = dataclasses.replace(
            run.results["legup"], checksum=run.results["legup"].checksum + 1.0
        )
        with pytest.raises(CgpaError, match="checksum"):
            run.validate()

    def test_p2_skipped_when_not_applicable(self):
        run = run_kernel(SMALL_KS, ("mips", "cgpa-p2", "cgpa-p1"))
        assert "cgpa-p2" not in run.results  # Table 2: ks has no P2


class TestExperimentDrivers:
    @pytest.fixture(scope="class")
    def small_runs(self):
        # The experiment drivers regenerate the paper's tables, which
        # only cover the five Table 2 kernels.
        runs = {}
        for spec in PAPER_KERNELS:
            small = _shrink(spec)
            backends = ["mips", "legup", "cgpa-p1"]
            if spec.supports_p2:
                backends.append("cgpa-p2")
            runs[spec.name] = run_kernel(small, tuple(backends))
        return runs

    def test_table2_rows(self, small_runs):
        rows = table2(small_runs)
        assert len(rows) == 5
        assert all(r.p1_matches for r in rows)

    def test_figure4_structure(self, small_runs):
        data = figure4(small_runs)
        assert len(data.rows) == 5
        assert data.geomean_cgpa > data.geomean_legup > 1.0

    def test_table3_rows(self, small_runs):
        rows = table3(small_runs)
        # 5 kernels x (legup + p1) + 2 P2 rows.
        assert len(rows) == 12
        assert all(r.aluts > 0 for r in rows)

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([5.0]) == pytest.approx(5.0)


def _shrink(spec: KernelSpec) -> KernelSpec:
    small_args = {
        "K-means": [24, 3, 4],
        "Hash-indexing": [64, 16],
        "ks": [10, 10],
        "em3d": [24, 24, 3],
        "1D-Gaussblur": [3, 32],
    }
    return dataclasses.replace(spec, setup_args=small_args[spec.name])
