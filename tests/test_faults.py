"""Tests for the fault-injection layer (repro.faults).

Four angles:

* plan generation/serialisation is deterministic and pure data;
* known-deadlocking pipelines fail with the same typed ``DeadlockError``
  — same cycle, same wait-for-graph diagnosis — under both engines;
* timing-only fault plans never change kernel liveouts (the graceful-
  degradation property the resilience sweep measures);
* the invariant monitor passes clean runs untouched and reports every
  violated conservation law of a corrupted state.
"""

import dataclasses
import json

import pytest

from repro.dse import DesignPoint, EvalResult, Evaluator
from repro.dse.evaluate import _classify_sim_failure
from repro.errors import (
    CycleBudgetExceeded,
    DeadlockError,
    InvariantViolationError,
    SimulationError,
)
from repro.faults import (
    NULL_INJECTOR,
    PLAN_KINDS,
    DeadlockDiagnosis,
    FaultInjector,
    FaultPlan,
    InvariantMonitor,
    PlanContext,
    WorkerHangFault,
    flip_value,
)
from repro.faults.sweep import plan_seeds, resilience_sweep
from repro.frontend import compile_c
from repro.harness.__main__ import faults_main, main
from repro.harness.runner import setup_workload
from repro.hw import AcceleratorSystem, DirectMappedCache
from repro.interp import Interpreter, Memory
from repro.ir import (
    Consume,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    ParallelFork,
    ParallelJoin,
    Produce,
    VOID,
)
from repro.ir.primitives import ChannelPlan
from repro.kernels import ALL_KERNELS, KERNELS_BY_NAME
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.pipeline.spec import StageKind
from repro.pipeline.transform import TaskInfo
from repro.transforms import optimize_module

KERNEL_NAMES = [spec.name for spec in ALL_KERNELS]

#: Every simulator engine must agree on failure behaviour, not just on
#: clean runs: same deadlock cycle, same diagnosis, same hang messages.
ENGINES = ("event", "lockstep", "specialized")

#: Scaled-down ks for the cheap CLI/evaluator paths (same trick as
#: test_dse.py: full compile+simulate pipeline in tens of milliseconds).
SMALL_KS = dataclasses.replace(KERNELS_BY_NAME["ks"], setup_args=[10, 10])

_COMPILED: dict[str, object] = {}
_BASELINE: dict[str, tuple] = {}


def compiled_kernel(name: str):
    if name not in _COMPILED:
        spec = KERNELS_BY_NAME[name]
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        _COMPILED[name] = cgpa_compile(
            module, spec.accel_function, shapes=spec.shapes_for(module),
            policy=ReplicationPolicy.P1, n_workers=4, fifo_depth=16,
        )
    return _COMPILED[name]


def simulate_kernel(name: str, engine: str = "event", injector=None,
                    monitor=None, max_cycles: int = 500_000_000):
    """Run one kernel; returns (SimReport, liveout checksum)."""
    spec = KERNELS_BY_NAME[name]
    compiled = compiled_kernel(name)
    memory, globals_, args = setup_workload(compiled.module, spec)
    system = AcceleratorSystem(
        compiled.module, memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=globals_,
        engine=engine,
        injector=injector,
        monitor=monitor,
        max_cycles=max_cycles,
    )
    sim = system.run(spec.measure_entry, args)
    interp = Interpreter(compiled.module, memory, global_addresses=globals_)
    return sim, float(interp.call(spec.check_function, []))


def baseline(name: str):
    """Fault-free run of one kernel, cached: (SimReport, checksum, ctx)."""
    if name not in _BASELINE:
        sim, checksum = simulate_kernel(name)
        ctx = PlanContext(
            horizon=sim.cycles,
            n_workers=len(sim.worker_stats),
            fifo_pushes=tuple(s.pushes for s in sim.fifo_stats.values()),
        )
        _BASELINE[name] = (sim, checksum, ctx)
    return _BASELINE[name]


# -- plans: determinism and serialisation ---------------------------------------


class TestFaultPlan:
    CTX = PlanContext(horizon=10_000, n_workers=7, fifo_pushes=(164, 41, 41, 40))

    @pytest.mark.parametrize("kind", PLAN_KINDS)
    def test_generation_is_deterministic(self, kind):
        a = FaultPlan.generate(42, kind, self.CTX)
        b = FaultPlan.generate(42, kind, self.CTX)
        assert a == b
        assert a.faults  # never an empty schedule

    def test_distinct_seeds_draw_distinct_plans(self):
        plans = {FaultPlan.generate(s, "timing", self.CTX) for s in range(16)}
        assert len(plans) == 16

    @pytest.mark.parametrize("kind", PLAN_KINDS)
    def test_dict_roundtrip_through_json(self, kind):
        plan = FaultPlan.generate(7, kind, self.CTX)
        wire = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(wire) == plan

    def test_kind_classification(self):
        assert FaultPlan.generate(3, "timing", self.CTX).timing_only
        assert not FaultPlan.generate(3, "hang", self.CTX).timing_only
        assert not FaultPlan.generate(3, "corruption", self.CTX).timing_only

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown plan kind"):
            FaultPlan.generate(0, "cosmic", self.CTX)

    def test_plan_seeds_deterministic(self):
        assert plan_seeds(5, 12) == plan_seeds(5, 12)
        assert plan_seeds(5, 12) != plan_seeds(6, 12)

    def test_flip_value_semantics(self):
        assert flip_value(10, 0b110) == 10 ^ 0b110
        assert flip_value(True, 99) is False
        flipped = flip_value(4.25, 12345)
        assert flipped != 4.25
        # Mantissa-only flip: sign and exponent survive, value stays finite.
        assert flipped > 0
        assert abs(flipped - 4.25) / 4.25 < 1.0

    def test_null_injector_is_inert(self):
        assert NULL_INJECTOR.enabled is False
        assert NULL_INJECTOR.mem_extra(100) == 0
        assert NULL_INJECTOR.port_limited(100) is False
        assert NULL_INJECTOR.corrupt_value(None, 17) == 17
        assert NULL_INJECTOR.hang_pending(None, 100) is False


# -- deadlocks: typed, diagnosed, engine-identical ------------------------------


def _sequential_task(module: Module, name: str, body) -> object:
    """One single-worker task function whose entry block is ``body(builder)``."""
    task = module.new_function(name, FunctionType(VOID, []), [])
    builder = IRBuilder(task.new_block("entry"))
    body(builder)
    builder.ret()
    task.task_info = TaskInfo(0, 0, StageKind.SEQUENTIAL, 1)
    return task


def _fork_join_parent(module: Module, tasks) -> None:
    parent = module.new_function("parent", FunctionType(VOID, []), [])
    builder = IRBuilder(parent.new_block("entry"))
    for task in tasks:
        builder.block.append(ParallelFork(0, task, [], None))
    builder.block.append(ParallelJoin(0))
    builder.ret()


def _starved_consumer():
    """A consumer on a channel nothing ever fills (empty-wait forever)."""
    module = Module("starved")
    plan = ChannelPlan()
    chan = plan.new_channel("never", I32, 0, 1)
    task = _sequential_task(
        module, "eater", lambda b: b.block.append(Consume(chan, I32))
    )
    _fork_join_parent(module, [task])
    return module, plan


def _overrun_producer():
    """Two pushes into a depth-1 channel nobody drains (full-wait forever)."""
    module = Module("overrun")
    plan = ChannelPlan()
    chan = plan.new_channel("tiny", I32, 0, 1, depth=1)

    def body(b):
        b.block.append(Produce(chan, IRBuilder.const_int(0),
                               IRBuilder.const_int(42)))
        b.block.append(Produce(chan, IRBuilder.const_int(0),
                               IRBuilder.const_int(43)))

    task = _sequential_task(module, "pusher", body)
    _fork_join_parent(module, [task])
    return module, plan


def _mutual_wait():
    """Two tasks each consuming what only the other (later) produces."""
    module = Module("mutual")
    plan = ChannelPlan()
    chan_ab = plan.new_channel("ab", I32, 0, 1)
    chan_ba = plan.new_channel("ba", I32, 0, 1)

    def body_a(b):
        b.block.append(Consume(chan_ba, I32))
        b.block.append(Produce(chan_ab, IRBuilder.const_int(0),
                               IRBuilder.const_int(1)))

    def body_b(b):
        b.block.append(Consume(chan_ab, I32))
        b.block.append(Produce(chan_ba, IRBuilder.const_int(0),
                               IRBuilder.const_int(2)))

    task_a = _sequential_task(module, "alpha", body_a)
    task_b = _sequential_task(module, "beta", body_b)
    _fork_join_parent(module, [task_a, task_b])
    return module, plan


DEADLOCK_TOPOLOGIES = {
    "starved-consumer": _starved_consumer,
    "overrun-producer": _overrun_producer,
    "mutual-wait": _mutual_wait,
}


def _run_until_deadlock(module, plan, engine: str) -> DeadlockError:
    system = AcceleratorSystem(module, Memory(), channels=plan, engine=engine)
    with pytest.raises(DeadlockError) as info:
        system.run("parent", [])
    return info.value


class TestDeadlockDiagnosis:
    @pytest.mark.parametrize("topology", sorted(DEADLOCK_TOPOLOGIES))
    def test_engines_agree_on_cycle_and_diagnosis(self, topology):
        build = DEADLOCK_TOPOLOGIES[topology]
        errors = {}
        for engine in ENGINES:
            module, plan = build()
            errors[engine] = _run_until_deadlock(module, plan, engine)
        event, lockstep = errors["event"], errors["lockstep"]
        for other in ENGINES[1:]:
            assert str(event) == str(errors[other]), other
            assert errors[other].diagnosis is not None
        assert event.diagnosis is not None
        assert event.diagnosis.cycle == lockstep.diagnosis.cycle
        for other in ENGINES[1:]:
            assert event.diagnosis.to_dict() == errors[other].diagnosis.to_dict()
        # Legacy message shape preserved for string-matching callers.
        assert "no runnable worker and no pending event" in str(event)

    def test_starved_consumer_names_worker_and_fifo(self):
        module, plan = _starved_consumer()
        error = _run_until_deadlock(module, plan, "event")
        entry = error.diagnosis.worker("eater#w0")
        assert entry is not None
        assert entry.reason == "consume"
        assert entry.fifo == "buf0:never"
        assert entry.occupancy == (0,)

    def test_overrun_producer_names_full_queue(self):
        module, plan = _overrun_producer()
        error = _run_until_deadlock(module, plan, "event")
        entry = error.diagnosis.worker("pusher#w0")
        assert entry is not None
        assert entry.reason == "produce"
        assert entry.fifo == "buf0:tiny"
        assert entry.occupancy == (1,) and entry.depth == 1

    def test_mutual_wait_reports_suspected_cycle(self):
        module, plan = _mutual_wait()
        error = _run_until_deadlock(module, plan, "event")
        cycle = error.diagnosis.suspected_cycle
        assert sorted(cycle) == ["alpha#w0", "beta#w0"]
        assert "suspected cycle" in str(error)

    def test_undersized_real_pipeline_fuzz(self):
        # The known-deadlocking real configuration: depth-0 FIFOs can
        # never be pushed.  Both engines must fail identically on the
        # compiled ks pipeline, not just on hand-built IR.
        spec = SMALL_KS
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        compiled = cgpa_compile(
            module, spec.accel_function, shapes=spec.shapes_for(module),
            policy=ReplicationPolicy.P1, n_workers=2, fifo_depth=0,
        )
        errors = {}
        for engine in ENGINES:
            memory, globals_, args = setup_workload(compiled.module, spec)
            system = AcceleratorSystem(
                compiled.module, memory,
                channels=compiled.result.channels,
                global_addresses=globals_, engine=engine,
            )
            with pytest.raises(DeadlockError) as info:
                system.run(spec.measure_entry, args)
            errors[engine] = info.value
        assert str(errors["event"]) == str(errors["lockstep"])
        assert str(errors["event"]) == str(errors["specialized"])
        assert errors["event"].diagnosis.blocked  # graph is populated

    @pytest.mark.parametrize("seed", [11, 23])
    def test_injected_hang_diagnosed_identically(self, seed):
        # A seeded hang plan wedges a ks pipeline worker; both engines
        # must report the same watchdog diagnosis with the hung worker
        # as root cause.
        _, _, ctx = baseline("ks")
        plan = FaultPlan.generate(seed, "hang", ctx)
        assert plan.by_kind("worker_hang")
        messages = {}
        for engine in ENGINES:
            with pytest.raises(DeadlockError) as info:
                simulate_kernel("ks", engine, injector=FaultInjector(plan))
            messages[engine] = str(info.value)
            assert info.value.diagnosis.root_hang is not None
            assert "hung" in messages[engine]
        assert messages["event"] == messages["lockstep"]
        assert messages["event"] == messages["specialized"]


# -- graceful degradation: timing faults never change liveouts ------------------


class TestTimingFaultsPreserveLiveouts:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    @pytest.mark.parametrize("seed", [101, 202])
    def test_liveouts_bit_identical(self, name, seed):
        base_sim, base_checksum, ctx = baseline(name)
        plan = FaultPlan.generate(seed, "timing", ctx)
        assert plan.timing_only
        sim, checksum = simulate_kernel(
            name, injector=FaultInjector(plan),
            max_cycles=base_sim.cycles * 64 + 10_000,
        )
        assert checksum == base_checksum
        assert sim.return_value == base_sim.return_value
        assert sim.invocations == base_sim.invocations
        # Faults cost cycles, never correctness.
        assert sim.cycles >= base_sim.cycles


# -- invariant monitor ----------------------------------------------------------


class TestInvariantMonitor:
    def test_interval_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            InvariantMonitor(interval=0)

    def test_clean_run_passes_and_is_untouched(self):
        monitor = InvariantMonitor(interval=1024)
        watched, watched_checksum = simulate_kernel("ks", monitor=monitor)
        plain, plain_checksum = simulate_kernel("ks")
        assert monitor.checks_run > 0
        assert watched_checksum == plain_checksum
        assert watched.cycles == plain.cycles
        assert watched.worker_stats == plain.worker_stats

    def test_monitor_identical_across_engines(self):
        # Read-only checks must not perturb either engine; the simulated
        # history stays bit-identical.  (The *number* of checks may
        # differ: the event engine only lands on simulated cycles, so a
        # long skip can cover several check intervals at once.)
        monitors = {engine: InvariantMonitor(interval=777) for engine in ENGINES}
        runs = {
            engine: simulate_kernel("ks", engine, monitor=monitors[engine])
            for engine in ENGINES
        }
        sim_e, checksum_e = runs["event"]
        for engine in ENGINES[1:]:
            sim, checksum = runs[engine]
            assert sim_e.cycles == sim.cycles, engine
            assert checksum_e == checksum, engine
        assert all(m.checks_run > 0 for m in monitors.values())

    def test_corrupted_state_reports_every_violation(self):
        module = Module("m")
        plan = ChannelPlan()
        plan.new_channel("c", I32, 0, 1, depth=4)
        system = AcceleratorSystem(module, Memory(), channels=plan)
        fifo = next(iter(system.fifos.values()))
        # Two independent lies: phantom pushes and an impossible occupancy
        # high-water mark.  The monitor must list both, not stop at one.
        fifo.stats.pushes = 5
        fifo.stats.max_occupancy = 9
        monitor = InvariantMonitor()
        with pytest.raises(InvariantViolationError) as info:
            monitor.check(system, cycle=100)
        violations = info.value.violations
        assert len(violations) >= 2
        checks = {v.check for v in violations}
        assert any("conservation" in c for c in checks)
        assert any("max-occupancy" in c for c in checks)
        assert "buf0:c" in str(info.value)

    def test_negative_counter_detected(self):
        module = Module("m")
        plan = ChannelPlan()
        plan.new_channel("c", I32, 0, 1)
        system = AcceleratorSystem(module, Memory(), channels=plan)
        fifo = next(iter(system.fifos.values()))
        fifo.stats.full_stall_cycles = -3
        with pytest.raises(InvariantViolationError, match="non-negative"):
            InvariantMonitor().check(system, cycle=10)


# -- DSE evaluator: typed classification with deprecated fallback ----------------


class _StubCompiled:
    full_signature = "S-P-S/p1/stub"


class TestEvaluatorClassification:
    def _evaluator(self, monkeypatch, exc):
        evaluator = Evaluator(SMALL_KS)
        monkeypatch.setattr(evaluator, "compile", lambda point: _StubCompiled())

        def boom(point, compiled):
            raise exc

        monkeypatch.setattr(evaluator, "_simulate", boom)
        return evaluator

    def test_deadlock_error_carries_diagnosis(self, monkeypatch):
        diagnosis = DeadlockDiagnosis(cycle=77)
        exc = DeadlockError("hardware deadlock at cycle 77: ...",
                            diagnosis=diagnosis)
        result = self._evaluator(monkeypatch, exc).evaluate(DesignPoint())
        assert result.status == "deadlock"
        assert result.diagnosis == diagnosis.format()
        assert "cycle 77" in result.diagnosis

    def test_budget_exceeded_is_timeout(self, monkeypatch):
        exc = CycleBudgetExceeded(1234, cycle=1235)
        result = self._evaluator(monkeypatch, exc).evaluate(DesignPoint())
        assert result.status == "timeout"
        assert "max_cycles=1234" in result.error
        assert result.diagnosis is None

    @pytest.mark.parametrize("message,status", [
        ("hardware deadlock at cycle 3: stuck", "deadlock"),
        ("exceeded max_cycles=50", "timeout"),
        ("bus exploded", "error"),
    ])
    def test_untyped_simulation_error_falls_back_to_grep(
        self, monkeypatch, message, status
    ):
        # Deprecated path: a plain SimulationError (no typed subclass)
        # still classifies by message content.
        result = self._evaluator(
            monkeypatch, SimulationError(message)
        ).evaluate(DesignPoint())
        assert result.status == status
        assert _classify_sim_failure(SimulationError(message)) == status

    def test_result_dict_tolerates_pre_diagnosis_cache_entries(self):
        result = EvalResult(point=DesignPoint(), status="deadlock",
                            error="dead", diagnosis="full report")
        wire = result.to_dict()
        assert wire["diagnosis"] == "full report"
        assert EvalResult.from_dict(wire) == result
        legacy = dict(wire)
        del legacy["diagnosis"]
        restored = EvalResult.from_dict(legacy)
        assert restored.diagnosis is None
        assert restored.status == "deadlock"

    def test_result_dict_tolerates_future_schema_extra_keys(self):
        # Regression: a cache entry written by a *newer* schema carries
        # keys this build has never heard of; from_dict must drop them
        # instead of crashing the whole sweep with a TypeError.
        result = EvalResult(point=DesignPoint(), status="ok", cycles=123)
        wire = result.to_dict()
        wire["thermal_mw"] = 41.5
        wire["new_nested"] = {"a": [1, 2]}
        restored = EvalResult.from_dict(wire)
        assert restored == result
        assert restored.cycles == 123


# -- resilience sweep + CLI -----------------------------------------------------


class TestResilienceSweepAndCli:
    def test_sweep_is_deterministic(self):
        a = resilience_sweep(SMALL_KS, n_plans=2, seed=9)
        b = resilience_sweep(SMALL_KS, n_plans=2, seed=9)
        assert a.format() == b.format()
        assert a.to_dict() == b.to_dict()
        assert len(a.records) == 2 * len(PLAN_KINDS)
        assert a.timing_correct == 2

    def test_faults_cli_smoke(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        rc = main(["faults", "ks", "--plans", "1", "--seed", "0",
                   "--json", str(out), "--store", str(tmp_path / "store")])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "Resilience sweep: ks (1 plans/class, seed 0)" in stdout
        data = json.loads(out.read_text())
        assert data["kernel"] == "ks"
        assert len(data["records"]) == len(PLAN_KINDS)

    def test_faults_cli_rejects_bad_plans(self):
        with pytest.raises(SystemExit):
            faults_main(["ks", "--plans", "0"])

    def test_cli_budget_failure_is_one_line_exit_1(self, capsys):
        rc = main(["--kernel", "ks", "--max-cycles", "1000"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err == "error: exceeded max_cycles=1000\n"

    def test_trace_cli_budget_failure_is_one_line_exit_1(self, capsys,
                                                         tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["trace", "ks", "--max-cycles", "500"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: exceeded max_cycles=500")
