"""Scheduler tests: the paper's constraints (1)-(4) and basic FSM shape."""

import pytest

from repro.errors import ScheduleError
from repro.frontend import compile_c
from repro.ir import (
    Channel,
    Consume,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    ParallelFork,
    ParallelJoin,
    Produce,
    RetrieveLiveout,
    StoreLiveout,
    VOID,
)
from repro.rtl import cost_of, schedule_function
from repro.transforms import optimize_module


def schedule_c(source, name="f"):
    module = compile_c(source)
    optimize_module(module)
    f = module.get_function(name)
    return f, schedule_function(f)


class TestDataDependences:
    def test_dependent_ops_spaced_by_latency(self):
        f, sched = schedule_c("int f(int a, int b) { return (a * b) + 1; }")
        block = f.entry
        bs = sched.block_schedule(block)
        mul = next(i for i in block.instructions if i.opcode == "mul")
        add = next(i for i in block.instructions if i.opcode == "add")
        assert bs.state_of[id(add)] >= bs.state_of[id(mul)] + cost_of(mul).latency

    def test_independent_ops_share_states(self):
        f, sched = schedule_c(
            "int f(int a, int b, int c, int d) { return (a + b) ^ (c - d); }"
        )
        bs = sched.block_schedule(f.entry)
        add = next(i for i in f.entry.instructions if i.opcode == "add")
        sub = next(i for i in f.entry.instructions if i.opcode == "sub")
        assert bs.state_of[id(add)] == bs.state_of[id(sub)] == 0

    def test_fp_latency_respected(self):
        f, sched = schedule_c(
            "double f(double a, double b) { return a * b + 1.0; }"
        )
        bs = sched.block_schedule(f.entry)
        fmul = next(i for i in f.entry.instructions if i.opcode == "fmul")
        fadd = next(i for i in f.entry.instructions if i.opcode == "fadd")
        assert bs.state_of[id(fadd)] - bs.state_of[id(fmul)] >= cost_of(fmul).latency

    def test_terminator_is_last(self):
        f, sched = schedule_c("double f(double a) { return a * a * a; }")
        for block in f.blocks:
            bs = sched.block_schedule(block)
            term = block.terminator
            for inst in block.instructions:
                assert bs.state_of[id(inst)] <= bs.state_of[id(term)]
            assert bs.n_states == bs.state_of[id(term)] + 1

    def test_phis_at_state_zero(self):
        f, sched = schedule_c(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        for block in f.blocks:
            bs = sched.block_schedule(block)
            for phi in block.phis():
                assert bs.state_of[id(phi)] == 0


class TestBlockingOps:
    def test_memory_ops_serialized(self):
        f, sched = schedule_c(
            "void* malloc(int n);"
            "int f(int* p) { return p[0] + p[1] + p[2]; }"
        )
        bs = sched.block_schedule(f.entry)
        loads = [i for i in f.entry.instructions if i.opcode == "load"]
        states = sorted(bs.state_of[id(l)] for l in loads)
        assert len(set(states)) == len(states)  # one memory op per state

    def test_constraint3_fifo_never_with_memory(self):
        # Build IR with a load and a produce that could otherwise share.
        m = Module("m")
        chan = Channel(0, "c", I32, 0, 1)
        from repro.ir import ptr
        f = m.new_function("f", FunctionType(VOID, [ptr(I32)]), ["p"])
        b = IRBuilder(f.new_block("entry"))
        v = b.load(f.args[0])
        b.block.append(Produce(chan, b.const_int(0), v))
        b.ret()
        sched = schedule_function(f)
        bs = sched.block_schedule(f.entry)
        load = f.entry.instructions[0]
        produce = f.entry.instructions[1]
        assert bs.state_of[id(load)] != bs.state_of[id(produce)]

    def test_constraint1_same_loop_forks_share_state(self):
        m = Module("m")
        task = m.new_function("t", FunctionType(VOID, []), [])
        tb = IRBuilder(task.new_block("entry"))
        tb.ret()
        f = m.new_function("f", FunctionType(VOID, []), [])
        b = IRBuilder(f.new_block("entry"))
        for _ in range(4):
            b.block.append(ParallelFork(0, task, [], None))
        b.block.append(ParallelJoin(0))
        b.ret()
        sched = schedule_function(f)
        bs = sched.block_schedule(f.entry)
        fork_states = {
            bs.state_of[id(i)]
            for i in f.entry.instructions
            if isinstance(i, ParallelFork)
        }
        assert len(fork_states) == 1

    def test_constraint2_different_loops_different_states(self):
        m = Module("m")
        task = m.new_function("t", FunctionType(VOID, []), [])
        IRBuilder(task.new_block("entry")).ret()
        f = m.new_function("f", FunctionType(VOID, []), [])
        b = IRBuilder(f.new_block("entry"))
        b.block.append(ParallelFork(0, task, [], None))
        b.block.append(ParallelFork(1, task, [], None))
        b.ret()
        sched = schedule_function(f)
        bs = sched.block_schedule(f.entry)
        forks = [i for i in f.entry.instructions if isinstance(i, ParallelFork)]
        assert bs.state_of[id(forks[0])] != bs.state_of[id(forks[1])]

    def test_constraint4_liveout_with_terminator(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(VOID, [I32]), ["v"])
        b = IRBuilder(f.new_block("entry"))
        b.block.append(StoreLiveout(0, f.args[0]))
        b.ret()
        sched = schedule_function(f)
        bs = sched.block_schedule(f.entry)
        store = f.entry.instructions[0]
        ret = f.entry.terminator
        assert bs.state_of[id(store)] == bs.state_of[id(ret)]

    def test_retrieve_not_hoisted_above_join(self):
        m = Module("m")
        task = m.new_function("t", FunctionType(VOID, []), [])
        IRBuilder(task.new_block("entry")).ret()
        f = m.new_function("f", FunctionType(I32, []), [])
        b = IRBuilder(f.new_block("entry"))
        b.block.append(ParallelFork(0, task, [], None))
        join = b.block.append(ParallelJoin(0))
        r = b.block.append(RetrieveLiveout(0, I32))
        b.ret(r)
        sched = schedule_function(f)
        bs = sched.block_schedule(f.entry)
        assert bs.state_of[id(r)] >= bs.state_of[id(join)]


class TestKernelSchedules:
    def test_all_kernels_schedule_cleanly(self):
        from repro.kernels import ALL_KERNELS
        for spec in ALL_KERNELS:
            module = compile_c(spec.source, spec.name)
            optimize_module(module)
            for fn in module.functions.values():
                if not fn.is_declaration:
                    schedule_function(fn)  # raises on constraint violation
