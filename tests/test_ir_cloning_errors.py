"""Clone coverage for every instruction class, plus the error hierarchy."""

import pytest

from repro import errors
from repro.ir import (
    Alloca,
    BasicBlock,
    Call,
    Cast,
    Channel,
    CondBranch,
    Constant,
    Consume,
    F64,
    FunctionType,
    GEP,
    I32,
    ICmp,
    Jump,
    Load,
    Module,
    ParallelFork,
    ParallelJoin,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
    StructType,
    VOID,
    ptr,
)


def c(v, t=I32):
    return Constant(t, v)


class TestCloneCoverage:
    """clone() must work for every instruction class the transform copies."""

    def test_memory_ops(self):
        slot = Alloca(I32, "slot")
        slot2 = slot.clone({})
        assert slot2.allocated_type == I32 and slot2 is not slot

        load = Load(slot)
        load2 = load.clone({slot: slot2})
        assert load2.pointer is slot2

        store = Store(c(1), slot)
        store2 = store.clone({slot: slot2})
        assert store2.pointer is slot2

    def test_gep_clone_remaps_all_indices(self):
        s = StructType("cl", [("a", I32), ("b", F64)])
        base = Alloca(s)
        idx = ICmp("eq", c(0), c(0))  # i1, silly but distinct
        g = GEP(base, [c(0), c(1)])
        base2 = Alloca(s)
        g2 = g.clone({base: base2})
        assert g2.base is base2
        assert g2.type == ptr(F64)

    def test_control_ops(self):
        bb1, bb2 = BasicBlock("x"), BasicBlock("y")
        nb1, nb2 = BasicBlock("nx"), BasicBlock("ny")
        j = Jump(bb1)
        assert j.clone({bb1: nb1}).target is nb1
        cond = ICmp("eq", c(0), c(0))
        br = CondBranch(cond, bb1, bb2)
        br2 = br.clone({bb1: nb1, bb2: nb2})
        assert br2.if_true is nb1 and br2.if_false is nb2

        r = Ret(c(5))
        assert r.clone({}).value.value == 5
        assert Ret(None).clone({}).value is None

    def test_select_and_cast(self):
        cond = ICmp("eq", c(0), c(0))
        sel = Select(cond, c(1), c(2))
        sel2 = sel.clone({})
        assert [o.value for o in sel2.operands[1:]] == [1, 2]
        cst = Cast("sitofp", c(3), F64)
        assert cst.clone({}).type == F64

    def test_call_clone_keeps_callee(self):
        m = Module("m")
        callee = m.new_function("callee", FunctionType(I32, [I32]), ["x"])
        call = Call(callee, [c(1)])
        call2 = call.clone({})
        assert call2.callee is callee

    def test_primitive_clones(self):
        chan = Channel(0, "c", I32, 0, 1, n_channels=4)
        prod = Produce(chan, c(1), c(2))
        prod2 = prod.clone({})
        assert prod2.channel is chan

        bc = ProduceBroadcast(chan, c(3))
        assert bc.clone({}).channel is chan

        cons = Consume(chan, I32, c(0))
        cons2 = cons.clone({})
        assert cons2.worker_select is not None

        m = Module("m")
        task = m.new_function("t", FunctionType(VOID, []), [])
        fork = ParallelFork(7, task, [c(1)], 2)
        fork2 = fork.clone({})
        assert fork2.loop_id == 7 and fork2.worker_id == 2 and fork2.task is task

        assert ParallelJoin(7).clone({}).loop_id == 7
        assert StoreLiveout(3, c(1)).clone({}).liveout_id == 3
        assert RetrieveLiveout(3, I32).clone({}).liveout_id == 3


class TestErrorHierarchy:
    def test_all_errors_are_cgpa_errors(self):
        for name in ("LexerError", "ParseError", "SemanticError", "IRError",
                     "InterpError", "AnalysisError", "PartitionError",
                     "TransformError", "ScheduleError", "SimulationError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.CgpaError)

    def test_position_errors_format(self):
        e = errors.ParseError("boom", 3, 14)
        assert "3:14" in str(e)
        assert e.line == 3 and e.column == 14

    def test_catching_the_base_class(self):
        from repro.frontend import compile_c
        with pytest.raises(errors.CgpaError):
            compile_c("int f( { return 0; }")
