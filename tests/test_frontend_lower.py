"""End-to-end frontend tests: compile C, verify IR, execute, compare.

These are the frontend's strongest tests — every program is run through
the interpreter and checked against the same computation done in Python.
"""

import pytest

from repro.errors import SemanticError
from repro.frontend import compile_c
from repro.interp import Interpreter, Memory
from repro.ir import verify_module


def run(source, fn="main", args=(), memory=None):
    module = compile_c(source)
    verify_module(module)
    return Interpreter(module, memory).call(fn, list(args))


class TestArithmetic:
    def test_int_expressions(self):
        src = "int main(int a, int b) { return (a + b) * (a - b) / 2 + a % b; }"
        assert run(src, args=[9, 4]) == (9 + 4) * (9 - 4) // 2 + 9 % 4

    def test_double_expressions(self):
        src = "double main(double x) { return x * x + 0.5 * x - 1.0; }"
        assert run(src, args=[2.0]) == 2.0 * 2.0 + 0.5 * 2.0 - 1.0

    def test_mixed_int_double_promotion(self):
        src = "double main(int a, double b) { return a / 2 + b * a; }"
        assert run(src, args=[7, 0.5]) == 7 // 2 + 0.5 * 7

    def test_bitwise_and_shifts(self):
        src = "int main(int a, int b) { return ((a & b) | (a ^ 3)) << 2 >> 1; }"
        a, b = 29, 23
        assert run(src, args=[a, b]) == ((a & b) | (a ^ 3)) << 2 >> 1

    def test_unary_ops(self):
        src = "int main(int a) { return -a + ~a + !a; }"
        assert run(src, args=[5]) == -5 + ~5 + 0

    def test_comparison_yields_int(self):
        src = "int main(int a, int b) { int c = a < b; return c + (a == b); }"
        assert run(src, args=[1, 2]) == 1

    def test_float_literal_single(self):
        src = "float main(void) { return 1.5f; }"
        assert run(src) == 1.5

    def test_sizeof(self):
        src = (
            "typedef struct n { double v; int c; } n_t;\n"
            "int main(void) { return sizeof(n_t) + sizeof(int) + sizeof(double*); }"
        )
        assert run(src) == 16 + 4 + 4


class TestControlFlow:
    def test_if_else_chain(self):
        src = """
        int main(int x) {
            if (x > 10) return 3;
            else if (x > 5) return 2;
            else return 1;
        }
        """
        assert run(src, args=[20]) == 3
        assert run(src, args=[7]) == 2
        assert run(src, args=[1]) == 1

    def test_while_loop(self):
        src = """
        int main(int n) {
            int s = 0;
            while (n > 0) { s += n; n--; }
            return s;
        }
        """
        assert run(src, args=[10]) == 55

    def test_for_loop_with_break_continue(self):
        src = """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) continue;
                if (i > 20) break;
                s += i;
            }
            return s;
        }
        """
        assert run(src, args=[100]) == sum(i for i in range(100) if i % 2 and i <= 20)

    def test_do_while(self):
        src = """
        int main(int n) {
            int c = 0;
            do { c++; n /= 2; } while (n > 0);
            return c;
        }
        """
        assert run(src, args=[100]) == 7  # 100,50,25,12,6,3,1

    def test_short_circuit_and_guards_null(self):
        src = """
        typedef struct n { int x; } n_t;
        int main(n_t* p) { if (p && p->x > 0) return 1; return 0; }
        """
        assert run(src, args=[0]) == 0  # null pointer: must not dereference

    def test_short_circuit_or(self):
        src = "int main(int a, int b) { return a == 1 || b == 1; }"
        assert run(src, args=[0, 1]) == 1
        assert run(src, args=[0, 0]) == 0

    def test_ternary(self):
        src = "int main(int a, int b) { return a > b ? a : b; }"
        assert run(src, args=[3, 9]) == 9

    def test_nested_loops(self):
        src = """
        int main(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < i; j++)
                    s += i * j;
            return s;
        }
        """
        n = 8
        assert run(src, args=[n]) == sum(i * j for i in range(n) for j in range(i))


class TestPointersAndStructs:
    def test_linked_list_traversal(self):
        src = """
        typedef struct node { int value; struct node* next; } node_t;
        void* malloc(int n);
        node_t* build(int n) {
            node_t* head = 0;
            for (int i = 0; i < n; i++) {
                node_t* fresh = (node_t*)malloc(sizeof(node_t));
                fresh->value = i;
                fresh->next = head;
                head = fresh;
            }
            return head;
        }
        int main(int n) {
            node_t* list = build(n);
            int s = 0;
            for ( ; list; list = list->next) s += list->value;
            return s;
        }
        """
        assert run(src, args=[10]) == 45

    def test_array_parameter_indexing(self):
        src = """
        void* malloc(int n);
        int main(int n) {
            int* a = (int*)malloc(n * sizeof(int));
            for (int i = 0; i < n; i++) a[i] = i * i;
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        """
        assert run(src, args=[6]) == sum(i * i for i in range(6))

    def test_local_array(self):
        src = """
        int main(void) {
            int buf[4];
            for (int i = 0; i < 4; i++) buf[i] = i + 1;
            return buf[0] + buf[3];
        }
        """
        assert run(src) == 5

    def test_pointer_arithmetic(self):
        src = """
        void* malloc(int n);
        int main(void) {
            int* a = (int*)malloc(12);
            *a = 1; *(a + 1) = 2; *(a + 2) = 4;
            int* p = a;
            p++;
            return *p + *(p + 1);
        }
        """
        assert run(src) == 6

    def test_pointer_difference(self):
        src = """
        void* malloc(int n);
        int main(void) {
            double* a = (double*)malloc(80);
            double* b = a + 7;
            return b - a;
        }
        """
        assert run(src) == 7

    def test_struct_member_through_pointer_chain(self):
        src = """
        typedef struct inner { double v; } inner_t;
        typedef struct outer { inner_t* in; } outer_t;
        void* malloc(int n);
        double main(void) {
            outer_t* o = (outer_t*)malloc(sizeof(outer_t));
            o->in = (inner_t*)malloc(sizeof(inner_t));
            o->in->v = 6.25;
            return o->in->v;
        }
        """
        assert run(src) == 6.25

    def test_address_of_local(self):
        src = """
        void bump(int* p) { *p += 5; }
        int main(void) { int x = 2; bump(&x); return x; }
        """
        assert run(src) == 7

    def test_struct_array_field(self):
        src = """
        typedef struct s { int tab[4]; int n; } s_t;
        void* malloc(int n);
        int main(void) {
            s_t* p = (s_t*)malloc(sizeof(s_t));
            for (int i = 0; i < 4; i++) p->tab[i] = 10 * i;
            p->n = 2;
            return p->tab[p->n];
        }
        """
        assert run(src) == 20


class TestGlobals:
    def test_global_scalar_read_write(self):
        src = """
        int counter = 5;
        void bump(void) { counter += 3; }
        int main(void) { bump(); bump(); return counter; }
        """
        assert run(src) == 11

    def test_global_array_init(self):
        src = """
        double coef[3] = {0.25, 0.5, 0.25};
        double main(void) { return coef[0] + coef[1] + coef[2]; }
        """
        assert run(src) == 1.0


class TestFunctions:
    def test_recursion(self):
        src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
        assert run(src, fn="fib", args=[10]) == 55

    def test_argument_conversion(self):
        src = """
        double half(double x) { return x / 2.0; }
        double main(int n) { return half(n); }
        """
        assert run(src, args=[9]) == 4.5

    def test_void_function_falls_off_end(self):
        src = "void nop(void) { } int main(void) { nop(); return 3; }"
        assert run(src) == 3


class TestSemanticErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { return nope; }")

    def test_undeclared_function(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { return missing(1); }")

    def test_bad_argument_count(self):
        with pytest.raises(SemanticError):
            compile_c("int f(int a) { return a; } int main(void) { return f(); }")

    def test_assign_to_rvalue(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { 1 = 2; return 0; }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { break; return 0; }")

    def test_member_of_non_struct(self):
        with pytest.raises(SemanticError):
            compile_c("int main(int x) { return x.field; }")

    def test_incompatible_pointer_arith(self):
        with pytest.raises(SemanticError):
            compile_c("int main(int* p, int* q) { return (int)(p + q); }")

    def test_redeclaration_in_scope(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { int x; int x; return 0; }")
