"""Tests for mem2reg, constant folding, DCE, and CFG simplification.

The key test style is differential: every optimized program must behave
exactly like the unoptimized one under the interpreter.
"""

import pytest

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import (
    Alloca,
    Load,
    Phi,
    Store,
    verify_module,
)
from repro.transforms import (
    eliminate_dead_code,
    fold_constants,
    optimize_module,
    promote_allocas,
    simplify_cfg,
)

PROGRAMS = [
    # (source, entry, args, expected)
    ("int f(int a, int b) { int c = a * b; return c + a; }", "f", [3, 4], 15),
    (
        "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i * i; return s; }",
        "f", [10], sum(i * i for i in range(10)),
    ),
    (
        "int f(int n) { int s = 0; int i = 0;"
        " while (i < n) { if (i % 3 == 0) s += i; i++; } return s; }",
        "f", [20], sum(i for i in range(20) if i % 3 == 0),
    ),
    (
        "double f(double x, int n) { double acc = 1.0;"
        " for (int i = 0; i < n; i++) acc = acc * x + 0.5; return acc; }",
        "f", [1.25, 6], None,  # expected computed from unoptimized run
    ),
    (
        """
        typedef struct node { int v; struct node* next; } node_t;
        void* malloc(int n);
        int f(int n) {
            node_t* head = 0;
            for (int i = 0; i < n; i++) {
                node_t* fresh = (node_t*)malloc(sizeof(node_t));
                fresh->v = i * 3;
                fresh->next = head;
                head = fresh;
            }
            int s = 0;
            for ( ; head; head = head->next) s += head->v;
            return s;
        }
        """,
        "f", [12], sum(3 * i for i in range(12)),
    ),
    (
        "int f(int x) { int r; if (x > 0) { if (x > 10) r = 2; else r = 1; }"
        " else r = 0; return r; }",
        "f", [5], 1,
    ),
]


class TestDifferential:
    @pytest.mark.parametrize("source,entry,args,expected", PROGRAMS)
    def test_optimized_matches_unoptimized(self, source, entry, args, expected):
        baseline_module = compile_c(source)
        reference = Interpreter(baseline_module).call(entry, args)
        if expected is not None:
            assert reference == expected

        optimized = compile_c(source)
        optimize_module(optimized)
        verify_module(optimized)
        assert Interpreter(optimized).call(entry, args) == reference

    def test_memory_image_matches_for_pointer_free_heap(self):
        # Optimization must not change what the program writes to its heap.
        # (Programs that store *pointers* into the heap are excluded: the
        # absolute addresses legitimately shift when allocas disappear.)
        source = """
        void* malloc(int n);
        int f(int n) {
            double* a = (double*)malloc(n * sizeof(double));
            int* b = (int*)malloc(n * sizeof(int));
            for (int i = 0; i < n; i++) { a[i] = i * 0.5; b[i] = i * i; }
            int s = 0;
            for (int i = 0; i < n; i++) s += b[i] + (int)a[i];
            return s;
        }
        """
        baseline_module = compile_c(source)
        base_interp = Interpreter(baseline_module)
        reference = base_interp.call("f", [16])

        optimized = compile_c(source)
        optimize_module(optimized)
        opt_interp = Interpreter(optimized)
        assert opt_interp.call("f", [16]) == reference

        base_allocs = [a for a in base_interp.memory.allocations if a.site >= 0]
        opt_allocs = [a for a in opt_interp.memory.allocations if a.site >= 0]
        assert len(base_allocs) == len(opt_allocs)
        for ba, oa in zip(base_allocs, opt_allocs):
            assert ba.size == oa.size
            assert base_interp.memory.read_bytes(ba.addr, ba.size) == \
                opt_interp.memory.read_bytes(oa.addr, oa.size)


class TestMem2Reg:
    def test_scalars_promoted(self):
        module = compile_c("int f(int a) { int x = a + 1; int y = x * 2; return y; }")
        f = module.get_function("f")
        promoted = promote_allocas(f)
        assert promoted >= 2  # a's slot, x, y
        assert not any(isinstance(i, Alloca) for i in f.instructions())
        assert not any(isinstance(i, (Load, Store)) for i in f.instructions())

    def test_phi_inserted_at_join(self):
        module = compile_c(
            "int f(int a) { int r; if (a > 0) r = 1; else r = 2; return r; }"
        )
        f = module.get_function("f")
        promote_allocas(f)
        phis = [i for i in f.instructions() if isinstance(i, Phi)]
        assert len(phis) >= 1

    def test_loop_variable_gets_header_phi(self):
        module = compile_c(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        f = module.get_function("f")
        promote_allocas(f)
        header = next(b for b in f.blocks if b.name.startswith("for.cond"))
        assert len(header.phis()) == 2  # i and s

    def test_escaped_address_not_promoted(self):
        module = compile_c(
            "void g(int* p) { *p = 3; }"
            "int f(void) { int x = 1; g(&x); return x; }"
        )
        f = module.get_function("f")
        promote_allocas(f)
        assert any(isinstance(i, Alloca) for i in f.instructions())
        # And behaviour is preserved.
        assert Interpreter(module).call("f", []) == 3

    def test_aggregate_alloca_not_promoted(self):
        module = compile_c(
            "int f(void) { int buf[4]; buf[0] = 9; return buf[0]; }"
        )
        f = module.get_function("f")
        assert promote_allocas(f) == 0


class TestFolding:
    def test_constant_arithmetic_folds(self):
        module = compile_c("int f(void) { return (3 + 4) * 2 - 6 / 3; }")
        f = module.get_function("f")
        promote_allocas(f)
        fold_constants(f)
        eliminate_dead_code(f)
        ret = f.blocks[0].terminator
        # all the arithmetic folded into the return constant
        from repro.ir import Constant
        assert isinstance(ret.value, Constant)
        assert ret.value.value == 12

    def test_division_by_zero_not_folded(self):
        module = compile_c("int f(int x) { return x + 1 / 0; }")
        f = module.get_function("f")
        promote_allocas(f)
        fold_constants(f)
        from repro.ir import BinaryOp
        assert any(
            isinstance(i, BinaryOp) and i.opcode == "sdiv" for i in f.instructions()
        )

    def test_identity_simplification(self):
        module = compile_c("int f(int x) { return x * 1 + 0; }")
        f = module.get_function("f")
        promote_allocas(f)
        fold_constants(f)
        eliminate_dead_code(f)
        ret = f.blocks[0].terminator
        assert ret.value is f.args[0]


class TestSimplifyCfg:
    def test_dead_branch_removed(self):
        module = compile_c(
            "int f(int x) { if (0) return 1; return 2; }"
        )
        f = module.get_function("f")
        optimize_module(module)
        assert Interpreter(module).call("f", [0]) == 2
        # The 'return 1' block must be gone.
        assert len(f.blocks) == 1

    def test_straightline_merged(self):
        module = compile_c("int f(int a) { int b = a + 1; { int c = b * 2; return c; } }")
        optimize_module(module)
        f = module.get_function("f")
        assert len(f.blocks) == 1

    def test_loop_structure_survives(self):
        module = compile_c(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        optimize_module(module)
        f = module.get_function("f")
        from repro.analysis import LoopInfo
        assert len(LoopInfo(f).loops) == 1
        assert Interpreter(module).call("f", [10]) == 45


class TestDce:
    def test_unused_computation_removed(self):
        module = compile_c("int f(int a) { int unused = a * 37; return a; }")
        f = module.get_function("f")
        promote_allocas(f)
        before = sum(1 for _ in f.instructions())
        eliminate_dead_code(f)
        after = sum(1 for _ in f.instructions())
        assert after < before

    def test_stores_kept(self):
        module = compile_c(
            "void* malloc(int n);"
            "int f(void) { int* p = (int*)malloc(4); *p = 5; return *p; }"
        )
        optimize_module(module)
        assert Interpreter(module).call("f", []) == 5
