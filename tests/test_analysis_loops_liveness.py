"""Tests for loop live-in/live-out computation and loop structure queries."""

import pytest

from repro.analysis import LoopInfo
from repro.frontend import compile_c
from repro.ir import Phi
from repro.transforms import optimize_module


def loop_of(source, name="kernel", index=0):
    module = compile_c(source)
    optimize_module(module)
    fn = module.get_function(name)
    return module, fn, LoopInfo(fn).top_level()[index]


class TestLiveIns:
    def test_arguments_are_liveins(self):
        module, fn, loop = loop_of(
            "int kernel(int n, int step) {"
            " int s = 0; for (int i = 0; i < n; i += 1) s += step;"
            " return s; }"
        )
        names = {v.name for v in loop.live_ins()}
        assert "n" in names and "step" in names

    def test_preheader_computations_are_liveins(self):
        module, fn, loop = loop_of(
            "int kernel(int n) {"
            " int base = n * 17;"
            " int s = 0;"
            " for (int i = 0; i < n; i++) s += base;"
            " return s; }"
        )
        liveins = loop.live_ins()
        # base (the mul result) flows in from outside the loop.
        assert any(
            getattr(v, "opcode", None) == "mul" for v in liveins
        )

    def test_constants_not_liveins(self):
        module, fn, loop = loop_of(
            "int kernel(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += 42; return s; }"
        )
        from repro.ir import Constant
        assert not any(isinstance(v, Constant) for v in loop.live_ins())

    def test_globals_not_liveins(self):
        module, fn, loop = loop_of(
            "int g = 3;"
            "int kernel(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += g; return s; }"
        )
        from repro.ir import GlobalVariable
        assert not any(isinstance(v, GlobalVariable) for v in loop.live_ins())


class TestLiveOuts:
    def test_reduction_phi_liveout(self):
        module, fn, loop = loop_of(
            "int kernel(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += i; return s; }"
        )
        liveouts = loop.live_outs()
        assert len(liveouts) == 1
        assert isinstance(liveouts[0], Phi)

    def test_no_liveouts_for_memory_only_loop(self):
        module, fn, loop = loop_of(
            "void* malloc(int m);"
            "void kernel(int* a, int n) {"
            " for (int i = 0; i < n; i++) a[i] = i; }"
        )
        assert loop.live_outs() == []

    def test_multiple_liveouts(self):
        module, fn, loop = loop_of(
            "int kernel(int n) { int s = 0; int p = 1;"
            " for (int i = 1; i <= n; i++) { s += i; p *= i; }"
            " return s + p; }"
        )
        assert len(loop.live_outs()) == 2


class TestStructure:
    def test_latch_and_exits(self):
        module, fn, loop = loop_of(
            "int kernel(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += i; return s; }"
        )
        assert len(loop.latches()) == 1
        assert len(loop.exiting_blocks()) == 1
        assert len(loop.exit_blocks()) == 1
        assert loop.exit_blocks()[0].name.startswith("for.end")

    def test_while_with_break_two_exiting(self):
        module, fn, loop = loop_of(
            "int kernel(int n) { int i = 0;"
            " while (i < n) { if (i == 5) break; i++; }"
            " return i; }"
        )
        assert len(loop.exiting_blocks()) == 2

    def test_do_while_loop_recognized(self):
        module, fn, loop = loop_of(
            "int kernel(int n) { int i = 0;"
            " do { i += 2; } while (i < n); return i; }"
        )
        assert loop.header is not None
        assert len(loop.latches()) == 1

    def test_depth_and_nesting(self):
        module, fn, loop = loop_of(
            "int kernel(int n) { int s = 0;"
            " for (int i = 0; i < n; i++)"
            "   for (int j = 0; j < i; j++)"
            "     for (int k = 0; k < j; k++) s += k;"
            " return s; }"
        )
        assert loop.depth == 0
        inner = loop.children[0]
        assert inner.depth == 1
        assert inner.children[0].depth == 2
        assert loop.contains_block(inner.children[0].header)
