"""Differential tests: the specialized engine vs event and lockstep.

The specialized engine (:mod:`repro.hw.specialize`) compiles each
worker's FSM schedule into generated Python closures — per-state
dispatch resolved at build time, operand slots pre-indexed, pure
compute runs batched into one tick — so the hot path stops walking
``Instruction`` objects.  None of that is allowed to be observable:
the contract is *bit-identical* ``SimReport``\\ s against both the
event engine and the lockstep oracle on every kernel and policy —
cycles, per-worker stall breakdowns, op counters, cache and FIFO
statistics, liveout checksums — plus identical failure behaviour
(budget exhaustion at the same cycle, identical trace spans when a
sink disables batching).
"""

import dataclasses

import pytest

from repro.errors import CycleBudgetExceeded
from repro.fleet import interned_workload
from repro.frontend import compile_c
from repro.hw import (
    AcceleratorSystem,
    DirectMappedCache,
    MemoryTraceSink,
    specialized_for,
)
from repro.interp import Interpreter, Memory
from repro.kernels import ALL_KERNELS, KERNELS_BY_NAME
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module

ENGINES = ("event", "lockstep", "specialized")

KERNEL_NAMES = [spec.name for spec in ALL_KERNELS]

#: Scaled-down workloads: the policy matrix is 9 kernels x 3 policies x
#: 3 engines; small inputs keep it a seconds-scale suite while running
#: the exact same compiled pipelines as the full-size workloads.
SMALL_ARGS = {
    "1D-Gaussblur": [6, 48],
    "Hash-indexing": [128, 32],
    "K-means": [24, 3, 4],
    "em3d": [48, 32, 4],
    "ks": [12, 12],
    "bfs": [1, 40, 3],
    "hash-join": [1, 40, 32, 8],
    "spmv": [1, 20, 16, 3],
    "top-k": [1, 48, 6],
}

_COMPILED: dict[tuple, object] = {}


def small_spec(name: str):
    return dataclasses.replace(KERNELS_BY_NAME[name], setup_args=SMALL_ARGS[name])


def compiled_kernel(name: str, policy: str = "p1", n_workers: int = 4,
                    fifo_depth: int = 16):
    key = (name, policy, n_workers, fifo_depth)
    if key not in _COMPILED:
        spec = small_spec(name)
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        _COMPILED[key] = cgpa_compile(
            module, spec.accel_function, shapes=spec.shapes_for(module),
            policy=ReplicationPolicy(policy), n_workers=n_workers,
            fifo_depth=fifo_depth,
        )
    return _COMPILED[key]


def simulate(name: str, engine: str, policy: str = "p1", sink=None,
             **system_kwargs):
    """Run one (kernel, policy) on one engine; returns (report, checksum)."""
    spec = small_spec(name)
    compiled = compiled_kernel(name, policy)
    # Cloned from one interned image: every engine sees bit-identical
    # inputs, so report differences can only come from the engine.
    memory, globals_, args = interned_workload(compiled.module, spec)
    system = AcceleratorSystem(
        compiled.module, memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=globals_,
        sink=sink,
        engine=engine,
        **system_kwargs,
    )
    sim = system.run(spec.measure_entry, args)
    interp = Interpreter(compiled.module, memory, global_addresses=globals_)
    return sim, float(interp.call(spec.check_function, []))


def assert_reports_identical(got, want):
    assert got.cycles == want.cycles
    assert got.return_value == want.return_value
    assert got.invocations == want.invocations
    assert got.worker_stats == want.worker_stats
    assert got.cache_stats == want.cache_stats
    assert got.fifo_stats == want.fifo_stats
    assert got.stall_breakdown == want.stall_breakdown


class TestKernelPolicyMatrix:
    """Every kernel x policy: specialized == event == lockstep, bit for bit."""

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    @pytest.mark.parametrize("policy", ["p1", "p2", "none"])
    def test_bit_identical_reports(self, name, policy):
        spec = KERNELS_BY_NAME[name]
        if policy == "p2" and not spec.supports_p2:
            pytest.skip(f"{name} has no P2 configuration")
        runs = {engine: simulate(name, engine, policy) for engine in ENGINES}
        specialized, specialized_checksum = runs["specialized"]
        for oracle in ("event", "lockstep"):
            sim, checksum = runs[oracle]
            assert_reports_identical(specialized, sim)
            assert specialized_checksum == checksum, (name, policy, oracle)

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_stall_breakdown_conserved(self, name):
        # Batched COMPUTE attribution must keep each worker's buckets
        # summing to the total cycle count (the conservation law the
        # invariant monitor enforces on unbatched engines).
        sim, _ = simulate(name, "specialized")
        for worker, counts in sim.stall_breakdown.items():
            assert sum(counts.values()) == sim.cycles, worker


class TestFailurePaths:
    def test_budget_exceeded_at_identical_cycle(self):
        # Compute-run batching is capped at the cycle budget, so the
        # specialized engine must report exhaustion at the exact cycle
        # the oracles do — message and all.
        messages = {}
        for engine in ENGINES:
            with pytest.raises(CycleBudgetExceeded) as info:
                simulate("ks", engine, max_cycles=200)
            messages[engine] = str(info.value)
        assert messages["specialized"] == messages["event"]
        assert messages["specialized"] == messages["lockstep"]

    def test_infinite_loop_budget_matches(self):
        source = "int f(void) { int i = 0; while (1) { i++; } return i; }"
        messages = {}
        for engine in ENGINES:
            module = compile_c(source)
            system = AcceleratorSystem(
                module, Memory(), max_cycles=5000, engine=engine,
            )
            with pytest.raises(CycleBudgetExceeded) as info:
                system.run("f", [])
            messages[engine] = str(info.value)
        assert len(set(messages.values())) == 1


class TestTracedRuns:
    def test_traced_spans_identical(self):
        # A trace sink disables compute-run batching (spans are cycle
        # granular); the traced specialized run must produce the exact
        # span cover of the other engines.
        sinks = {engine: MemoryTraceSink() for engine in ENGINES}
        runs = {
            engine: simulate("ks", engine, sink=sinks[engine])
            for engine in ENGINES
        }
        assert_reports_identical(runs["specialized"][0], runs["event"][0])
        assert (
            sinks["specialized"].total_cycles == sinks["lockstep"].total_cycles
        )
        for worker in sinks["lockstep"].worker_names:
            assert sinks["specialized"].spans_for(worker) == sinks[
                "lockstep"
            ].spans_for(worker), worker
        assert sinks["specialized"].spans == sinks["event"].spans


class TestSpecializedProgramCache:
    def test_program_cached_per_function(self):
        compiled = compiled_kernel("ks")
        functions = [
            f for f in compiled.module.functions.values()
            if getattr(f, "task_info", None) is not None
        ]
        assert functions, "pipelined module should contain task functions"
        for function in functions:
            first = specialized_for(function)
            assert specialized_for(function) is first

    def test_private_caches_identical(self):
        runs = {
            engine: simulate("ks", engine, private_caches=True)
            for engine in ENGINES
        }
        assert_reports_identical(runs["specialized"][0], runs["event"][0])
        assert_reports_identical(runs["specialized"][0], runs["lockstep"][0])
        assert runs["specialized"][1] == runs["event"][1]
