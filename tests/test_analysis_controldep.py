"""Unit tests for control-dependence computation (FOW algorithm)."""

from repro.analysis import control_dependence
from repro.frontend import compile_c
from repro.transforms import optimize_module


def cd_of(source, name="f"):
    module = compile_c(source)
    optimize_module(module)
    fn = module.get_function(name)
    cd = control_dependence(fn)
    blocks = {b.name: b for b in fn.blocks}
    return fn, cd, blocks


def controls(cd, blocks, dependent, controller):
    return any(
        b.name == controller for b in cd.get(id(blocks[dependent]), [])
    )


class TestIfElse:
    SRC = """
    int f(int x) {
        int r = 0;
        if (x > 0) r = 1;
        else r = 2;
        return r + x;
    }
    """

    def test_branches_control_their_arms(self):
        fn, cd, blocks = cd_of(self.SRC)
        # After CFG simplification only the else arm survives as a block
        # (the then arm collapsed into a phi edge); it must be controlled
        # by the branch in entry.
        assert controls(cd, blocks, "if.else", "entry")

    def test_merge_not_controlled(self):
        fn, cd, blocks = cd_of(self.SRC)
        # The merge block executes regardless of the branch direction.
        assert not controls(cd, blocks, "if.end", "entry")


class TestLoops:
    SRC = """
    int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) s += i;
        return s;
    }
    """

    def test_body_controlled_by_header(self):
        fn, cd, blocks = cd_of(self.SRC)
        body = next(n for n in blocks if n.startswith("for.body"))
        header = next(n for n in blocks if n.startswith("for.cond"))
        assert controls(cd, blocks, body, header)

    def test_header_controls_itself(self):
        # Whether the header runs again depends on its own branch.
        fn, cd, blocks = cd_of(self.SRC)
        header = next(n for n in blocks if n.startswith("for.cond"))
        assert controls(cd, blocks, header, header)

    def test_exit_block_not_controlled_by_header(self):
        fn, cd, blocks = cd_of(self.SRC)
        header = next(n for n in blocks if n.startswith("for.cond"))
        end = next(n for n in blocks if n.startswith("for.end"))
        assert not controls(cd, blocks, end, header)


class TestNested:
    SRC = """
    int f(int n, int m) {
        int s = 0;
        for (int i = 0; i < n; i++) {
            if (i % 2 == 0) {
                for (int j = 0; j < m; j++) s += j;
            }
        }
        return s;
    }
    """

    def test_inner_loop_controlled_by_guard(self):
        fn, cd, blocks = cd_of(self.SRC)
        # The even-check branch lives in the outer body block 'for.body';
        # the inner header 'for.cond.1' executes only when it is taken.
        assert controls(cd, blocks, "for.cond.1", "for.body")

    def test_transitivity_through_nesting(self):
        fn, cd, blocks = cd_of(self.SRC)
        # The innermost body is directly controlled by the inner header.
        assert controls(cd, blocks, "for.body.1", "for.cond.1")
