"""Integration tests over the five paper kernels (Table 2).

Two levels:
* partition shapes match Table 2 exactly (P1 and P2 columns);
* full functional equivalence: running each kernel's (tiny) driver through
  the transformed pipeline produces a byte-identical memory image to the
  sequential interpreter.
"""

import pytest

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.kernels import (
    ALL_KERNELS,
    KERNELS_BY_NAME,
    PAPER_KERNELS,
    SECOND_WAVE,
    KernelSpec,
)
from repro.pipeline import ReplicationPolicy, cgpa_compile, run_transformed
from repro.transforms import optimize_module


def compile_kernel(spec: KernelSpec, policy=ReplicationPolicy.P1):
    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    return cgpa_compile(
        module, spec.accel_function, shapes=spec.shapes_for(module), policy=policy
    )


class TestTable2Partitions:
    @pytest.mark.parametrize("spec", ALL_KERNELS, ids=lambda s: s.name)
    def test_p1_signature(self, spec):
        compiled = compile_kernel(spec)
        assert compiled.signature == spec.expected_p1

    @pytest.mark.parametrize(
        "spec", [k for k in ALL_KERNELS if k.supports_p2], ids=lambda s: s.name
    )
    def test_p2_signature(self, spec):
        compiled = compile_kernel(spec, ReplicationPolicy.P2)
        assert compiled.signature == spec.expected_p2

    def test_parallel_stage_always_four_workers(self):
        for spec in ALL_KERNELS:
            compiled = compile_kernel(spec)
            parallel = compiled.spec.parallel_stage
            assert parallel is not None, spec.name
            assert parallel.n_workers == 4

    def test_kmeans_index_channel_structure(self):
        # Appendix A.1: one 4-channel FIFO carries the cluster index from
        # the parallel workers to the sequential updater.
        compiled = compile_kernel(KERNELS_BY_NAME["K-means"])
        p_to_s = [
            b for b in compiled.result.bindings
            if compiled.spec.stages[b.producer_stage].is_parallel
            and not compiled.spec.stages[b.consumer_stage].is_parallel
        ]
        assert p_to_s
        assert all(b.channel.n_channels == 4 for b in p_to_s)

    def test_gaussblur_broadcast_pixel(self):
        # Appendix A.2: R3 (the new-pixel load) broadcasts to all four
        # shift-register chains.
        compiled = compile_kernel(KERNELS_BY_NAME["1D-Gaussblur"])
        broadcasts = [b for b in compiled.result.bindings if b.broadcast]
        assert any(b.value.type.is_float for b in broadcasts), \
            "the image pixel must be broadcast to the replicated shifts"

    def test_em3d_traversal_not_replicated_under_p1(self):
        compiled = compile_kernel(KERNELS_BY_NAME["em3d"])
        heavy_replicated = [s for s in compiled.spec.replicated
                            if not s.is_lightweight]
        assert not heavy_replicated

    def test_em3d_traversal_replicated_under_p2(self):
        compiled = compile_kernel(KERNELS_BY_NAME["em3d"], ReplicationPolicy.P2)
        assert any(not s.is_lightweight for s in compiled.spec.replicated)


class TestFunctionalEquivalence:
    """The repo's analogue of the paper's testbench verification."""

    @pytest.mark.parametrize("spec", ALL_KERNELS, ids=lambda s: s.name)
    @pytest.mark.parametrize("policy", [ReplicationPolicy.P1, ReplicationPolicy.P2])
    def test_driver_memory_image_matches(self, spec, policy):
        if policy is ReplicationPolicy.P2 and not spec.supports_p2:
            pytest.skip("Table 2 lists no P2 partition for this kernel")
        # Sequential reference: the kernel's tiny built-in driver.
        ref_module = compile_c(spec.source, spec.name)
        optimize_module(ref_module)
        ref = Interpreter(ref_module)
        ref.call("driver", [])

        compiled = compile_kernel(spec, policy)
        _, memory, _ = run_transformed(compiled.module, "driver", [])
        assert memory.snapshot() == ref.memory.snapshot(), (
            f"{spec.name} [{policy.value}]: pipelined execution diverged"
        )

    @pytest.mark.parametrize("spec", ALL_KERNELS, ids=lambda s: s.name)
    def test_driver_under_varied_worker_counts(self, spec):
        ref_module = compile_c(spec.source, spec.name)
        optimize_module(ref_module)
        ref = Interpreter(ref_module)
        ref.call("driver", [])
        for n_workers in (1, 3):
            module = compile_c(spec.source, spec.name)
            optimize_module(module)
            compiled = cgpa_compile(
                module, spec.accel_function, shapes=spec.shapes_for(module),
                n_workers=n_workers,
            )
            _, memory, _ = run_transformed(compiled.module, "driver", [])
            assert memory.snapshot() == ref.memory.snapshot(), (
                f"{spec.name} with {n_workers} workers diverged"
            )


class TestKernelSpecs:
    def test_registry_complete(self):
        assert len(PAPER_KERNELS) == 5
        assert len(SECOND_WAVE) == 4
        assert ALL_KERNELS == PAPER_KERNELS + SECOND_WAVE
        assert set(KERNELS_BY_NAME) == {
            "K-means", "Hash-indexing", "ks", "em3d", "1D-Gaussblur",
            "bfs", "hash-join", "spmv", "top-k",
        }

    def test_paper_numbers_present(self):
        for spec in PAPER_KERNELS:
            assert spec.paper is not None
            assert spec.paper.legup_aluts > 0
            assert spec.paper.cgpa_aluts > spec.paper.legup_aluts
        # The second wave deliberately carries no paper numbers.
        for spec in SECOND_WAVE:
            assert spec.paper is None

    def test_p2_numbers_only_where_applicable(self):
        for spec in PAPER_KERNELS:
            has_p2_numbers = spec.paper.cgpa_p2_aluts is not None
            assert has_p2_numbers == spec.supports_p2

    def test_sources_compile_and_verify(self):
        from repro.ir import verify_module
        for spec in ALL_KERNELS:
            module = compile_c(spec.source, spec.name)
            verify_module(module)
            optimize_module(module)
            verify_module(module)

    def test_setup_publishes_all_args(self):
        from repro.harness.runner import setup_workload
        for spec in ALL_KERNELS:
            module = compile_c(spec.source, spec.name)
            optimize_module(module)
            _, _, args = setup_workload(module, spec)
            assert len(args) == spec.n_kernel_args
            # Pointer arguments must be non-null.
            assert args[0] != 0
