"""Tests for report formatting (pure functions over synthetic rows)."""

from repro.harness import (
    Fig4Data,
    Table2Row,
    Table3Row,
    TradeoffRow,
    format_figure4,
    format_scalability,
    format_table2,
    format_table3,
    format_tradeoff,
)
from repro.harness.experiments import Fig4Row, ScalabilityPoint


def fig4_data():
    return Fig4Data([
        Fig4Row("em3d", 1.5, 5.5, 1.7, 5.6),
        Fig4Row("ks", 2.0, 7.0, 2.0, 6.5),
    ])


class TestFormatting:
    def test_figure4_contains_geomeans(self):
        text = format_figure4(fig4_data())
        assert "GeoMean" in text
        assert "em3d" in text and "ks" in text
        assert "paper" in text.lower()

    def test_figure4_geomean_math(self):
        data = fig4_data()
        assert abs(data.geomean_legup - (1.5 * 2.0) ** 0.5) < 1e-9
        assert abs(data.geomean_cgpa - (5.5 * 7.0) ** 0.5) < 1e-9

    def test_table2_match_column(self):
        rows = [
            Table2Row("em3d", "3D", "desc", "S-P", "S-P", "P", "P"),
            Table2Row("bad", "x", "desc", "P-S", "S-P-S", None, None),
        ]
        text = format_table2(rows)
        assert "yes" in text and "NO" in text

    def test_table3_formats_missing_paper_values(self):
        rows = [
            Table3Row("k", "Legup", 100, 10.0, 1.0, 5.0, None, None, None),
            Table3Row("k", "CGPA (P1)", 400, 40.0, 1.2, 4.0, 1696, 46.0, 22.1),
        ]
        text = format_table3(rows)
        assert "1696" in text
        assert "-" in text  # missing paper cells

    def test_tradeoff_percentages(self):
        row = TradeoffRow("em3d", 100, 110, 1.0, 1.2, 6.0, 11.0)
        assert abs(row.perf_gain_pct - 10.0) < 1e-9
        assert abs(row.energy_gain_pct - (1 - 1.0 / 1.2) * 100) < 1e-9
        text = format_tradeoff([row])
        assert "+10%" in text

    def test_scalability_table(self):
        points = [
            ScalabilityPoint("em3d", 1, 1000, 1.0),
            ScalabilityPoint("em3d", 4, 260, 1000 / 260),
        ]
        text = format_scalability(points)
        assert "Workers" in text and "3.85x" in text

    def test_tables_are_aligned(self):
        text = format_figure4(fig4_data())
        lines = [l for l in text.splitlines()[1:] if l.strip()]
        header_len = len(lines[0])
        # Separator row has the same width as the header.
        assert lines[1].startswith("-")
