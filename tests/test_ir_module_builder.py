"""Tests for Module bookkeeping, IRBuilder conveniences, and addr helpers."""

import pytest

from repro.errors import IRError
from repro.analysis.addr import gep_constant_offset, strip_casts, strip_constant_offsets
from repro.ir import (
    BOOL,
    Cast,
    Constant,
    F32,
    F64,
    FunctionType,
    GEP,
    I8,
    I32,
    I64,
    IRBuilder,
    Module,
    StructType,
    VOID,
    ptr,
)


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module("m")
        m.new_function("f", FunctionType(VOID, []), [])
        with pytest.raises(IRError, match="duplicate"):
            m.new_function("f", FunctionType(VOID, []), [])

    def test_missing_function_lookup(self):
        with pytest.raises(IRError, match="no function"):
            Module("m").get_function("ghost")

    def test_duplicate_global_rejected(self):
        m = Module("m")
        m.add_global(I32, "g")
        with pytest.raises(IRError, match="duplicate"):
            m.add_global(I32, "g")

    def test_struct_registry_interns_by_name(self):
        m = Module("m")
        a = m.get_struct("node")
        b = m.get_struct("node")
        assert a is b

    def test_global_is_pointer_valued(self):
        m = Module("m")
        g = m.add_global(F64, "coef", [2.5])
        assert g.type == ptr(F64)
        assert g.value_type == F64


class TestBuilder:
    def _fn(self, params=(I32,)):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, list(params)),
                           [f"a{i}" for i in range(len(params))])
        b = IRBuilder(f.new_block("entry"))
        return m, f, b

    def test_int_cast_widening_and_narrowing(self):
        m, f, b = self._fn((I8,))
        wide = b.int_cast(f.args[0], I64)
        assert wide.type == I64 and wide.opcode == "sext"
        narrow = b.int_cast(wide, I8)
        assert narrow.type == I8 and narrow.opcode == "trunc"

    def test_int_cast_identity_returns_same_value(self):
        m, f, b = self._fn((I32,))
        assert b.int_cast(f.args[0], I32) is f.args[0]

    def test_bool_zext_not_sext(self):
        m, f, b = self._fn((I32,))
        cond = b.icmp("sgt", f.args[0], b.const_int(0))
        widened = b.int_cast(cond, I32)
        assert widened.opcode == "zext"  # i1 true must become 1, not -1

    def test_to_double(self):
        m, f, b = self._fn((I32,))
        d = b.to_double(f.args[0])
        assert d.type == F64 and d.opcode == "sitofp"
        d2 = b.to_double(d)
        assert d2 is d

    def test_builder_requires_block(self):
        b = IRBuilder(None)
        with pytest.raises(IRError, match="no insertion block"):
            b.add(IRBuilder.const_int(1), IRBuilder.const_int(2))

    def test_append_to_terminated_block_rejected(self):
        m, f, b = self._fn()
        b.ret(f.args[0])
        with pytest.raises(IRError, match="terminated"):
            b.add(f.args[0], b.const_int(1))


class TestAddrHelpers:
    def test_strip_casts_walks_bitcasts(self):
        m, f, b = (Module("m"), None, None)
        fn = m.new_function("f", FunctionType(VOID, [ptr(I32)]), ["p"])
        bld = IRBuilder(fn.new_block("entry"))
        cast1 = bld.cast("bitcast", fn.args[0], ptr(I8))
        cast2 = bld.cast("bitcast", cast1, ptr(F32))
        assert strip_casts(cast2) is fn.args[0]

    def test_constant_gep_offsets_accumulate(self):
        s = StructType("aoff", [("a", I32), ("b", F64), ("c", I32)])
        m = Module("m")
        fn = m.new_function("f", FunctionType(VOID, [ptr(s)]), ["p"])
        bld = IRBuilder(fn.new_block("entry"))
        g1 = bld.gep(fn.args[0], [bld.const_int(2)])            # +2*24
        g2 = bld.struct_gep(g1, 2)                               # +16
        root, offset = strip_constant_offsets(g2)
        assert root is fn.args[0]
        assert offset == 2 * 24 + 16

    def test_variable_index_yields_unknown_offset(self):
        m = Module("m")
        fn = m.new_function("f", FunctionType(VOID, [ptr(F64), I32]), ["p", "i"])
        bld = IRBuilder(fn.new_block("entry"))
        g = bld.gep(fn.args[0], [fn.args[1]])
        root, offset = strip_constant_offsets(g)
        assert root is fn.args[0]
        assert offset is None
        assert gep_constant_offset(g) is None
