"""Tests for the shared fleet executor (repro.fleet).

The fleet's contract has three legs:

* ``map`` preserves task order, and the serial path runs the *same*
  module-level task function inline — the mechanism behind every
  consumer's "byte-identical at any pool size" guarantee;
* ``interned_workload`` stamps out memory-image clones that are
  bit-identical to a fresh functional setup (counters included);
* the two big consumers — DSE sweeps and resilience sweeps — really do
  produce identical reports serially and on a pool.
"""

import dataclasses
import json

import pytest

from repro.dse.explore import Explorer
from repro.dse.space import ConfigSpace
from repro.dse.strategies import GridStrategy
from repro.faults.sweep import resilience_sweep
from repro.fleet import FleetExecutor, interned_workload
from repro.frontend import compile_c
from repro.harness.runner import setup_workload
from repro.kernels import KERNELS_BY_NAME
from repro.transforms import optimize_module

#: Scaled-down gaussblur: full compile+simulate in tens of milliseconds.
SMALL_BLUR = dataclasses.replace(
    KERNELS_BY_NAME["1D-Gaussblur"], setup_args=[6, 48]
)


def _double(x):
    return x * 2


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three")
    return x


class TestFleetExecutor:
    def test_serial_map_runs_inline_in_order(self):
        fleet = FleetExecutor(1)
        assert fleet.serial
        assert fleet.map(_double, [3, 1, 2]) == [6, 2, 4]
        # Nothing was spawned for the serial path.
        assert fleet._pool is None

    def test_single_task_runs_inline_even_with_pool_config(self):
        with FleetExecutor(4) as fleet:
            assert fleet.map(_double, [21]) == [42]
            assert fleet._pool is None

    def test_pool_map_preserves_order_and_reuses_pool(self):
        with FleetExecutor(2) as fleet:
            assert fleet.map(_double, list(range(8))) == [
                2 * i for i in range(8)
            ]
            pool = fleet._pool
            assert pool is not None
            assert fleet.map(_double, [5, 4]) == [10, 8]
            assert fleet._pool is pool  # reused, not respawned

    def test_close_is_idempotent_and_pool_recreatable(self):
        fleet = FleetExecutor(2)
        fleet.map(_double, [1, 2])
        fleet.close()
        fleet.close()
        assert fleet.map(_double, [1, 2, 3]) == [2, 4, 6]
        fleet.close()

    def test_processes_floor_is_one(self):
        assert FleetExecutor(0).processes == 1
        assert FleetExecutor(-3).processes == 1

    def test_serial_path_propagates_task_errors(self):
        fleet = FleetExecutor(1)
        with pytest.raises(ValueError, match="three"):
            fleet.map(_fail_on_three, [1, 2, 3])

    def test_futures_pool_is_reusable_executor(self):
        with FleetExecutor(2) as fleet:
            future = fleet.futures_pool.submit(_double, 8)
            assert future.result() == 16


class TestInternedWorkload:
    def test_clone_matches_fresh_setup(self):
        spec = SMALL_BLUR
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        fresh_mem, fresh_globals, fresh_args = setup_workload(module, spec)
        mem, globals_, args = interned_workload(module, spec)
        assert mem.snapshot() == fresh_mem.snapshot()
        assert mem._brk == fresh_mem._brk
        assert mem.bytes_read == fresh_mem.bytes_read
        assert mem.bytes_written == fresh_mem.bytes_written
        assert len(mem.allocations) == len(fresh_mem.allocations)
        assert globals_ == fresh_globals
        assert args == fresh_args

    def test_clones_are_independent(self):
        spec = SMALL_BLUR
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        a, globals_a, args_a = interned_workload(module, spec)
        b, globals_b, args_b = interned_workload(module, spec)
        assert a is not b
        before = b.read_bytes(0x1000, 4)
        a.write_bytes(0x1000, b"\xde\xad\xbe\xef")
        assert b.read_bytes(0x1000, 4) == before
        globals_a["poison"] = 1
        assert "poison" not in globals_b
        args_a.append(999)
        assert args_b == list(args_b)

    def test_setup_args_are_part_of_the_key(self):
        spec = SMALL_BLUR
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        small, _, _ = interned_workload(module, spec)
        bigger = dataclasses.replace(spec, setup_args=[6, 64])
        big, _, _ = interned_workload(module, bigger)
        assert small.snapshot() != big.snapshot()


class TestConsumersArePoolSizeInvariant:
    def test_dse_sweep_bytes_identical_at_any_pool_size(self):
        space = ConfigSpace(
            policies=["p1"], n_workers=[1, 2], fifo_depths=[4, 16],
            private_caches=[False], cache_lines=[512], cache_ports=[8],
        )

        def sweep(processes):
            with Explorer(
                SMALL_BLUR, space=space, processes=processes,
                max_cycles=2_000_000,
            ) as explorer:
                result = explorer.run(GridStrategy())
            return json.dumps(result.to_json_dict(), sort_keys=True)

        serial = sweep(1)
        assert sweep(2) == serial

    def test_resilience_report_bytes_identical_at_any_pool_size(self):
        serial = resilience_sweep(SMALL_BLUR, n_plans=2, seed=5, processes=1)
        pooled = resilience_sweep(SMALL_BLUR, n_plans=2, seed=5, processes=3)
        assert serial.format() == pooled.format()
        assert serial.to_dict() == pooled.to_dict()

    def test_resilience_sweep_accepts_shared_fleet(self):
        with FleetExecutor(2) as fleet:
            a = resilience_sweep(
                SMALL_BLUR, n_plans=1, seed=1, fleet=fleet
            )
            b = resilience_sweep(
                SMALL_BLUR, n_plans=1, seed=1, fleet=fleet
            )
        assert a.to_dict() == b.to_dict()

    def test_explorer_external_fleet_not_closed(self):
        fleet = FleetExecutor(1)
        space = ConfigSpace(
            policies=["p1"], n_workers=[1], fifo_depths=[4],
            private_caches=[False], cache_lines=[512], cache_ports=[8],
        )
        explorer = Explorer(SMALL_BLUR, space=space, fleet=fleet)
        explorer.run(GridStrategy())
        explorer.close()  # must not shut down the shared fleet
        assert fleet.map(_double, [2]) == [4]
