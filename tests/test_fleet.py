"""Tests for the shared fleet executor (repro.fleet).

The fleet's contract has four legs:

* ``map`` preserves task order, and the serial path runs the *same*
  module-level task function inline — the mechanism behind every
  consumer's "byte-identical at any pool size" guarantee;
* supervision: worker crashes and blown deadlines are retried under a
  deterministic :class:`RetryPolicy`, surface as typed errors when the
  budget is spent, and leave the surviving results byte-identical to an
  unchaosed run (driven here through :mod:`repro.fleet.chaos`);
* ``interned_workload`` stamps out memory-image clones that are
  bit-identical to a fresh functional setup (counters included);
* the two big consumers — DSE sweeps and resilience sweeps — really do
  produce identical reports serially, on a pool, under chaos, and
  across a checkpoint/resume cycle.
"""

import dataclasses
import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.dse.explore import Explorer
from repro.dse.space import ConfigSpace
from repro.dse.strategies import GridStrategy
from repro.faults.sweep import resilience_sweep
from repro.fleet import (
    FleetExecutor,
    RetryPolicy,
    TaskCrashed,
    TaskTimeout,
    chaos,
    interned_workload,
)
from repro.frontend import compile_c
from repro.harness.runner import setup_workload
from repro.kernels import KERNELS_BY_NAME
from repro.service.store import ArtifactStore
from repro.transforms import optimize_module

#: Scaled-down gaussblur: full compile+simulate in tens of milliseconds.
SMALL_BLUR = dataclasses.replace(
    KERNELS_BY_NAME["1D-Gaussblur"], setup_args=[6, 48]
)

#: No-sleep retry policy so supervised-recovery tests stay fast.
FAST_RETRY = RetryPolicy(backoff_base_s=0.0, jitter=0.0)


def _double(x):
    return x * 2


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three")
    return x


def _crash_once(task):
    """Die hard on the first visit to ``sentinel``, succeed after."""
    sentinel, value = task
    if sentinel is not None:
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(17)
    return value * 2


def _crash_always(task):
    if task == "die":
        os._exit(17)
    return task


def _sleep_then_return(task):
    time.sleep(task)
    return task


class TestFleetExecutor:
    def test_serial_map_runs_inline_in_order(self):
        fleet = FleetExecutor(1)
        assert fleet.serial
        assert fleet.map(_double, [3, 1, 2]) == [6, 2, 4]
        # Nothing was spawned for the serial path.
        assert fleet._pool is None

    def test_single_task_runs_inline_even_with_pool_config(self):
        with FleetExecutor(4) as fleet:
            assert fleet.map(_double, [21]) == [42]
            assert fleet._pool is None

    def test_pool_map_preserves_order_and_reuses_pool(self):
        with FleetExecutor(2) as fleet:
            assert fleet.map(_double, list(range(8))) == [
                2 * i for i in range(8)
            ]
            pool = fleet._pool
            assert pool is not None
            assert fleet.map(_double, [5, 4]) == [10, 8]
            assert fleet._pool is pool  # reused, not respawned

    def test_close_is_idempotent_and_pool_recreatable(self):
        fleet = FleetExecutor(2)
        fleet.map(_double, [1, 2])
        fleet.close()
        fleet.close()
        assert fleet.map(_double, [1, 2, 3]) == [2, 4, 6]
        fleet.close()

    def test_processes_floor_is_one(self):
        assert FleetExecutor(0).processes == 1
        assert FleetExecutor(-3).processes == 1

    def test_serial_path_propagates_task_errors(self):
        fleet = FleetExecutor(1)
        with pytest.raises(ValueError, match="three"):
            fleet.map(_fail_on_three, [1, 2, 3])

    def test_futures_pool_is_reusable_executor(self):
        with FleetExecutor(2) as fleet:
            future = fleet.futures_pool.submit(_double, 8)
            assert future.result() == 16


class TestInternedWorkload:
    def test_clone_matches_fresh_setup(self):
        spec = SMALL_BLUR
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        fresh_mem, fresh_globals, fresh_args = setup_workload(module, spec)
        mem, globals_, args = interned_workload(module, spec)
        assert mem.snapshot() == fresh_mem.snapshot()
        assert mem._brk == fresh_mem._brk
        assert mem.bytes_read == fresh_mem.bytes_read
        assert mem.bytes_written == fresh_mem.bytes_written
        assert len(mem.allocations) == len(fresh_mem.allocations)
        assert globals_ == fresh_globals
        assert args == fresh_args

    def test_clones_are_independent(self):
        spec = SMALL_BLUR
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        a, globals_a, args_a = interned_workload(module, spec)
        b, globals_b, args_b = interned_workload(module, spec)
        assert a is not b
        before = b.read_bytes(0x1000, 4)
        a.write_bytes(0x1000, b"\xde\xad\xbe\xef")
        assert b.read_bytes(0x1000, 4) == before
        globals_a["poison"] = 1
        assert "poison" not in globals_b
        args_a.append(999)
        assert args_b == list(args_b)

    def test_setup_args_are_part_of_the_key(self):
        spec = SMALL_BLUR
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        small, _, _ = interned_workload(module, spec)
        bigger = dataclasses.replace(spec, setup_args=[6, 64])
        big, _, _ = interned_workload(module, bigger)
        assert small.snapshot() != big.snapshot()


class TestConsumersArePoolSizeInvariant:
    def test_dse_sweep_bytes_identical_at_any_pool_size(self):
        space = ConfigSpace(
            policies=["p1"], n_workers=[1, 2], fifo_depths=[4, 16],
            private_caches=[False], cache_lines=[512], cache_ports=[8],
        )

        def sweep(processes):
            with Explorer(
                SMALL_BLUR, space=space, processes=processes,
                max_cycles=2_000_000,
            ) as explorer:
                result = explorer.run(GridStrategy())
            return json.dumps(result.to_json_dict(), sort_keys=True)

        serial = sweep(1)
        assert sweep(2) == serial

    def test_resilience_report_bytes_identical_at_any_pool_size(self):
        serial = resilience_sweep(SMALL_BLUR, n_plans=2, seed=5, processes=1)
        pooled = resilience_sweep(SMALL_BLUR, n_plans=2, seed=5, processes=3)
        assert serial.format() == pooled.format()
        assert serial.to_dict() == pooled.to_dict()

    def test_resilience_sweep_accepts_shared_fleet(self):
        with FleetExecutor(2) as fleet:
            a = resilience_sweep(
                SMALL_BLUR, n_plans=1, seed=1, fleet=fleet
            )
            b = resilience_sweep(
                SMALL_BLUR, n_plans=1, seed=1, fleet=fleet
            )
        assert a.to_dict() == b.to_dict()

    def test_explorer_external_fleet_not_closed(self):
        fleet = FleetExecutor(1)
        space = ConfigSpace(
            policies=["p1"], n_workers=[1], fifo_depths=[4],
            private_caches=[False], cache_lines=[512], cache_ports=[8],
        )
        explorer = Explorer(SMALL_BLUR, space=space, fleet=fleet)
        explorer.run(GridStrategy())
        explorer.close()  # must not shut down the shared fleet
        assert fleet.map(_double, [2]) == [4]


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_s(3, 1) == policy.delay_s(3, 1)
        assert policy.delay_s(3, 1) != policy.delay_s(4, 1)
        ceiling = policy.backoff_max_s * (1.0 + policy.jitter)
        delays = [policy.delay_s(0, attempt) for attempt in range(1, 12)]
        assert all(0.0 < delay <= ceiling for delay in delays)
        assert delays[0] >= policy.backoff_base_s

    def test_seed_perturbs_only_the_jitter(self):
        a = RetryPolicy(seed=1).delay_s(0, 1)
        b = RetryPolicy(seed=2).delay_s(0, 1)
        assert a != b
        base = RetryPolicy(jitter=0.0, seed=1).delay_s(0, 1)
        assert base == RetryPolicy(jitter=0.0, seed=2).delay_s(0, 1)
        assert base == pytest.approx(RetryPolicy().backoff_base_s)


class TestSupervision:
    def test_worker_crash_is_retried_and_results_recover(self, tmp_path):
        sentinel = str(tmp_path / "crash-once")
        tasks = [(None, 1), (sentinel, 2), (None, 3)]
        with FleetExecutor(2, retry=FAST_RETRY) as fleet:
            assert fleet.map(_crash_once, tasks) == [2, 4, 6]
            kinds = [event.kind for event in fleet.events]
            assert "task-crashed" in kinds
            assert "pool-respawn" in kinds
            assert "retry" in kinds
            assert fleet.respawns >= 1
            # The respawned pool keeps working for later maps.
            assert fleet.map(_double, [5, 6]) == [10, 12]

    def test_persistent_crasher_exhausts_budget(self):
        retry = dataclasses.replace(FAST_RETRY, max_retries=1)
        with FleetExecutor(2, retry=retry) as fleet:
            with pytest.raises(TaskCrashed) as info:
                fleet.map(_crash_always, ["die", "ok"])
        assert info.value.task_index == 0
        assert info.value.attempts == 2  # first run + one retry

    def test_deadline_timeout_is_typed_and_attributed(self):
        retry = dataclasses.replace(FAST_RETRY, max_retries=0)
        with FleetExecutor(2, retry=retry) as fleet:
            with pytest.raises(TaskTimeout) as info:
                fleet.map(_sleep_then_return, [30.0, 0.001], deadline_s=0.3)
        assert info.value.task_index == 0
        assert info.value.deadline_s == 0.3
        assert info.value.attempts == 1

    def test_task_exceptions_are_not_retried(self):
        with FleetExecutor(2, retry=FAST_RETRY) as fleet:
            with pytest.raises(ValueError, match="three"):
                fleet.map(_fail_on_three, [1, 2, 3, 4])
            assert fleet.events == []

    def test_supervision_events_are_journaled_as_fleet_envelopes(
        self, tmp_path
    ):
        from repro.obs import EnvelopeWriter

        writer = EnvelopeWriter(tmp_path / "store")
        sentinel = str(tmp_path / "crash-once")
        fleet = FleetExecutor(
            2, retry=FAST_RETRY, envelopes=writer,
            context={"subsystem": "test", "kernel": "ks"},
        )
        with fleet:
            assert fleet.map(_crash_once, [(sentinel, 1), (None, 2)]) == [2, 4]
        lines = [
            json.loads(line)
            for line in writer.journal_path.read_text().splitlines()
        ]
        assert lines and all(line["kind"] == "fleet" for line in lines)
        statuses = {line["status"] for line in lines}
        assert {"task-crashed", "pool-respawn", "retry"} <= statuses
        assert all(line["extra"]["subsystem"] == "test" for line in lines)
        assert all(line["kernel"] == "ks" for line in lines)


class TestChaosInjection:
    def test_hooks_are_noops_without_a_plan(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        monkeypatch.setattr(chaos, "_PLAN_CACHE", None)
        chaos.fire_task_hooks(0)  # must not raise, sleep, or kill

    def test_kill_worker_chaos_leaves_dse_sweep_bytes_identical(
        self, tmp_path, monkeypatch
    ):
        space = ConfigSpace(
            policies=["p1"], n_workers=[1, 2], fifo_depths=[4, 16],
            private_caches=[False], cache_lines=[512], cache_ports=[8],
        )

        def sweep(processes):
            with Explorer(
                SMALL_BLUR, space=space, processes=processes,
                max_cycles=2_000_000,
            ) as explorer:
                result = explorer.run(GridStrategy())
            return json.dumps(result.to_json_dict(), sort_keys=True)

        clean = sweep(1)
        plan_path = tmp_path / "plan.json"
        chaos.write_plan(
            plan_path, [{"kind": "kill-worker", "task_index": 0}]
        )
        monkeypatch.setattr(chaos, "_PLAN_CACHE", None)
        monkeypatch.setenv(chaos.ENV_VAR, str(plan_path))
        assert sweep(2) == clean
        # The kill fired exactly once: its claim marker exists, and the
        # retried task completed without re-firing.
        assert (tmp_path / "plan.json.markers" / "ev0").exists()

    def test_corrupt_artifact_selects_by_match_and_mode(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        from repro.service.store import content_key

        keep_key = content_key({"name": "keep"})
        doom_key = content_key({"name": "doomed"})
        store.put(keep_key, {"name": "keep"})
        store.put(doom_key, {"name": "doomed"})
        corrupted = chaos.corrupt_artifact(store.root, match="doomed")
        assert corrupted == doom_key
        reader = ArtifactStore(tmp_path / "store")
        assert reader.get(doom_key) is None  # fails integrity, miss
        assert reader.get(keep_key) == {"name": "keep"}
        assert chaos.corrupt_artifact(store.root, key="nonexistent") is None


class TestResumableSweeps:
    def test_faults_resume_replays_checkpoints_byte_identically(
        self, tmp_path
    ):
        store = ArtifactStore(tmp_path / "ckpt")
        full = resilience_sweep(SMALL_BLUR, n_plans=1, seed=3, store=store)
        assert full.replayed == 0
        checkpoints = sorted((tmp_path / "ckpt").glob("*/*.json"))
        assert len(checkpoints) == len(full.records)
        # Drop one checkpoint: resume replays the rest, recomputes one.
        victim = checkpoints[0]
        sidecar = victim.parent / (victim.name + ".sha256")
        victim.unlink()
        if sidecar.exists():
            sidecar.unlink()
        # Fresh store instance: a cold reader, like a restarted process.
        resumed = resilience_sweep(
            SMALL_BLUR, n_plans=1, seed=3,
            store=ArtifactStore(tmp_path / "ckpt"), resume=True,
        )
        assert resumed.replayed == len(full.records) - 1
        assert resumed.to_dict() == full.to_dict()
        assert resumed.format() == full.format()

    def test_checkpoints_without_resume_flag_are_ignored(self, tmp_path):
        store = ArtifactStore(tmp_path / "ckpt")
        first = resilience_sweep(SMALL_BLUR, n_plans=1, seed=3, store=store)
        again = resilience_sweep(SMALL_BLUR, n_plans=1, seed=3, store=store)
        assert again.replayed == 0
        assert again.to_dict() == first.to_dict()

    def test_sigkilled_sweep_resumes_byte_identically(self, tmp_path):
        store_root = tmp_path / "ckpt"
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        script = (
            "import dataclasses\n"
            "from repro.faults.sweep import resilience_sweep\n"
            "from repro.kernels import KERNELS_BY_NAME\n"
            "from repro.service.store import ArtifactStore\n"
            "spec = dataclasses.replace(\n"
            "    KERNELS_BY_NAME['1D-Gaussblur'], setup_args=[6, 48])\n"
            "resilience_sweep(spec, n_plans=2, seed=5, processes=2,\n"
            f"                 store=ArtifactStore({str(store_root)!r}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and proc.poll() is None:
                if list(store_root.glob("*/*.json")):
                    break  # at least one checkpoint landed: kill mid-sweep
                time.sleep(0.02)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
        clean = resilience_sweep(SMALL_BLUR, n_plans=2, seed=5)
        resumed = resilience_sweep(
            SMALL_BLUR, n_plans=2, seed=5, processes=2,
            store=ArtifactStore(store_root), resume=True,
        )
        assert resumed.replayed >= 1
        assert resumed.to_dict() == clean.to_dict()
        assert resumed.format() == clean.format()
