"""Tests for points-to field sensitivity and pointer laundering."""

from repro.analysis import PointsTo
from repro.frontend import compile_c
from repro.ir import Load, Store
from repro.transforms import optimize_module


def analyze(source):
    module = compile_c(source)
    optimize_module(module)
    return module, PointsTo(module)


class TestFieldSensitivity:
    def test_distinct_fields_keep_distinct_pointees(self):
        module, pt = analyze(
            """
            typedef struct pair { int* left; int* right; } pair_t;
            void* malloc(int n);
            int main(void) {
                pair_t* p = (pair_t*)malloc(sizeof(pair_t));
                int* a = (int*)malloc(4);
                int* b = (int*)malloc(4);
                p->left = a;
                p->right = b;
                int* got_left = p->left;
                int* got_right = p->right;
                *got_left = 1;
                *got_right = 2;
                return *a;
            }
            """
        )
        main = module.get_function("main")
        stores = [s for s in main.instructions()
                  if isinstance(s, Store) and s.value.type.is_integer]
        assert len(stores) == 2
        # Field-sensitive: left-load points only to a, right-load only to b.
        assert len(pt.points_to(stores[0].pointer)) == 1
        assert len(pt.points_to(stores[1].pointer)) == 1
        assert not pt.may_alias(stores[0].pointer, stores[1].pointer)

    def test_em3d_style_two_levels(self):
        # The exact shape that forced field sensitivity: a struct holding
        # a pointer array whose elements point into another region.
        module, pt = analyze(
            """
            typedef struct node { double v; struct node** fr; struct node* nx; } node_t;
            void* malloc(int n);
            int main(void) {
                node_t* other = (node_t*)malloc(sizeof(node_t));
                node_t* mine = (node_t*)malloc(sizeof(node_t));
                mine->fr = (node_t**)malloc(4 * sizeof(node_t*));
                mine->fr[0] = other;
                node_t* f = mine->fr[0];
                f->v = 1.0;
                mine->v = 2.0;
                return 0;
            }
            """
        )
        main = module.get_function("main")
        fstores = [s for s in main.instructions()
                   if isinstance(s, Store) and s.value.type.is_float]
        assert len(fstores) == 2
        assert not pt.may_alias(fstores[0].pointer, fstores[1].pointer)

    def test_unknown_offset_store_widens_reads(self):
        module, pt = analyze(
            """
            void* malloc(int n);
            int main(int i) {
                int** tab = (int**)malloc(8 * sizeof(int*));
                int* x = (int*)malloc(4);
                tab[i] = x;            /* variable index: unknown field */
                int* y = tab[2];       /* constant index read */
                *y = 5;
                return *x;
            }
            """
        )
        main = module.get_function("main")
        store = next(s for s in main.instructions()
                     if isinstance(s, Store) and s.value.type.is_integer)
        # y may see x (the unknown-offset store covers every slot).
        objs = pt.points_to(store.pointer)
        assert len(objs) == 1  # {x}


class TestPointerLaundering:
    def test_pointer_through_unsigned_global(self):
        # The kargs pattern every kernel uses: ptr -> unsigned global ->
        # load -> cast back. Points-to must survive the round trip.
        module, pt = analyze(
            """
            void* malloc(int n);
            unsigned slot;
            void put(void) { slot = (unsigned)(int*)malloc(4); }
            int take(void) { int* p = (int*)slot; *p = 9; return *p; }
            int main(void) { put(); return take(); }
            """
        )
        take = module.get_function("take")
        store = next(s for s in take.instructions() if isinstance(s, Store))
        objs = pt.points_to(store.pointer)
        assert objs, "laundered pointer lost its points-to set"
        assert all(o.kind == "malloc" for o in objs)

    def test_pointer_through_int_phi(self):
        module, pt = analyze(
            """
            void* malloc(int n);
            int main(int c) {
                unsigned p;
                if (c) p = (unsigned)(int*)malloc(4);
                else p = (unsigned)(int*)malloc(4);
                int* q = (int*)p;
                *q = 1;
                return *q;
            }
            """
        )
        main = module.get_function("main")
        store = next(s for s in main.instructions() if isinstance(s, Store))
        assert len(pt.points_to(store.pointer)) == 2
