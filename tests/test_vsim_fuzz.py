"""Differential fuzz: emitted Verilog executed in vsim vs the interpreter.

Random integer programs are compiled, optimized, scheduled and emitted,
then the single worker module is clocked in :mod:`repro.vsim` against a
minimal memory environment.  The 64-bit ``result`` port must equal the
interpreter's return value, bit for bit, for every seed — the vsim-level
analogue of the scheduler fuzz's hardware-model check.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import compile_c
from repro.interp import Interpreter, to_unsigned
from repro.rtl import generate_verilog
from repro.transforms import optimize_module
from repro.vsim import Simulation, elaborate

from tests.test_transforms_properties import random_program


def run_in_vsim(verilog: str, args: dict[str, int], max_cycles: int = 30_000):
    """Clock a worker module to ``finish`` against a tiny byte memory."""
    sim = Simulation(elaborate(verilog))
    memory: dict[int, int] = {}
    for port, value in args.items():
        sim.poke(port, value)
    sim.poke("rst", 1)
    sim.step()
    sim.poke("rst", 0)
    sim.poke("start", 1)
    sim.step()
    sim.poke("start", 0)
    for _ in range(max_cycles):
        if sim.peek("finish"):
            return sim
        if sim.peek("mem_ack"):
            sim.poke("mem_ack", 0)
        elif sim.peek("mem_req"):
            addr = sim.peek("mem_addr")
            size = sim.peek("mem_size")
            if sim.peek("mem_we"):
                data = sim.peek("mem_wdata")
                for i in range(size):
                    memory[addr + i] = (data >> (8 * i)) & 0xFF
            else:
                rdata = 0
                for i in range(size):
                    rdata |= memory.get(addr + i, 0) << (8 * i)
                sim.poke("mem_rdata", rdata)
            sim.poke("mem_ack", 1)
        sim.step()
    raise AssertionError(f"no finish within {max_cycles} cycles")


class TestVsimDifferentialFuzz:
    @given(random_program(), st.integers(-50, 50))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_vsim_result_matches_interpreter(self, source, arg):
        ref = compile_c(source)
        optimize_module(ref)
        expected = Interpreter(ref).call("f", [arg])

        module = compile_c(source)
        optimize_module(module)
        verilog = generate_verilog(module.get_function("f"))
        sim = run_in_vsim(verilog, {"arg_a": to_unsigned(arg, 32)})
        assert sim.peek("result") == to_unsigned(expected, 32), source

    def test_known_program_value(self):
        source = """
            int f(int a) {
                int s = 1;
                for (int i = 0; i < 5; i++) s = s + a * i;
                return s;
            }
        """
        module = compile_c(source)
        optimize_module(module)
        verilog = generate_verilog(module.get_function("f"))
        sim = run_in_vsim(verilog, {"arg_a": 3})
        assert sim.peek("result") == 1 + 3 * (0 + 1 + 2 + 3 + 4)

    def test_negative_result_is_two_s_complement(self):
        source = "int f(int a) { return a - 10; }"
        module = compile_c(source)
        optimize_module(module)
        verilog = generate_verilog(module.get_function("f"))
        sim = run_in_vsim(verilog, {"arg_a": 3})
        assert sim.peek("result") == to_unsigned(-7, 32)
