"""Property-based end-to-end fuzzing of the full CGPA flow.

Hypothesis composes random loop kernels from a structured grammar (array
expressions, reductions, guards, inner loops over disjoint regions), runs
each through compile -> partition -> transform -> functional co-simulation
for every replication policy and several worker counts, and requires a
byte-identical memory image and return value versus sequential execution.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import RegionShapes, Shape
from repro.errors import CgpaError
from repro.frontend import compile_c
from repro.interp import Interpreter, malloc_site_table
from repro.pipeline import ReplicationPolicy, cgpa_compile, run_transformed
from repro.transforms import optimize_module

EXPRS = [
    "a[i]",
    "a[i] * 3",
    "a[i] + b[i]",
    "a[i] - b[i] * 2",
    "(a[i] ^ b[i]) & 255",
    "b[i] + i",
    # Indirect addressing (the hash-join/spmv idiom): the read index is
    # itself loaded from memory.
    "a[b[i] & 127]",
    "b[a[i] & 127] + i",
]

UPDATES = [
    "b[i] = {expr};",
    "b[i] = {expr}; acc += b[i] & 15;",
    "if ({expr} > 20) acc += 1;",
    "if ((i & 1) == 0) b[i] = {expr}; else acc -= 1;",
    "acc += {expr};",
    # Early exit: the pipelined loop's trip count depends on the data.
    "if ({expr} > 58) break; acc += 1;",
    # Indirect store: a memory-carried dependence the partitioner must
    # keep sequential.
    "b[a[i] & 127] = {expr}; acc ^= b[i];",
]

INNER = [
    "",
    "int t = 0; for (int j = 0; j < 4; j++) t += a[(i + j) & 31]; acc += t;",
    # Data-dependent inner bound (the spmv row-pointer idiom).
    "int lim = a[i] & 7; int t = 0;"
    " for (int j = 0; j < lim; j++) t += a[(i + j) & 31]; acc += t;",
    # Break-terminated inner scan (the top-k sift / bfs idiom).
    "for (int j = 0; j < 6; j++) { if (a[(i + j) & 31] > 40) break;"
    " acc += 1; }",
]


@st.composite
def kernel_source(draw):
    expr = draw(st.sampled_from(EXPRS))
    update = draw(st.sampled_from(UPDATES)).format(expr=expr)
    inner = draw(st.sampled_from(INNER))
    n = draw(st.integers(min_value=0, max_value=40))
    return n, f"""
void* malloc(int m);
unsigned out_acc;
int kernel(int* a, int* b, int n) {{
    int acc = 0;
    for (int i = 0; i < n; i++) {{
        {update}
        {inner}
    }}
    return acc;
}}
void run(int n) {{
    int* a = (int*)malloc(128 * sizeof(int));
    int* b = (int*)malloc(128 * sizeof(int));
    for (int k = 0; k < 128; k++) {{ a[k] = (k * 37 + 11) & 63; b[k] = 0; }}
    out_acc = (unsigned)kernel(a, b, n);
}}
"""


class TestRandomKernels:
    @given(kernel_source(), st.sampled_from(["p1", "p2", "none"]),
           st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_transformed_equals_sequential(self, src, policy, workers):
        n, source = src
        ref_module = compile_c(source)
        optimize_module(ref_module)
        ref = Interpreter(ref_module)
        ref.call("run", [n])

        module = compile_c(source)
        optimize_module(module)
        shapes = RegionShapes()
        for site in malloc_site_table(module):
            shapes.declare(site, Shape.LIST)
        compiled = cgpa_compile(
            module, "kernel", shapes=shapes,
            policy=ReplicationPolicy(policy), n_workers=workers,
        )
        _, memory, _ = run_transformed(compiled.module, "run", [n])
        assert memory.snapshot() == ref.memory.snapshot(), (
            f"divergence for policy={policy} workers={workers} "
            f"n={n} partition={compiled.signature}\n{source}"
        )


LINKED_LIST_TEMPLATE = """
typedef struct n {{ double v; int w; struct n* next; }} n_t;
void* malloc(int m);
double kernel(n_t* p, double scale) {{
    double acc = 0.0;
    for ( ; p; p = p->next) {{
        {update}
    }}
    return acc;
}}
double run(int n) {{
    n_t* head = 0;
    for (int i = 0; i < n; i++) {{
        n_t* f = (n_t*)malloc(sizeof(n_t));
        f->v = 0.5 * i; f->w = (i * 13) & 31; f->next = head; head = f;
    }}
    return kernel(head, 1.25);
}}
"""

LIST_UPDATES = [
    "p->v = p->v * scale; acc += p->v;",
    "acc += p->v + p->w;",
    "if (p->w > 15) p->v = acc * 0.0 + p->w; else acc += 1.0;",
    "double t = p->v; p->v = t * t; acc += t;",
]


class TestRandomListKernels:
    @given(st.sampled_from(LIST_UPDATES), st.integers(0, 30),
           st.sampled_from(["p1", "p2"]))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_list_kernels_equal_sequential(self, update, n, policy):
        source = LINKED_LIST_TEMPLATE.format(update=update)
        ref_module = compile_c(source)
        optimize_module(ref_module)
        ref = Interpreter(ref_module)
        expected = ref.call("run", [n])

        module = compile_c(source)
        optimize_module(module)
        shapes = RegionShapes()
        for site in malloc_site_table(module):
            shapes.declare(site, Shape.LIST)
        compiled = cgpa_compile(
            module, "kernel", shapes=shapes, policy=ReplicationPolicy(policy)
        )
        value, memory, _ = run_transformed(compiled.module, "run", [n])
        assert value == expected
        assert memory.snapshot() == ref.memory.snapshot()
