"""Unit and property tests for dominators, post-dominators, frontiers."""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    LoopInfo,
    dominator_tree,
    postdominator_tree,
    reverse_postorder,
)
from repro.frontend import compile_c
from repro.ir import FunctionType, I32, IRBuilder, Module


def diamond():
    """entry -> (a|b) -> merge -> ret"""
    m = Module("m")
    f = m.new_function("f", FunctionType(I32, [I32]), ["x"])
    entry = f.new_block("entry")
    a = f.new_block("a")
    b = f.new_block("b")
    merge = f.new_block("merge")
    bld = IRBuilder(entry)
    cond = bld.icmp("slt", f.args[0], bld.const_int(0))
    bld.cond_branch(cond, a, b)
    bld.set_block(a)
    bld.jump(merge)
    bld.set_block(b)
    bld.jump(merge)
    bld.set_block(merge)
    bld.ret(f.args[0])
    return f, entry, a, b, merge


class TestDominators:
    def test_diamond(self):
        f, entry, a, b, merge = diamond()
        dt = dominator_tree(f)
        assert dt.idom(a) is entry
        assert dt.idom(b) is entry
        assert dt.idom(merge) is entry  # not a or b
        assert dt.dominates(entry, merge)
        assert not dt.dominates(a, merge)
        assert dt.dominates(merge, merge)  # reflexive

    def test_dominance_frontier_of_diamond(self):
        f, entry, a, b, merge = diamond()
        dt = dominator_tree(f)
        frontier = dt.dominance_frontier()
        assert frontier[id(a)] == [merge]
        assert frontier[id(b)] == [merge]
        assert frontier[id(entry)] == []

    def test_postdominators_of_diamond(self):
        f, entry, a, b, merge = diamond()
        pdt = postdominator_tree(f)
        assert pdt.idom(a) is merge
        assert pdt.idom(b) is merge
        assert pdt.dominates(merge, entry)  # merge post-dominates entry
        assert not pdt.dominates(a, entry)

    def test_loop_from_c(self):
        module = compile_c(
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += i; return s; }"
        )
        f = module.get_function("f")
        li = LoopInfo(f)
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header.name.startswith("for.cond")
        names = {b.name for b in loop.blocks}
        assert any(n.startswith("for.body") for n in names)
        assert not any(n.startswith("for.end") for n in names)
        assert len(loop.exit_edges()) == 1

    def test_nested_loops_from_c(self):
        module = compile_c(
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++)"
            "   for (int j = 0; j < n; j++) s += j;"
            " return s; }"
        )
        li = LoopInfo(module.get_function("f"))
        assert len(li.loops) == 2
        top = li.top_level()
        assert len(top) == 1
        assert len(top[0].children) == 1
        inner = top[0].children[0]
        assert inner.parent is top[0]
        assert inner.depth == 1

    def test_while_with_break_has_two_exits(self):
        module = compile_c(
            "int f(int n) { int i = 0;"
            " while (i < n) { if (i == 7) break; i++; } return i; }"
        )
        li = LoopInfo(module.get_function("f"))
        (loop,) = li.loops
        assert len(loop.exit_edges()) == 2

    def test_rpo_starts_at_entry(self):
        f, entry, *_ = diamond()
        order = reverse_postorder(f)
        assert order[0] is entry
        assert len(order) == 4


class TestDominatorProperties:
    @staticmethod
    def random_cfg(data, n_blocks):
        """Build a random CFG with hypothesis-chosen branch targets."""
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, [I32]), ["x"])
        blocks = [f.new_block(f"b{i}") for i in range(n_blocks)]
        bld = IRBuilder(None)
        for i, block in enumerate(blocks):
            bld.set_block(block)
            kind = data.draw(st.integers(0, 2), label=f"kind{i}")
            if kind == 0 or i == n_blocks - 1:
                bld.ret(f.args[0])
            elif kind == 1:
                target = blocks[data.draw(st.integers(0, n_blocks - 1))]
                bld.jump(target)
            else:
                cond = bld.icmp("slt", f.args[0], bld.const_int(i))
                t1 = blocks[data.draw(st.integers(0, n_blocks - 1))]
                t2 = blocks[data.draw(st.integers(0, n_blocks - 1))]
                bld.cond_branch(cond, t1, t2)
        return f

    @given(st.data(), st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_entry_dominates_all_reachable(self, data, n_blocks):
        f = self.random_cfg(data, n_blocks)
        dt = dominator_tree(f)
        for block in reverse_postorder(f):
            assert dt.dominates(f.entry, block)

    @given(st.data(), st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_idom_strictly_dominates(self, data, n_blocks):
        f = self.random_cfg(data, n_blocks)
        dt = dominator_tree(f)
        for block in reverse_postorder(f):
            parent = dt.idom(block)
            if parent is not None:
                assert parent is not block
                assert dt.dominates(parent, block)

    @given(st.data(), st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_dominance_is_transitive_on_idom_chain(self, data, n_blocks):
        f = self.random_cfg(data, n_blocks)
        dt = dominator_tree(f)
        for block in reverse_postorder(f):
            chain = []
            cur = block
            while cur is not None:
                chain.append(cur)
                cur = dt.idom(cur)
            for anc in chain:
                assert dt.dominates(anc, block)
