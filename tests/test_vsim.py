"""Unit tests for the bundled Verilog subset simulator (repro.vsim)."""

import pytest

from repro.vsim import (
    Simulation,
    VsimElabError,
    VsimParseError,
    VsimRuntimeError,
    elaborate,
    lint_verilog,
    parse_verilog,
)


def sim_of(source: str, **kwargs) -> Simulation:
    return Simulation(elaborate(source, **kwargs))


class TestParser:
    def test_module_ports_and_nets(self):
        mods = parse_verilog("""
            module m (
                input  wire        clk,
                input  wire [31:0] a,
                output reg  [63:0] r
            );
                wire [7:0] t;
                assign t = a[7:0];
            endmodule
        """)
        assert len(mods) == 1
        assert [p.name for p in mods[0].ports] == ["clk", "a", "r"]
        assert mods[0].nets[0].name == "t"

    def test_rejects_memory_arrays(self):
        with pytest.raises(VsimParseError, match="memory arrays"):
            parse_verilog("module m (); reg [7:0] mem [0:3]; endmodule")

    def test_rejects_blocking_assign_in_always(self):
        with pytest.raises(VsimParseError):
            parse_verilog("""
                module m (input wire clk);
                    reg [3:0] x;
                    always @(posedge clk) begin x = 4'd1; end
                endmodule
            """)

    def test_nonblocking_vs_lteq_comparison(self):
        # The first "<=" is the assignment; later ones are comparisons.
        mods = parse_verilog("""
            module m (input wire clk, input wire [7:0] a, input wire [7:0] b);
                reg flag;
                always @(posedge clk) begin
                    flag <= a <= b;
                end
            endmodule
        """)
        assert mods[0].always[0].body[0].target == "flag"

    def test_comments_and_directives_skipped(self):
        mods = parse_verilog("""
            `timescale 1ns/1ps
            // line comment
            module m (); /* block
            comment */ wire w; assign w = 1'b0;
            endmodule
        """)
        assert mods[0].name == "m"


class TestExpressions:
    def _eval(self, decl: str, expr: str, width: int = 64) -> int:
        sim = sim_of(f"""
            module m ({decl} output wire [{width - 1}:0] r);
                assign r = {expr};
            endmodule
        """)
        return sim.peek("r")

    def test_unsigned_arith(self):
        assert self._eval("", "32'd7 + 32'd3") == 10
        assert self._eval("", "32'd3 - 32'd7") == 0xFFFFFFFC
        assert self._eval("", "32'd6 * 32'd7") == 42

    def test_signed_compare_needs_cast(self):
        # Unsigned compare: -1 is the max value.
        assert self._eval("", "32'hFFFFFFFF < 32'd1", width=1) == 0
        assert (
            self._eval("", "$signed(32'hFFFFFFFF) < $signed(32'd1)", width=1)
            == 1
        )

    def test_signed_division_truncates_toward_zero(self):
        # -7 / 2 == -3 in C; the emitter relies on matching semantics.
        val = self._eval(
            "", "$signed(32'hFFFFFFF9) / $signed(32'd2)", width=32
        )
        assert val == 0xFFFFFFFD  # -3
        rem = self._eval(
            "", "$signed(32'hFFFFFFF9) % $signed(32'd2)", width=32
        )
        assert rem == 0xFFFFFFFF  # -1

    def test_division_by_zero_raises(self):
        with pytest.raises(VsimRuntimeError):
            sim_of("""
                module m (input wire [31:0] a, output wire [31:0] r);
                    assign r = 32'd1 / a;
                endmodule
            """)

    def test_arithmetic_shift_needs_signed_left(self):
        assert self._eval("", "32'h80000000 >> 4", width=32) == 0x08000000
        assert (
            self._eval("", "$signed(32'h80000000) >>> 4", width=32)
            == 0xF8000000
        )

    def test_shift_past_width_is_zero(self):
        assert self._eval("", "32'd1 << 32'd40", width=32) == 0

    def test_concat_select_replicate(self):
        assert self._eval("", "{4'hA, 4'h5}", width=8) == 0xA5
        assert self._eval("", "8'hA5[7:4]", width=4) == 0xA
        assert self._eval("", "{4{2'b10}}", width=8) == 0b10101010
        assert self._eval("", "8'hA5[0]", width=1) == 1

    def test_ternary_and_logic(self):
        assert self._eval("", "1'b1 ? 8'd3 : 8'd9", width=8) == 3
        assert self._eval("", "8'd0 || 8'd2", width=1) == 1
        assert self._eval("", "!8'd2", width=1) == 0

    def test_fp_cores_round_trip(self):
        import struct

        two = int.from_bytes(struct.pack("<d", 2.0), "little")
        half = int.from_bytes(struct.pack("<d", 0.5), "little")
        bits = self._eval("", f"fp_mul_64(64'd{two}, 64'd{half})")
        assert struct.unpack("<d", bits.to_bytes(8, "little"))[0] == 1.0

    def test_width_extension_zero_fills(self):
        # Unsigned operand widened against a wider one.
        assert self._eval("", "64'd0 + 8'hFF") == 0xFF


class TestSimulation:
    COUNTER = """
        module counter (
            input  wire clk,
            input  wire rst,
            output reg [7:0] n
        );
            always @(posedge clk) begin
                if (rst) begin
                    n <= 8'd0;
                end else begin
                    n <= n + 8'd1;
                end
            end
        endmodule
    """

    def test_counter_counts(self):
        sim = sim_of(self.COUNTER)
        sim.poke("rst", 1)
        sim.step()
        sim.poke("rst", 0)
        sim.step(5)
        assert sim.peek("n") == 5

    def test_nonblocking_swap(self):
        sim = sim_of("""
            module swap (input wire clk, output reg [3:0] a, output reg [3:0] b);
                always @(posedge clk) begin
                    a <= b;
                    b <= a;
                end
            endmodule
        """)
        sim.poke("a", 3)
        sim.poke("b", 9)
        sim.step()
        assert (sim.peek("a"), sim.peek("b")) == (9, 3)

    def test_last_nonblocking_write_wins(self):
        sim = sim_of("""
            module m (input wire clk, output reg [3:0] x);
                always @(posedge clk) begin
                    x <= 4'd1;
                    x <= 4'd2;
                end
            endmodule
        """)
        sim.step()
        assert sim.peek("x") == 2

    def test_case_fsm(self):
        sim = sim_of("""
            module fsm (input wire clk, input wire rst, output reg [1:0] state);
                localparam STATE_IDLE = 2'd0;
                localparam S_A_0 = 2'd1;
                always @(posedge clk) begin
                    if (rst) begin
                        state <= STATE_IDLE;
                    end else begin
                        case (state)
                            STATE_IDLE: begin state <= S_A_0; end
                            S_A_0: begin state <= STATE_IDLE; end
                            default: begin state <= STATE_IDLE; end
                        endcase
                    end
                end
            endmodule
        """)
        sim.poke("rst", 1)
        sim.step()
        sim.poke("rst", 0)
        sim.step()
        assert sim.peek("state") == 1
        sim.step()
        assert sim.peek("state") == 0

    def test_poke_masks_to_width(self):
        sim = sim_of("module m (input wire [3:0] a, output wire [3:0] r);"
                     " assign r = a; endmodule")
        sim.poke("a", 0x1F)
        assert sim.peek("r") == 0xF


class TestElaboration:
    def test_comb_loop_detected(self):
        with pytest.raises(VsimElabError, match="combinational loop"):
            elaborate("""
                module m ();
                    wire a;
                    wire b;
                    assign a = b;
                    assign b = a;
                endmodule
            """)

    def test_multiply_driven_rejected(self):
        with pytest.raises(VsimElabError):
            elaborate("""
                module m (input wire x);
                    wire a;
                    assign a = x;
                    assign a = !x;
                endmodule
            """)

    def test_parameter_override(self):
        sim = sim_of(
            "module m (output wire [31:0] r); parameter BASE = 32'd0;"
            " assign r = BASE + 32'd2; endmodule",
            params={"BASE": 0x1000},
        )
        assert sim.peek("r") == 0x1002

    def test_unknown_identifier_reported_with_line(self):
        with pytest.raises(VsimElabError, match="undeclared"):
            elaborate("module m (output wire r); assign r = ghost; endmodule")

    def test_hierarchy_flattening(self):
        sim = sim_of("""
            module child (input wire [7:0] x, output wire [7:0] y);
                parameter STEP = 8'd1;
                assign y = x + STEP;
            endmodule
            module top (input wire [7:0] a, output wire [7:0] r);
                wire [7:0] mid;
                child #(.STEP(8'd3)) u_one (.x(a), .y(mid));
                child u_two (.x(mid), .y(r));
            endmodule
        """, top="top")
        sim.poke("a", 10)
        assert sim.peek("r") == 14


class TestLintRules:
    def test_clean_module_has_no_issues(self):
        assert lint_verilog("""
            module m (input wire clk, input wire [3:0] a, output reg [3:0] r);
                always @(posedge clk) begin
                    r <= a;
                end
            endmodule
        """) == []

    def test_undeclared_identifier(self):
        issues = lint_verilog(
            "module m (output wire r); assign r = ghost; endmodule"
        )
        assert any("ghost" in i for i in issues)

    def test_width_overflow_flagged(self):
        issues = lint_verilog("""
            module m (input wire [63:0] a, output wire [31:0] r);
                assign r = a + 64'd1;
            endmodule
        """)
        assert any("64 bits" in i for i in issues)

    def test_multiply_driven_flagged(self):
        issues = lint_verilog("""
            module m (input wire clk, input wire x, output reg r);
                always @(posedge clk) begin r <= x; end
                always @(posedge clk) begin r <= !x; end
            endmodule
        """)
        assert any("multiply driven" in i for i in issues)

    def test_read_but_never_driven_flagged(self):
        issues = lint_verilog("""
            module m (output wire r);
                wire ghost;
                assign r = ghost;
            endmodule
        """)
        assert any("never driven" in i for i in issues)

    def test_input_driven_internally_flagged(self):
        issues = lint_verilog("""
            module m (input wire a, output wire r);
                assign a = 1'b0;
                assign r = a;
            endmodule
        """)
        assert any("input port" in i for i in issues)

    def test_fsm_case_missing_state_flagged(self):
        issues = lint_verilog("""
            module m (input wire clk);
                localparam STATE_IDLE = 2'd0;
                localparam S_B_0 = 2'd1;
                reg [1:0] state;
                always @(posedge clk) begin
                    case (state)
                        STATE_IDLE: begin state <= S_B_0; end
                        default: begin state <= STATE_IDLE; end
                    endcase
                end
            endmodule
        """)
        assert any("does not handle state S_B_0" in i for i in issues)

    def test_fsm_case_duplicate_item_flagged(self):
        issues = lint_verilog("""
            module m (input wire clk);
                localparam STATE_IDLE = 1'd0;
                reg state;
                always @(posedge clk) begin
                    case (state)
                        STATE_IDLE: begin state <= STATE_IDLE; end
                        1'd0: begin state <= STATE_IDLE; end
                        default: begin state <= STATE_IDLE; end
                    endcase
                end
            endmodule
        """)
        assert any("duplicate case item" in i for i in issues)

    def test_fsm_case_without_default_flagged(self):
        issues = lint_verilog("""
            module m (input wire clk);
                localparam STATE_IDLE = 1'd0;
                reg state;
                always @(posedge clk) begin
                    case (state)
                        STATE_IDLE: begin state <= STATE_IDLE; end
                    endcase
                end
            endmodule
        """)
        assert any("no default" in i for i in issues)
