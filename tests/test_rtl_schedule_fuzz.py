"""Fuzz the FSM scheduler: random programs must schedule legally and the
hardware simulation of the schedule must match the interpreter."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import compile_c
from repro.hw import AcceleratorSystem
from repro.interp import Interpreter, Memory
from repro.ir.instructions import Instruction, ParallelFork, Phi, StoreLiveout
from repro.kernels import ALL_KERNELS
from repro.pipeline import cgpa_compile
from repro.rtl import (
    cost_of,
    is_fifo_op,
    is_memory_op,
    schedule_function,
)
from repro.transforms import optimize_module

from tests.test_transforms_properties import random_program


def assert_paper_constraints(fn, schedule):
    """The four scheduling constraints of Section 3.4, checked per block.

    (1) data dependences respected (incl. the branch-edge phi latch),
    (2) one memory port: at most one load/store per state,
    (3) FIFO ops stay in program order, never sharing a state with each
        other or a memory op,
    (4) FSM well-formed: every op has a state inside its block, the
        terminator retires last, store_liveout is co-scheduled with it
        and same-loop forks share a state.
    """
    for block in fn.blocks:
        bs = schedule.block_schedule(block)
        local = {id(i) for i in block.instructions}

        # (1) data dependences: a consumer never reads a register before
        # the producer's write retires.
        for inst in block.instructions:
            if isinstance(inst, Phi):
                continue  # resolved on block entry
            state = bs.state_of[id(inst)]
            deps = list(inst.operands)
            if inst.is_terminator:
                # The branch edge latches successor phis from the
                # incoming result registers.
                for succ in inst.successors():
                    for phi in succ.phis():
                        deps.append(phi.incoming_for(block))
            for op in deps:
                if isinstance(op, Instruction) and id(op) in local:
                    if isinstance(op, Phi):
                        continue
                    ready = bs.state_of[id(op)] + cost_of(op).latency
                    assert state >= ready, (
                        f"{fn.name}/{block.short_name()}: {type(inst).__name__} "
                        f"in state {state} reads a result not ready before "
                        f"state {ready}"
                    )

        # (2)+(3) per-state resource exclusivity.
        by_state = {}
        for inst in block.instructions:
            by_state.setdefault(bs.state_of[id(inst)], []).append(inst)
        for state, ops in by_state.items():
            mem = [o for o in ops if is_memory_op(o)]
            fifo = [o for o in ops if is_fifo_op(o)]
            assert len(mem) <= 1, "two memory ops share a state"
            assert len(fifo) <= 1, "two FIFO ops share a state"
            assert not (mem and fifo), "FIFO op shares a state with memory"

        # (3) FIFO in-order: program order == state order.
        fifo_states = [
            bs.state_of[id(i)] for i in block.instructions if is_fifo_op(i)
        ]
        assert fifo_states == sorted(fifo_states)
        assert len(fifo_states) == len(set(fifo_states))

        # (4) FSM well-formedness.
        term = block.terminator
        for inst in block.instructions:
            state = bs.state_of[id(inst)]
            assert 0 <= state < bs.n_states
            if term is not None and inst is not term:
                assert state <= bs.state_of[id(term)]
            if isinstance(inst, StoreLiveout) and term is not None:
                assert state == bs.state_of[id(term)]
        fork_states = {}
        for inst in block.instructions:
            if isinstance(inst, ParallelFork):
                fork_states.setdefault(inst.loop_id, set()).add(
                    bs.state_of[id(inst)]
                )
        for states in fork_states.values():
            assert len(states) == 1, "same-loop forks split across states"


class TestScheduleFuzz:
    @given(random_program())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_schedule_legally(self, source):
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("f")
        schedule = schedule_function(fn)  # built-in constraint checks
        # Structural: every instruction has a state inside its block.
        for block in fn.blocks:
            bs = schedule.block_schedule(block)
            for inst in block.instructions:
                assert 0 <= bs.state_of[id(inst)] < bs.n_states

    @given(random_program(), st.integers(-50, 50))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_scheduled_hardware_matches_interpreter(self, source, arg):
        ref_module = compile_c(source)
        optimize_module(ref_module)
        expected = Interpreter(ref_module).call("f", [arg])

        hw_module = compile_c(source)
        optimize_module(hw_module)
        system = AcceleratorSystem(hw_module, Memory())
        report = system.run("f", [arg])
        assert report.return_value == expected

    @given(random_program())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_verilog_emits_for_random_programs(self, source):
        from repro.rtl import generate_verilog
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("f")
        text = generate_verilog(fn)
        assert text.count("module ") - text.count("endmodule") == 0


class TestPaperConstraints:
    """Section 3.4's four scheduling constraints, asserted directly."""

    @given(random_program())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_constraints_hold_on_random_programs(self, source):
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("f")
        assert_paper_constraints(fn, schedule_function(fn))

    @pytest.mark.parametrize(
        "spec", ALL_KERNELS, ids=[s.name for s in ALL_KERNELS]
    )
    def test_constraints_hold_on_kernel_tasks(self, spec):
        # Kernel tasks exercise FIFO ops, calls and liveouts, which the
        # random integer programs cannot reach.
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        compiled = cgpa_compile(
            module, spec.accel_function, shapes=spec.shapes_for(module),
        )
        for fn in compiled.result.tasks + [compiled.result.parent]:
            assert_paper_constraints(fn, schedule_function(fn))
