"""Fuzz the FSM scheduler: random programs must schedule legally and the
hardware simulation of the schedule must match the interpreter."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import compile_c
from repro.hw import AcceleratorSystem
from repro.interp import Interpreter, Memory
from repro.rtl import schedule_function
from repro.transforms import optimize_module

from tests.test_transforms_properties import random_program


class TestScheduleFuzz:
    @given(random_program())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_schedule_legally(self, source):
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("f")
        schedule = schedule_function(fn)  # built-in constraint checks
        # Structural: every instruction has a state inside its block.
        for block in fn.blocks:
            bs = schedule.block_schedule(block)
            for inst in block.instructions:
                assert 0 <= bs.state_of[id(inst)] < bs.n_states

    @given(random_program(), st.integers(-50, 50))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_scheduled_hardware_matches_interpreter(self, source, arg):
        ref_module = compile_c(source)
        optimize_module(ref_module)
        expected = Interpreter(ref_module).call("f", [arg])

        hw_module = compile_c(source)
        optimize_module(hw_module)
        system = AcceleratorSystem(hw_module, Memory())
        report = system.run("f", [arg])
        assert report.return_value == expected

    @given(random_program())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_verilog_emits_for_random_programs(self, source):
        from repro.rtl import generate_verilog
        module = compile_c(source)
        optimize_module(module)
        fn = module.get_function("f")
        text = generate_verilog(fn)
        assert text.count("module ") - text.count("endmodule") == 0
