"""Unit tests for the C-subset lexer."""

import pytest

from repro.errors import LexerError
from repro.frontend import tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("int foo _bar2") == [
            ("keyword", "int"), ("ident", "foo"), ("ident", "_bar2"),
        ]

    def test_numbers(self):
        assert kinds("42 0x1F 3.25 1e3 2.5e-2 1.0f") == [
            ("int", "42"), ("int", "0x1F"), ("float", "3.25"),
            ("float", "1e3"), ("float", "2.5e-2"), ("float", "1.0f"),
        ]

    def test_unsigned_suffix_stripped(self):
        assert kinds("42u 7UL")[0] == ("int", "42")

    def test_char_literals_become_ints(self):
        assert kinds("'a' '\\n'") == [("int", str(ord("a"))), ("int", "10")]

    def test_operators_maximal_munch(self):
        assert [t for _, t in kinds("a->b ++ -- <<= >= == && ||")] == [
            "a", "->", "b", "++", "--", "<<=", ">=", "==", "&&", "||",
        ]

    def test_arrow_not_split(self):
        toks = kinds("p->next")
        assert ("op", "->") in toks

    def test_comments_skipped(self):
        src = "int a; // line comment\n/* block\ncomment */ int b;"
        assert [t for _, t in kinds(src)] == ["int", "a", ";", "int", "b", ";"]

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3 and tokens[2].column == 3

    def test_line_tracking_through_block_comment(self):
        tokens = tokenize("/* one\ntwo */ x")
        assert tokens[0].line == 2


class TestErrors:
    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("int $x;")

    def test_malformed_exponent(self):
        with pytest.raises(LexerError):
            tokenize("1e+")

    def test_error_carries_position(self):
        try:
            tokenize("int a;\n  $")
        except LexerError as e:
            assert e.line == 2 and e.column == 3
        else:
            pytest.fail("expected LexerError")
