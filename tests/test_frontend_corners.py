"""Frontend corner cases: C constructs the kernels rely on, plus edges."""

import pytest

from repro.errors import ParseError, SemanticError
from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.transforms import optimize_module


def run(source, fn="main", args=(), optimize=False):
    module = compile_c(source)
    if optimize:
        optimize_module(module)
    verify_module(module)
    return Interpreter(module).call(fn, list(args))


class TestOperators:
    def test_comma_in_for_step(self):
        src = """
        int main(int n) {
            int s = 0;
            int j = 100;
            for (int i = 0; i < n; i++, j--) s += j;
            return s;
        }
        """
        assert run(src, args=[5]) == 100 + 99 + 98 + 97 + 96

    def test_chained_assignments(self):
        assert run("int main(void) { int a; int b; a = b = 7; return a + b; }") == 14

    def test_nested_ternary(self):
        src = "int main(int x) { return x > 10 ? 2 : x > 5 ? 1 : 0; }"
        assert run(src, args=[7]) == 1
        assert run(src, args=[3]) == 0

    def test_unary_minus_on_double_literal(self):
        assert run("double main(void) { return -1.0e30; }") == -1.0e30

    def test_hex_literals(self):
        assert run("int main(void) { return 0x2545f491 & 0xff; }") == 0x91

    def test_compound_assign_all_ops(self):
        src = """
        int main(int a) {
            a += 3; a -= 1; a *= 2; a /= 3; a %= 7;
            a <<= 2; a >>= 1; a &= 0xF; a |= 0x10; a ^= 0x3;
            return a;
        }
        """
        a = 5
        a += 3; a -= 1; a *= 2; a //= 3; a %= 7
        a <<= 2; a >>= 1; a &= 0xF; a |= 0x10; a ^= 0x3
        assert run(src, args=[5]) == a

    def test_pre_and_post_increment_values(self):
        src = "int main(void) { int i = 5; int a = i++; int b = ++i; return a * 100 + b; }"
        assert run(src) == 5 * 100 + 7

    def test_pointer_increment_in_expression(self):
        src = """
        void* malloc(int n);
        int main(void) {
            int* p = (int*)malloc(12);
            p[0] = 1; p[1] = 2; p[2] = 3;
            int s = *p++;
            s += *p++;
            s += *p;
            return s;
        }
        """
        assert run(src) == 6

    def test_logical_not_of_pointer(self):
        src = """
        typedef struct n { struct n* next; } n_t;
        int main(n_t* p) { if (!p) return 1; return 0; }
        """
        assert run(src, args=[0]) == 1

    def test_negative_modulo_matches_c(self):
        assert run("int main(void) { return -7 % 3; }") == -1


class TestControlFlowCorners:
    def test_empty_for_body(self):
        assert run("int main(int n) { int i; for (i = 0; i < n; i++) ; return i; }",
                   args=[9]) == 9

    def test_while_with_continue(self):
        src = """
        int main(int n) {
            int i = 0; int s = 0;
            while (i < n) {
                i++;
                if (i % 2) continue;
                s += i;
            }
            return s;
        }
        """
        assert run(src, args=[10]) == 2 + 4 + 6 + 8 + 10

    def test_nested_break_only_exits_inner(self):
        src = """
        int main(int n) {
            int c = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < n; j++) {
                    if (j == 2) break;
                    c++;
                }
            }
            return c;
        }
        """
        assert run(src, args=[5]) == 10

    def test_return_inside_loop(self):
        src = """
        int main(int n) {
            for (int i = 0; i < n; i++)
                if (i * i > 50) return i;
            return -1;
        }
        """
        assert run(src, args=[100]) == 8

    def test_do_while_executes_at_least_once(self):
        src = "int main(void) { int c = 0; do { c++; } while (0); return c; }"
        assert run(src) == 1

    def test_deeply_nested_conditionals_optimized(self):
        src = """
        int main(int x) {
            int r = 0;
            if (x > 0) { if (x > 10) { if (x > 100) r = 3; else r = 2; } else r = 1; }
            return r;
        }
        """
        for x, expected in ((500, 3), (50, 2), (5, 1), (-1, 0)):
            assert run(src, args=[x], optimize=True) == expected


class TestTypesCorners:
    def test_char_arithmetic_promotes(self):
        src = "int main(void) { char c = 100; char d = 100; return c + d; }"
        assert run(src) == 200  # promoted to int before the add

    def test_char_truncates_on_store(self):
        src = "int main(void) { char c = 300; return c; }"
        assert run(src) == 300 - 256

    def test_unsigned_keyword_accepted(self):
        assert run("int main(void) { unsigned x = 5; return (int)x; }") == 5

    def test_float_to_int_conversion_truncates(self):
        assert run("int main(void) { double d = 3.99; return (int)d; }") == 3
        assert run("int main(void) { double d = -3.99; return (int)d; }") == -3

    def test_mixed_float_double(self):
        src = "double main(void) { float f = 0.5f; double d = 0.25; return f + d; }"
        assert run(src) == 0.75

    def test_sizeof_pointer_types(self):
        src = """
        typedef struct big { double a[10]; } big_t;
        int main(void) { return sizeof(big_t*) + sizeof(big_t); }
        """
        assert run(src) == 4 + 80

    def test_void_pointer_roundtrip(self):
        src = """
        void* malloc(int n);
        int main(void) {
            void* raw = malloc(8);
            int* typed = (int*)raw;
            *typed = 11;
            return *(int*)raw;
        }
        """
        assert run(src) == 11


class TestDiagnostics:
    def test_void_variable_rejected(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { void v; return 0; }")

    def test_arrow_on_value_rejected(self):
        with pytest.raises(SemanticError):
            compile_c(
                "typedef struct s { int x; } s_t;"
                "int main(s_t v) { return v->x; }"
            )

    def test_conflicting_prototypes_rejected(self):
        with pytest.raises(SemanticError):
            compile_c("int f(int a); double f(int a) { return 0.0; }")

    def test_opaque_struct_member_rejected(self):
        with pytest.raises(SemanticError):
            compile_c(
                "int main(struct nowhere* p) { return p->x; }"
            )

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            compile_c("int main(void) { continue; return 0; }")

    def test_errors_carry_line_numbers(self):
        try:
            compile_c("int main(void) {\n  return nope;\n}")
        except SemanticError as e:
            assert "line 2" in str(e)
        else:
            pytest.fail("expected SemanticError")
