"""Detailed tests of pipeline-transform internals: iteration counters,
communication placement hoisting, FIFO re-arming across invocations."""

import pytest

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import BinaryOp, Consume, Phi, Produce
from repro.kernels import GAUSSBLUR, KS
from repro.pipeline import ReplicationPolicy, cgpa_compile, run_transformed
from repro.transforms import optimize_module


def compiled_for(spec, policy=ReplicationPolicy.P1):
    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    return cgpa_compile(
        module, spec.accel_function, shapes=spec.shapes_for(module),
        policy=policy,
    )


class TestIterationCounter:
    def test_every_task_gets_it_counter(self):
        # The paper's Fig 1(e) shows compiler-generated iteration counters
        # in both the sequential and parallel tasks.
        cp = compiled_for(KS)
        for task in cp.result.tasks:
            dispatch = next(b for b in task.blocks if b.name == "dispatch")
            it_phis = [p for p in dispatch.phis() if p.name == "it"]
            assert len(it_phis) == 1
            increments = [
                i for i in dispatch.instructions
                if isinstance(i, BinaryOp) and i.opcode == "add"
                and i.lhs is it_phis[0]
            ]
            assert len(increments) == 1

    def test_parallel_task_mask_dispatch(self):
        cp = compiled_for(KS)
        parallel_task = cp.result.tasks[1]
        dispatch = next(b for b in parallel_task.blocks if b.name == "dispatch")
        # 4 workers -> power-of-two mask (the paper's `it & MASK`).
        masks = [i for i in dispatch.instructions
                 if isinstance(i, BinaryOp) and i.opcode == "and"]
        assert len(masks) == 1
        assert masks[0].rhs.value == 3


class TestPlacementHoisting:
    def test_inner_reduction_communicated_once_per_iteration(self):
        # ks: bestb is an inner-loop reduction consumed by stage 3; the
        # produce/consume pair must be hoisted out of the inner loop.
        cp = compiled_for(KS)
        binding = next(
            b for b in cp.result.bindings
            if b.value.type.is_float and b.producer_stage == 1
        )
        assert binding.placement is not None
        # The placement block is outside the inner loop: in the original
        # function the inner header dominates it but doesn't contain it.
        inner_names = {"for.cond.1", "for.body.1", "for.inc.1", "if.then"}
        assert binding.placement.short_name() not in inner_names

    def test_gaussblur_pixel_broadcast_at_def_site(self):
        # The R3 pixel load is consumed by the replicated shifts every
        # iteration: def-site placement, broadcast channel.
        cp = compiled_for(GAUSSBLUR)
        broadcast = [b for b in cp.result.bindings if b.broadcast]
        assert broadcast
        pixel = next(b for b in broadcast if b.value.type.is_float)
        assert pixel.channel.n_channels == 4


class TestReinvocation:
    def test_accelerator_reinvoked_per_row(self):
        # Gaussblur's wrapper invokes the pipeline once per image row;
        # FIFOs must be re-armed between invocations.
        from repro.harness.runner import run_backend
        import dataclasses
        small = dataclasses.replace(GAUSSBLUR, setup_args=[4, 24])
        result = run_backend(small, "cgpa-p1")
        assert result.sim.invocations == 4  # one join per row

    def test_leftover_fifo_values_cleared(self):
        # The traversal stage pushes one value nobody pops (the exit
        # evaluation); a second invocation must not observe it.
        cp = compiled_for(GAUSSBLUR)
        # Functional check: two rows through the cosim equals sequential.
        ref_module = compile_c(GAUSSBLUR.source, "ref")
        optimize_module(ref_module)
        ref = Interpreter(ref_module)
        ref.call("driver", [])
        _, memory, handler = run_transformed(cp.module, "driver", [])
        assert memory.snapshot() == ref.memory.snapshot()


class TestChannelTypes:
    def test_wide_values_have_two_fifo_slots(self):
        cp = compiled_for(KS)
        f64_channels = [
            b.channel for b in cp.result.bindings if b.value.type.is_float
        ]
        assert f64_channels
        assert all(c.fifo_slots_per_value == 2 for c in f64_channels)

    def test_consume_types_match_produced_values(self):
        cp = compiled_for(KS)
        for task in cp.result.tasks:
            for inst in task.instructions():
                if isinstance(inst, Consume):
                    binding = next(
                        b for b in cp.result.bindings
                        if b.channel.channel_id == inst.channel.channel_id
                    )
                    assert inst.type == binding.value.type
                if isinstance(inst, Produce):
                    assert inst.value.type == inst.channel.elem_type
