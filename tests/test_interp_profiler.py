"""Tests for the execution profiler (hotspot identification + SCC weights)."""

from repro.analysis import LoopInfo
from repro.frontend import compile_c
from repro.interp import profile_call
from repro.transforms import optimize_module


class TestProfile:
    def test_instruction_counts(self):
        module = compile_c(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        optimize_module(module)
        profile = profile_call(module, "f", [10])
        f = module.get_function("f")
        adds = [i for i in f.instructions() if i.opcode == "add"]
        assert adds
        # Each add in the loop body executes once per iteration.
        for add in adds:
            assert profile.count(add) == 10

    def test_block_counts_follow_trip_count(self):
        module = compile_c(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        optimize_module(module)
        profile = profile_call(module, "f", [7])
        f = module.get_function("f")
        body = next(b for b in f.blocks if b.name.startswith("for.body"))
        header = next(b for b in f.blocks if b.name.startswith("for.cond"))
        assert profile.block_count(body) == 7
        assert profile.block_count(header) == 8  # +1 exit evaluation

    def test_edge_counts(self):
        module = compile_c(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        optimize_module(module)
        profile = profile_call(module, "f", [5])
        f = module.get_function("f")
        header = next(b for b in f.blocks if b.name.startswith("for.cond"))
        body = next(b for b in f.blocks if b.name.startswith("for.body"))
        assert profile.edge_count(header, body) == 5

    def test_function_weight(self):
        module = compile_c(
            "int helper(int x) { return x * x; }"
            "int f(int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += helper(i); return s; }"
        )
        optimize_module(module)
        profile = profile_call(module, "f", [20])
        helper = module.get_function("helper")
        assert profile.function_weight(helper) > 0

    def test_return_value_captured(self):
        module = compile_c("int f(int a) { return a + 1; }")
        optimize_module(module)
        profile = profile_call(module, "f", [41])
        assert profile.return_value == 42

    def test_hottest_loop_selection_in_driver(self):
        # Two top-level loops: profiling must pick the hot one.
        source = """
        void* malloc(int n);
        int kernel(int* a, int cold_n, int hot_n) {
            int s = 0;
            for (int i = 0; i < cold_n; i++) s += a[i];
            for (int j = 0; j < hot_n; j++) s += a[j & 7] * 3;
            return s;
        }
        void driver(void) { kernel((int*)malloc(64), 2, 100); }
        """
        from repro.pipeline import cgpa_compile
        module = compile_c(source)
        compiled = cgpa_compile(
            module, "kernel",
            profile_entry="driver", profile_args=[],
        )
        # The selected loop must be the one whose body contains the mul.
        # (compiled.loop's blocks are consumed by the parent rewrite, so
        # inspect the PDG's retained instruction nodes.)
        opcodes = {i.opcode for i in compiled.pdg.nodes}
        assert "mul" in opcodes

    def test_scc_weights_from_profile(self):
        from repro.analysis import LoopInfo, PointsTo, ProgramDependenceGraph
        source = """
        void* malloc(int n);
        int kernel(int* a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        void driver(void) { kernel((int*)malloc(400), 50); }
        """
        module = compile_c(source)
        optimize_module(module)
        profile = profile_call(module, "driver", [])
        loop = LoopInfo(module.get_function("kernel")).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module), profile=profile)
        # Dynamic weights reflect ~50 executions, not static size.
        assert max(scc.weight for scc in pdg.sccs) >= 50
