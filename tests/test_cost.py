"""Tests for the area and power/energy cost models."""

import pytest

from repro.cost import (
    accelerator_area,
    function_aluts,
    power_report,
    single_module_area,
)
from repro.frontend import compile_c
from repro.harness import run_backend
from repro.kernels import EM3D, KERNELS_BY_NAME
from repro.pipeline import cgpa_compile
from repro.rtl import cost_of
from repro.transforms import optimize_module


def small_fn(source, name="f"):
    module = compile_c(source)
    optimize_module(module)
    return module.get_function(name)


class TestArea:
    def test_more_ops_more_aluts(self):
        small = small_fn("int f(int a) { return a + 1; }")
        big = small_fn("int f(int a) { return a * a + a / 3 - (a ^ 7); }")
        assert function_aluts(big) > function_aluts(small)

    def test_fp_double_costs_more_than_int(self):
        fint = small_fn("int f(int a, int b) { return a + b; }")
        fdbl = small_fn("double f(double a, double b) { return a + b; }")
        assert function_aluts(fdbl) > function_aluts(fint)

    def test_callee_included_once(self):
        module = compile_c(
            "int helper(int x) { return x * x + 3; }"
            "int f(int a) { return helper(a) + helper(a + 1); }"
        )
        optimize_module(module)
        f = module.get_function("f")
        helper = module.get_function("helper")
        assert function_aluts(f) > function_aluts(helper)
        # Two call sites share one submodule instance (LegUp-style
        # function sharing): area grows by ~one helper, not two.
        assert function_aluts(f) < 2 * function_aluts(helper) + 400

    def test_recursion_terminates(self):
        fn = small_fn("int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); }")
        assert function_aluts(fn) > 0

    def test_parallel_workers_multiply_area(self):
        spec = EM3D
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        compiled = cgpa_compile(
            module, "kernel", shapes=spec.shapes_for(module)
        )
        tasks = compiled.result.tasks
        counts = [s.n_workers for s in compiled.spec.stages]
        area4 = accelerator_area(tasks, counts)
        area1 = accelerator_area(tasks, [1] * len(tasks))
        assert area4.total_aluts > 2 * area1.total_aluts

    def test_fifo_bram_accounted(self):
        spec = EM3D
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        compiled = cgpa_compile(module, "kernel", shapes=spec.shapes_for(module))
        area = accelerator_area(
            compiled.result.tasks,
            [s.n_workers for s in compiled.spec.stages],
            compiled.result.channels,
        )
        assert area.bram_bits > 0
        assert area.fifo_aluts > 0

    def test_single_module_area_smaller_than_pipeline(self):
        run_legup = run_backend(KERNELS_BY_NAME["ks"], "legup")
        run_cgpa = run_backend(KERNELS_BY_NAME["ks"], "cgpa-p1")
        assert run_cgpa.aluts > run_legup.aluts


class TestPower:
    def test_energy_is_power_times_time(self):
        result = run_backend(KERNELS_BY_NAME["ks"], "legup")
        report = result.power
        assert report.total_energy_j == pytest.approx(
            report.total_power_w * report.time_s
        )
        assert report.total_power_w > report.static_power_w > 0

    def test_more_workers_more_power(self):
        p1 = run_backend(EM3D, "cgpa-p1", n_workers=1)
        p4 = run_backend(EM3D, "cgpa-p1", n_workers=4)
        assert p4.power_mw > p1.power_mw
        # ...but less or comparable energy (it finishes much sooner).
        assert p4.energy_uj < 1.5 * p1.energy_uj

    def test_cgpa_burns_more_power_than_legup(self):
        legup = run_backend(KERNELS_BY_NAME["Hash-indexing"], "legup")
        cgpa = run_backend(KERNELS_BY_NAME["Hash-indexing"], "cgpa-p1")
        assert cgpa.power_mw > legup.power_mw


class TestOpCosts:
    def test_division_slowest_int_op(self):
        from repro.ir import BinaryOp, Constant, I32
        div = BinaryOp("sdiv", Constant(I32, 1), Constant(I32, 1))
        add = BinaryOp("add", Constant(I32, 1), Constant(I32, 1))
        assert cost_of(div).latency > cost_of(add).latency
        assert cost_of(div).aluts > cost_of(add).aluts

    def test_double_fp_slower_than_single(self):
        from repro.ir import BinaryOp, Constant, F32, F64
        f32 = BinaryOp("fadd", Constant(F32, 1.0), Constant(F32, 1.0))
        f64 = BinaryOp("fadd", Constant(F64, 1.0), Constant(F64, 1.0))
        assert cost_of(f64).latency > cost_of(f32).latency
        assert cost_of(f64).aluts > cost_of(f32).aluts

    def test_blocking_classification(self):
        from repro.ir import Alloca, Channel, Consume, I32, Load
        from repro.rtl import is_blocking
        slot = Alloca(I32)
        assert is_blocking(Load(slot))
        assert is_blocking(Consume(Channel(0, "c", I32, 0, 1), I32))
        assert not is_blocking(slot)
