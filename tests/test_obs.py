"""Tests for the run-record spine: envelopes, emitters, query, dashboard.

Covers the serialisation contract (bit-exact round-trip, unknown-key
tolerance, future-schema refusal), the writer (content-addressed record
plus append-only journal), ingestion and query combinators, regression
diffs, byte-identical regeneration of the deprecated per-subsystem text
reports from envelopes alone, the HTML dashboard, and the
``python -m repro.harness obs`` CLI.
"""

import json

import pytest

from repro.errors import CgpaError
from repro.harness.__main__ import main
from repro.harness.report import format_pareto, format_stall_breakdown
from repro.harness.runner import run_backend
from repro.kernels import KERNELS_BY_NAME
from repro.obs import (
    ENVELOPE_KINDS,
    SCHEMA_VERSION,
    EnvelopeError,
    EnvelopeWriter,
    RunEnvelope,
    diff_envelope_sets,
    load_envelopes,
    render_dashboard,
)
from repro.obs.emit import (
    bench_envelope,
    cosim_envelope,
    eval_envelope,
    faults_envelope,
    sim_envelope,
    sweep_envelope,
)
from repro.obs.query import EnvelopeSet, render_legacy_report
from repro.service.store import ArtifactStore, content_key


def make_env(kind="sim", n=0, **overrides):
    """A synthetic envelope with a deterministic timestamp/run id."""
    fields = dict(
        kind=kind,
        run_id=f"{kind}-{n:012d}",
        timestamp=f"2026-08-07T00:00:{n:02d}.000000Z",
        kernel="ks",
        engine="event",
        config_hash=f"cfg{n:04d}" + "0" * 57,
        status="ok",
        cycles=1000 + n,
    )
    fields.update(overrides)
    return RunEnvelope(**fields)


# --------------------------------------------------------------------------
# Schema contract
# --------------------------------------------------------------------------


class TestEnvelopeSchema:
    def test_round_trip_bit_exact(self):
        env = make_env(
            stall_cycles={"mem_stall": 7, "active": 3},
            total_aluts=5114,
            energy_uj=8.5,
            power_mw=21.5,
            cost_model_version=2,
            verdicts={"outcomes": {"b": 2, "a": 1}},
            payload={"cycles": 1000},
            extra={"backend": "cgpa-p1"},
        )
        wire = env.to_dict()
        # Through JSON and back: equal object, bit-exact dict.
        rebuilt = RunEnvelope.from_dict(json.loads(json.dumps(wire)))
        assert rebuilt == env
        assert rebuilt.to_dict() == wire
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            wire, sort_keys=True
        )

    def test_nested_mappings_are_key_sorted(self):
        env = make_env(verdicts={"z": 1, "a": {"y": 2, "b": 3}})
        wire = env.to_dict()
        assert list(wire["verdicts"]) == ["a", "z"]
        assert list(wire["verdicts"]["a"]) == ["b", "y"]

    def test_unknown_keys_are_dropped(self):
        wire = make_env().to_dict()
        wire["a_future_field"] = {"anything": True}
        rebuilt = RunEnvelope.from_dict(wire)
        assert rebuilt == make_env()
        assert "a_future_field" not in rebuilt.to_dict()

    def test_missing_schema_version_is_typed_error(self):
        wire = make_env().to_dict()
        del wire["schema_version"]
        with pytest.raises(EnvelopeError, match="schema_version"):
            RunEnvelope.from_dict(wire)

    def test_newer_schema_version_refused_with_actionable_message(self):
        wire = make_env().to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(EnvelopeError) as excinfo:
            RunEnvelope.from_dict(wire)
        message = str(excinfo.value)
        assert f"v{SCHEMA_VERSION + 1}" in message
        assert f"supports up to v{SCHEMA_VERSION}" in message
        assert "upgrade" in message

    def test_envelope_error_hits_the_cli_error_boundary(self):
        assert issubclass(EnvelopeError, CgpaError)

    @pytest.mark.parametrize("mutation, needle", [
        ({"kind": "nonsense"}, "unknown kind"),
        ({"cycles": "fast"}, "cycles"),
        ({"kernel": 7}, "kernel"),
        ({"stall_cycles": [1, 2]}, "stall_cycles"),
        ({"run_id": 7}, "run_id"),
        ({"schema_version": True}, "schema_version"),
    ])
    def test_invalid_fields_raise(self, mutation, needle):
        wire = make_env().to_dict()
        wire.update(mutation)
        with pytest.raises(EnvelopeError, match=needle):
            RunEnvelope.from_dict(wire)

    def test_non_object_records_raise(self):
        with pytest.raises(EnvelopeError, match="JSON object"):
            RunEnvelope.from_dict(["not", "a", "record"])
        with pytest.raises(EnvelopeError, match="kind"):
            RunEnvelope.from_dict({"schema_version": 1})

    def test_autofilled_identity(self):
        env = RunEnvelope(kind="bench")
        assert env.run_id.startswith("bench-")
        assert env.timestamp.endswith("Z")
        env.validate()

    def test_kind_catalogue_is_stable(self):
        assert ENVELOPE_KINDS == (
            "sim", "dse-eval", "dse-sweep", "faults", "cosim",
            "service-job", "bench", "fleet",
        )

    def test_ok_and_identity(self):
        assert make_env(status="ok").ok
        assert make_env(status=None).ok
        assert not make_env(status="deadlock").ok
        env = make_env()
        assert env.identity() == (
            env.kind, env.kernel, env.engine, env.config_hash
        )


# --------------------------------------------------------------------------
# Writer: artifact + journal
# --------------------------------------------------------------------------


class TestEnvelopeWriter:
    def test_write_persists_artifact_and_journal_line(self, tmp_path):
        writer = EnvelopeWriter(tmp_path / "store")
        env = make_env()
        writer.write(env)
        record = env.to_dict()
        key = content_key({"envelope": record})
        assert ArtifactStore(tmp_path / "store").get(key) == record
        lines = writer.journal_path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [record]

    def test_journal_is_append_only(self, tmp_path):
        writer = EnvelopeWriter(tmp_path)
        for n in range(3):
            writer.write(make_env(n=n))
        lines = writer.journal_path.read_text().splitlines()
        assert len(lines) == 3
        assert [json.loads(l)["run_id"] for l in lines] == [
            "sim-000000000000", "sim-000000000001", "sim-000000000002",
        ]

    def test_rerun_of_identical_config_keeps_both_records(self, tmp_path):
        writer = EnvelopeWriter(tmp_path)
        writer.write(make_env(n=1, config_hash="same"))
        writer.write(make_env(n=2, config_hash="same"))
        assert len(load_envelopes(tmp_path)) == 2

    def test_invalid_envelope_never_reaches_disk(self, tmp_path):
        writer = EnvelopeWriter(tmp_path)
        with pytest.raises(EnvelopeError):
            writer.write(make_env(cycles="fast"))
        assert not writer.journal_path.exists()

    def test_publish_run_writes_artifact_mirror_and_envelope(self, tmp_path):
        writer = EnvelopeWriter(tmp_path / "store")
        artifact = {"kind": "dse", "results": []}
        key = content_key(artifact)
        mirror = tmp_path / "legacy" / "report.json"
        path = writer.publish_run(
            key, artifact, make_env(kind="dse-sweep"), mirror=mirror
        )
        assert path.is_file()
        assert json.loads(mirror.read_text()) == artifact
        assert load_envelopes(tmp_path / "store").kinds() == ["dse-sweep"]


# --------------------------------------------------------------------------
# Ingestion
# --------------------------------------------------------------------------


class TestLoadEnvelopes:
    def test_loads_store_root_journal_and_bare_file(self, tmp_path):
        writer = EnvelopeWriter(tmp_path)
        writer.write(make_env(n=2))
        writer.write(make_env(n=1))
        from_root = load_envelopes(tmp_path)
        from_file = load_envelopes(writer.journal_path)
        assert len(from_root) == len(from_file) == 2
        # Chronologically sorted regardless of journal order.
        assert [e.run_id for e in from_root] == [
            "sim-000000000001", "sim-000000000002",
        ]

    def test_directory_of_json_files_skips_legacy_artifacts(self, tmp_path):
        (tmp_path / "env.json").write_text(json.dumps(make_env().to_dict()))
        (tmp_path / "legacy.json").write_text(json.dumps({"kind": "dse"}))
        (tmp_path / "junk.json").write_text("{nope")
        loaded = load_envelopes(tmp_path)
        assert len(loaded) == 1
        assert not loaded.errors

    def test_corrupt_journal_line_collected_or_raised(self, tmp_path):
        writer = EnvelopeWriter(tmp_path)
        writer.write(make_env())
        with open(writer.journal_path, "a") as fh:
            fh.write("{torn line\n")
        relaxed = load_envelopes(tmp_path)
        assert len(relaxed) == 1
        assert len(relaxed.errors) == 1
        assert "envelopes.jsonl:2" in relaxed.errors[0]
        with pytest.raises(EnvelopeError, match="envelopes.jsonl:2"):
            load_envelopes(tmp_path, strict=True)

    def test_future_schema_record_fails_strict_load(self, tmp_path):
        writer = EnvelopeWriter(tmp_path)
        writer.write(make_env())
        wire = make_env(n=1).to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with open(writer.journal_path, "a") as fh:
            fh.write(json.dumps(wire) + "\n")
        with pytest.raises(EnvelopeError, match="upgrade"):
            load_envelopes(tmp_path, strict=True)

    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(EnvelopeError, match="no journal"):
            load_envelopes(tmp_path / "nowhere")


# --------------------------------------------------------------------------
# Query combinators
# --------------------------------------------------------------------------


@pytest.fixture()
def mixed_set():
    return EnvelopeSet([
        make_env(n=0, kind="sim", engine="event", cycles=100),
        make_env(n=1, kind="sim", engine="lockstep", cycles=100),
        make_env(n=2, kind="sim", kernel="em3d", engine="event", cycles=900),
        make_env(n=3, kind="dse-sweep", cycles=500),
        make_env(n=4, kind="faults", status="ok", cycles=None),
        make_env(n=5, kind="bench", kernel=None, engine=None, cycles=None),
    ], source="test")


class TestEnvelopeSet:
    def test_filter_by_typed_fields(self, mixed_set):
        assert len(mixed_set.filter(kind="sim")) == 3
        assert len(mixed_set.filter(kind="sim", kernel="ks")) == 2
        assert len(mixed_set.filter(engine="lockstep")) == 1
        assert len(mixed_set.filter(status="ok")) == 6
        assert len(mixed_set.filter(config_hash="cfg0002")) == 1

    def test_filter_by_time_range(self, mixed_set):
        since = mixed_set.filter(since="2026-08-07T00:00:04")
        assert [e.run_id for e in since] == [
            "faults-000000000004", "bench-000000000005",
        ]
        until = mixed_set.filter(until="2026-08-07T00:00:01.000000Z")
        assert len(until) == 2
        # A date prefix covers the whole day it abbreviates.
        assert len(mixed_set.filter(until="2026-08-07")) == 6
        assert len(mixed_set.filter(until="2026-08-06")) == 0

    def test_group_by_and_aggregate(self, mixed_set):
        groups = mixed_set.group_by("kind", "engine")
        assert ("sim", "event") in groups
        assert len(groups[("sim", "event")]) == 2
        stats = mixed_set.filter(kind="sim").aggregate("cycles")
        assert stats["runs"] == 3 and stats["measured"] == 3
        assert stats["min"] == 100 and stats["max"] == 900
        assert stats["latest"] == 900

    def test_aggregate_counts_unmeasured_runs(self, mixed_set):
        stats = mixed_set.aggregate("cycles")
        assert stats["runs"] == 6 and stats["measured"] == 4

    def test_unknown_keys_are_typed_errors(self, mixed_set):
        with pytest.raises(EnvelopeError, match="group-by"):
            mixed_set.group_by("hostname")
        with pytest.raises(EnvelopeError, match="metric"):
            mixed_set.aggregate("vibes")

    def test_latest_by_identity(self):
        first = make_env(n=1, cycles=10, config_hash="same")
        rerun = make_env(n=2, cycles=20, config_hash="same")
        latest = EnvelopeSet([first, rerun]).latest_by_identity()
        assert latest[first.identity()] is rerun

    def test_introspection(self, mixed_set):
        assert mixed_set.kinds() == ["bench", "dse-sweep", "faults", "sim"]
        assert mixed_set.kernels() == ["em3d", "ks"]
        assert mixed_set.engines() == ["event", "lockstep"]


# --------------------------------------------------------------------------
# Regression diffs
# --------------------------------------------------------------------------


class TestDiff:
    def test_flags_injected_regression(self):
        base = EnvelopeSet([make_env(n=1, cycles=1000, config_hash="c1")])
        new = EnvelopeSet([make_env(n=2, cycles=1250, config_hash="c1")])
        (diff,) = diff_envelope_sets(base, new)
        assert diff.regressed
        assert diff.delta == 250
        assert diff.ratio == pytest.approx(0.25)
        assert "REGRESSED" in diff.format()

    def test_threshold_tolerates_slack(self):
        base = EnvelopeSet([make_env(n=1, cycles=1000, config_hash="c1")])
        new = EnvelopeSet([make_env(n=2, cycles=1010, config_hash="c1")])
        (diff,) = diff_envelope_sets(base, new, threshold=0.02)
        assert not diff.regressed and "unchanged" in diff.format()

    def test_improvements_and_sort_order(self):
        base = EnvelopeSet([
            make_env(n=1, cycles=1000, config_hash="c1"),
            make_env(n=2, kernel="em3d", cycles=1000, config_hash="c2"),
        ])
        new = EnvelopeSet([
            make_env(n=3, cycles=900, config_hash="c1"),
            make_env(n=4, kernel="em3d", cycles=2000, config_hash="c2"),
        ])
        diffs = diff_envelope_sets(base, new)
        assert [d.regressed for d in diffs] == [True, False]
        assert "improved" in diffs[1].format()

    def test_unmatched_identities_are_skipped(self):
        base = EnvelopeSet([make_env(n=1)])
        new = EnvelopeSet([make_env(n=2, kernel="em3d")])
        assert diff_envelope_sets(base, new) == []

    def test_unknown_metric_raises(self):
        with pytest.raises(EnvelopeError, match="metric"):
            diff_envelope_sets(EnvelopeSet([]), EnvelopeSet([]), metric="x")


# --------------------------------------------------------------------------
# Real emitters: SimReport round-trip and byte-identical legacy reports
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def ks_run():
    return run_backend(KERNELS_BY_NAME["ks"], "cgpa-p1")


class TestSimReportRoundTrip:
    def test_to_dict_round_trips_bit_exactly(self, ks_run):
        sim = ks_run.sim
        wire = sim.to_dict()
        rebuilt = type(sim).from_dict(json.loads(json.dumps(wire)))
        assert rebuilt.to_dict() == wire
        assert rebuilt.cycles == sim.cycles
        assert rebuilt.worker_stats == sim.worker_stats
        assert rebuilt.stall_breakdown == sim.stall_breakdown
        assert rebuilt.liveouts == sim.liveouts

    def test_public_dict_is_complete(self, ks_run):
        wire = ks_run.sim.to_dict()
        for field in ("cycles", "return_value", "invocations",
                      "worker_stats", "cache_stats", "fifo_stats",
                      "liveouts", "liveouts_checksum"):
            assert field in wire, field
        assert wire["liveouts_checksum"] == ks_run.sim.liveouts_checksum()

    def test_checksum_is_an_equivalence_probe(self, ks_run):
        rebuilt = type(ks_run.sim).from_dict(ks_run.sim.to_dict())
        assert rebuilt.liveouts_checksum() == ks_run.sim.liveouts_checksum()
        mutated = type(ks_run.sim).from_dict(ks_run.sim.to_dict())
        mutated.return_value = (ks_run.sim.return_value or 0) + 1
        assert mutated.liveouts_checksum() != ks_run.sim.liveouts_checksum()

    def test_sim_envelope_regenerates_stall_report(self, ks_run):
        env = sim_envelope(
            ks_run.sim, kernel="ks", engine="event",
            area=ks_run.area, power=ks_run.power, backend="cgpa-p1",
        )
        env.validate()
        assert env.cycles == ks_run.sim.cycles
        assert env.total_aluts == ks_run.area.total_aluts
        assert sum(env.stall_cycles.values()) == sum(
            sum(c.values()) for c in ks_run.sim.stall_breakdown.values()
        )
        assert render_legacy_report(env) == format_stall_breakdown(
            ks_run.sim, kernel="ks"
        )


@pytest.fixture(scope="module")
def ks_sweep(tmp_path_factory):
    from repro.dse import ConfigSpace, Explorer, GridStrategy

    store = tmp_path_factory.mktemp("obs-sweep-store")
    writer = EnvelopeWriter(store)
    with Explorer(
        KERNELS_BY_NAME["ks"],
        ConfigSpace(policies=["p1"], n_workers=[1], fifo_depths=[4, 16]),
        envelopes=writer,
    ) as explorer:
        sweep = explorer.run(GridStrategy())
    return sweep, writer


class TestDseEmission:
    def test_explorer_journals_each_fresh_eval(self, ks_sweep):
        sweep, writer = ks_sweep
        loaded = load_envelopes(writer.store.root)
        evals = loaded.filter(kind="dse-eval")
        assert len(evals) == len(sweep.results) == 2
        assert [e.cycles for e in evals] == [r.cycles for r in sweep.results]
        assert all(e.config_hash for e in evals)

    def test_pareto_report_regenerates_byte_identically(self, ks_sweep):
        sweep, writer = ks_sweep
        env = sweep_envelope(sweep, engine="event", config_hash="ab" * 32)
        writer.write(env)
        # The deterministic legacy artifact is the envelope payload...
        assert env.payload == {"kind": "dse", **sweep.to_json_dict()}
        # ...and the Pareto table rendered from the reloaded envelope is
        # byte-identical to rendering the legacy JSON mirror.
        reloaded = load_envelopes(writer.store.root).filter(kind="dse-sweep")
        from repro.dse.explore import SweepResult

        legacy = format_pareto(SweepResult.from_json_dict(
            json.loads(json.dumps(sweep.to_json_dict()))
        ))
        assert render_legacy_report(reloaded[0]) == legacy
        assert "Pareto frontier" in legacy

    def test_sweep_envelope_verdicts(self, ks_sweep):
        sweep, _ = ks_sweep
        env = sweep_envelope(sweep, engine="event")
        assert env.verdicts["n_points"] == 2
        assert env.verdicts["status_counts"] == sweep.status_counts()
        assert env.cycles == min(r.cycles for r in sweep.results if r.ok)

    def test_eval_envelope_carries_cost_model_outputs(self, ks_sweep):
        sweep, _ = ks_sweep
        result = sweep.results[0]
        env = eval_envelope(result, kernel="ks", engine="event")
        assert env.total_aluts == result.total_aluts
        assert env.payload == result.to_dict()
        assert env.status == result.status


@pytest.fixture(scope="module")
def ks_faults():
    from repro.faults.sweep import resilience_sweep

    return resilience_sweep(KERNELS_BY_NAME["ks"], n_plans=2, seed=0)


class TestFaultsEmission:
    def test_report_round_trips_and_formats_byte_identically(self, ks_faults):
        report = ks_faults
        rebuilt = type(report).from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt.format() == report.format()
        assert rebuilt.to_dict() == report.to_dict()

    def test_faults_envelope_verdicts_match_report(self, ks_faults):
        env = faults_envelope(ks_faults, engine="event")
        env.validate()
        assert env.verdicts["timing_correct"] == ks_faults.timing_correct
        assert env.verdicts["hangs_diagnosed"] == ks_faults.hangs_diagnosed
        assert sum(env.verdicts["outcomes"].values()) == len(ks_faults.records)
        assert render_legacy_report(env) == ks_faults.format()


class TestOtherBuilders:
    def test_cosim_envelope(self):
        from repro.vsim.cosim import CosimReport

        report = CosimReport(
            kernel="ks", policy="p1", n_workers=2, fifo_depth=16,
            setup_args=[], oracle_result=7,
        )
        env = cosim_envelope(report, config_hash="cd" * 32)
        env.validate()
        assert env.kind == "cosim" and env.engine == "vsim"
        assert env.status == "ok"
        assert env.payload["kind"] == "rtl"

    def test_job_envelope_references_artifact(self):
        from repro.obs.emit import job_envelope

        job = {"job_id": "job-1", "kind": "simulate", "kernel": "ks",
               "key": "ab" * 32, "status": "done", "cached": False,
               "submissions": 1, "error": None}
        env = job_envelope(job, {"engine": "event", "cycles": 123})
        env.validate()
        assert env.kind == "service-job"
        assert env.config_hash == job["key"]
        assert env.cycles == 123
        assert env.payload["artifact_key"] == job["key"]
        assert "results" not in env.payload  # references, not duplicates

    def test_bench_envelope_identity_is_the_figure(self):
        a = bench_envelope("sim_speed", {"best": 3.5})
        b = bench_envelope("sim_speed", {"best": 3.7})
        c = bench_envelope("dse_speed", {"warm": 9.0})
        assert a.config_hash == b.config_hash != c.config_hash
        assert a.extra["figure"] == "sim_speed"
        a.validate()


# --------------------------------------------------------------------------
# Dashboard
# --------------------------------------------------------------------------


class TestDashboard:
    def test_renders_every_section_self_contained(self):
        envelopes = EnvelopeSet([
            make_env(n=0, kind="sim", engine="event",
                     stall_cycles={"active": 70, "mem_stall": 30}),
            make_env(n=1, kind="sim", engine="lockstep", cycles=1000),
            make_env(n=2, kind="dse-sweep",
                     verdicts={"status_counts": {"ok": 4}, "n_points": 4,
                               "frontier_size": 2},
                     extra={"strategy": "grid"}),
            make_env(n=3, kind="faults",
                     verdicts={"timing_correct": 2, "hangs_diagnosed": 1,
                               "corruptions_triggered": 1,
                               "corruptions_detected": 1, "outcomes": {}},
                     extra={"seed": 0, "n_plans": 2}),
            make_env(n=4, kind="cosim", engine="vsim",
                     verdicts={"ok": True, "rounds": 3, "rounds_ok": 3,
                               "instances": 5},
                     extra={"policy": "p1"}),
            make_env(n=5, kind="service-job",
                     verdicts={"job_kind": "simulate", "cached": False}),
            make_env(n=6, kind="bench", kernel=None, engine=None,
                     cycles=None, payload={"speedup": 3.1},
                     extra={"figure": "sim_speed"}),
            make_env(n=7, kind="bench", kernel=None, engine=None,
                     cycles=None, payload={"speedup": 3.4},
                     extra={"figure": "sim_speed"}),
        ], errors=["journal:9: torn record"], source="synthetic")
        page = render_dashboard(envelopes, title="obs <test>")
        for heading in ("Overview", "Simulations", "Engine equivalence",
                        "Design-space sweeps", "Fault sweeps",
                        "RTL co-simulation", "Service jobs", "Benchmarks"):
            assert f"<h2>{heading}</h2>" in page
        # Self-contained: no external fetches of any kind.
        assert "http://" not in page and "https://" not in page
        assert "src=" not in page
        # Escaping, errors box, sparkline, stall bar all present.
        assert "obs &lt;test&gt;" in page
        assert "torn record" in page
        assert "<svg" in page and "polyline" in page
        assert 'class="bar"' in page
        # Engines agree on ks -> equivalence verdict is green.
        assert "agree" in page and "DIVERGE" not in page

    def test_divergence_is_flagged(self):
        envelopes = EnvelopeSet([
            make_env(n=0, engine="event", cycles=100),
            make_env(n=1, engine="lockstep", cycles=999),
        ])
        assert "DIVERGE" in render_dashboard(envelopes)

    def test_empty_journal_renders(self):
        page = render_dashboard(EnvelopeSet([], source="empty"))
        assert "journal is empty" in page


# --------------------------------------------------------------------------
# CLI: python -m repro.harness obs query | diff | report
# --------------------------------------------------------------------------


@pytest.fixture()
def journal(tmp_path):
    writer = EnvelopeWriter(tmp_path / "store")
    for n in range(3):
        writer.write(make_env(n=n, cycles=1000 + n))
    writer.write(make_env(n=3, kind="dse-sweep", cycles=400))
    return tmp_path / "store"


class TestObsCli:
    def test_query_lists_and_filters(self, journal, capsys):
        assert main(["obs", "query", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "4/4 envelopes" in out
        assert main(["obs", "query", str(journal), "--kind", "sim"]) == 0
        assert "3/4 envelopes" in capsys.readouterr().out

    def test_query_json_round_trips(self, journal, capsys):
        assert main(["obs", "query", str(journal), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert [RunEnvelope.from_dict(r).kind for r in records] == [
            "sim", "sim", "sim", "dse-sweep",
        ]

    def test_query_group_by_aggregates(self, journal, capsys):
        assert main([
            "obs", "query", str(journal), "--group-by", "kind",
            "--metric", "cycles",
        ]) == 0
        out = capsys.readouterr().out
        assert "sim: 3 run(s)" in out and "min=1000" in out

    def test_strict_query_fails_on_torn_record(self, journal, capsys):
        with open(journal / "envelopes.jsonl", "a") as fh:
            fh.write("{torn\n")
        assert main(["obs", "query", str(journal), "--strict"]) == 1
        assert "error:" in capsys.readouterr().err
        # Relaxed mode warns but succeeds.
        assert main(["obs", "query", str(journal)]) == 0
        assert "skipped invalid record" in capsys.readouterr().err

    def test_diff_flags_injected_regression(self, journal, tmp_path, capsys):
        lines = (journal / "envelopes.jsonl").read_text().splitlines()
        regressed = []
        for line in lines:
            record = json.loads(line)
            if record["kind"] == "dse-sweep":
                record["cycles"] = int(record["cycles"] * 1.5)
            regressed.append(json.dumps(record, sort_keys=True))
        candidate = tmp_path / "new.jsonl"
        candidate.write_text("\n".join(regressed) + "\n")

        assert main(["obs", "diff", str(journal), str(candidate)]) == 0
        out = capsys.readouterr().out
        assert "1 regressed" in out and "REGRESSED" in out
        assert main([
            "obs", "diff", str(journal), str(candidate),
            "--fail-on-regression",
        ]) == 1
        # Identical journals: all identities unchanged.
        assert main([
            "obs", "diff", str(journal), str(journal),
            "--fail-on-regression",
        ]) == 0

    def test_report_renders_dashboard(self, journal, tmp_path, capsys):
        out_path = tmp_path / "dash" / "index.html"
        assert main([
            "obs", "report", str(journal), "--out", str(out_path),
            "--title", "spine",
        ]) == 0
        page = out_path.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>spine</title>" in page
        assert "dash" in capsys.readouterr().out

    def test_query_report_requires_reportable_kind(self, tmp_path, capsys):
        writer = EnvelopeWriter(tmp_path)
        writer.write(make_env(kind="bench", kernel=None, engine=None,
                              cycles=None, extra={"figure": "x"}))
        assert main(["obs", "query", str(tmp_path), "--report"]) == 1
        assert "no matching envelope" in capsys.readouterr().err
