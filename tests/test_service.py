"""Unit tests for the service layer: contracts, store, queue, limiter.

The HTTP surface is covered end-to-end in ``test_service_http.py``;
here every component is exercised in-process where failures localise:
contract validation and content keying, artifact-store semantics
(cold/warm hits, LRU eviction, locked atomic writes, torn entries), the
ResultCache compatibility shim, queue coalescing with a gated executor,
and token-bucket refill against a fake clock.
"""

import hashlib
import json
import os
import threading

import pytest

from repro.dse import DesignPoint, ResultCache
from repro.dse.cache import result_key
from repro.kernels import KERNELS_BY_NAME
from repro.service import ContractError, JobRequest
from repro.service.contracts import JOB_KINDS, OPTION_SCHEMAS
from repro.service.queue import JobQueue
from repro.service.ratelimit import RateLimiter
from repro.service.store import ArtifactStore, publish


# --------------------------------------------------------------------------
# Contracts
# --------------------------------------------------------------------------


class TestContracts:
    @pytest.mark.parametrize("kind", JOB_KINDS)
    def test_round_trip_every_kind(self, kind):
        request = JobRequest.make(kind, "ks")
        wire = request.to_dict()
        rebuilt = JobRequest.from_dict(json.loads(json.dumps(wire)))
        assert rebuilt == request
        assert rebuilt.key == request.key

    @pytest.mark.parametrize("kind", JOB_KINDS)
    def test_defaults_are_complete(self, kind):
        request = JobRequest.make(kind, "ks")
        assert set(request.options) == set(OPTION_SCHEMAS[kind])

    def test_spelled_out_default_keys_like_omitted(self):
        bare = JobRequest.make("compile", "ks")
        spelled = JobRequest.make("compile", "ks", {"policy": "p1"})
        assert bare.key == spelled.key

    def test_key_covers_kind_kernel_options_and_source(self):
        base = JobRequest.make("compile", "ks").key
        assert JobRequest.make("simulate", "ks").key != base
        assert JobRequest.make("compile", "em3d").key != base
        assert JobRequest.make("compile", "ks", {"n_workers": 2}).key != base
        source = KERNELS_BY_NAME["ks"].source + "\n"
        assert JobRequest.make("compile", "ks", source=source).key != base

    def test_source_override_resolves_into_spec(self):
        source = KERNELS_BY_NAME["ks"].source + "\n// tweaked\n"
        request = JobRequest.make("simulate", "ks", source=source)
        assert request.spec().source == source
        assert request.spec().name == "ks"

    def test_unknown_kind_kernel_option_field_rejected(self):
        with pytest.raises(ContractError, match="unknown job kind"):
            JobRequest.make("transmogrify", "ks")
        with pytest.raises(ContractError, match="unknown kernel"):
            JobRequest.make("compile", "quicksort")
        with pytest.raises(ContractError, match="unknown option"):
            JobRequest.make("compile", "ks", {"warp_factor": 9})
        with pytest.raises(ContractError, match="unknown request field"):
            JobRequest.from_dict({"kind": "compile", "kernel": "ks",
                                  "priority": "high"})

    def test_bad_option_values_rejected(self):
        with pytest.raises(ContractError, match="policy"):
            JobRequest.make("compile", "ks", {"policy": "p7"})
        with pytest.raises(ContractError, match="n_workers"):
            JobRequest.make("compile", "ks", {"n_workers": 0})
        with pytest.raises(ContractError, match="n_workers"):
            JobRequest.make("compile", "ks", {"n_workers": True})
        with pytest.raises(ContractError, match="cache_lines"):
            JobRequest.make("simulate", "ks", {"cache_lines": 513})
        with pytest.raises(ContractError, match="policies"):
            JobRequest.make("dse", "ks", {"policies": []})

    def test_non_object_bodies_rejected(self):
        with pytest.raises(ContractError, match="JSON object"):
            JobRequest.from_dict([1, 2, 3])
        with pytest.raises(ContractError, match="must be a string"):
            JobRequest.from_dict({"kind": "compile", "kernel": 7})
        with pytest.raises(ContractError, match="options"):
            JobRequest.from_dict(
                {"kind": "compile", "kernel": "ks", "options": [1]}
            )


# --------------------------------------------------------------------------
# Artifact store
# --------------------------------------------------------------------------


class TestArtifactStore:
    def test_round_trip_and_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ab" + "0" * 62
        store.put(key, {"x": 1})
        assert store.get(key) == {"x": 1}
        assert store.path(key) == tmp_path / "ab" / f"{key}.json"
        assert store.path(key).is_file()
        assert len(store) == 1 and store.keys() == [key]
        assert key in store

    def test_cold_then_warm_hits(self, tmp_path):
        writer = ArtifactStore(tmp_path)
        key = "cd" + "0" * 62
        writer.put(key, {"x": 1})
        reader = ArtifactStore(tmp_path)  # fresh process-equivalent
        assert reader.get(key) == {"x": 1}
        assert reader.stats.cold_hits == 1 and reader.stats.warm_hits == 0
        assert reader.get(key) == {"x": 1}
        assert reader.stats.cold_hits == 1 and reader.stats.warm_hits == 1
        reader.drop_memory()
        assert reader.get(key) == {"x": 1}
        assert reader.stats.cold_hits == 2

    def test_miss_and_torn_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ef" + "0" * 62
        assert store.get(key) is None
        assert store.stats.misses == 1
        store.path(key).parent.mkdir(parents=True)
        store.path(key).write_text("{torn")
        assert store.get(key) is None
        assert store.stats.misses == 2

    def test_lru_eviction_order(self, tmp_path):
        store = ArtifactStore(tmp_path, lru_entries=2)
        keys = [f"{i:02d}" + "0" * 62 for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        assert store.lru_keys() == [keys[1], keys[2]]  # keys[0] evicted
        # The evicted artifact is still on disk: a cold hit, not a miss.
        assert store.get(keys[0]) == {"i": 0}
        assert store.stats.cold_hits == 1
        assert store.lru_keys() == [keys[2], keys[0]]
        # Touching an entry protects it from the next eviction.
        store.get(keys[2])
        store.put("ff" + "0" * 62, {"i": 9})
        assert keys[2] in store.lru_keys()

    def test_lru_disabled(self, tmp_path):
        store = ArtifactStore(tmp_path, lru_entries=0)
        key = "aa" + "0" * 62
        store.put(key, {"x": 1})
        assert store.lru_keys() == []
        assert store.get(key) == {"x": 1}
        assert store.stats.cold_hits == 1

    def test_stale_lock_does_not_block_writes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "bb" + "0" * 62
        path = store.path(key)
        path.parent.mkdir(parents=True)
        # A writer died mid-stage: its O_EXCL temp survives.
        path.with_name(f".{path.name}.tmp").write_text("{half")
        store.put(key, {"x": 2})
        assert store.get(key) == {"x": 2}
        assert store.stats.write_conflicts == 1

    def test_concurrent_writers_never_tear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "cc" + "0" * 62
        artifact = {"payload": list(range(500))}
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    store.put(key, artifact)
                    got = ArtifactStore(tmp_path).get(key)
                    assert got == artifact
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.get(key) == artifact
        # No temp litter: every stage was renamed or cleaned up.
        assert not list(store.path(key).parent.glob(".*tmp"))

    def test_publish_mirrors_legacy_path(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        mirror = tmp_path / "legacy" / "result.json"
        key = "dd" + "0" * 62
        path = publish(store, key, {"x": 1}, mirror=mirror)
        assert json.loads(mirror.read_text()) == {"x": 1}
        assert mirror.is_symlink() or mirror.read_bytes() == path.read_bytes()
        # Re-publishing replaces the mirror in place.
        publish(store, key, {"x": 1}, mirror=mirror)
        assert json.loads(mirror.read_text()) == {"x": 1}


class TestStoreIntegrity:
    def test_put_writes_a_matching_integrity_sidecar(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ab" + "0" * 62
        store.put(key, {"x": 1})
        sidecar = store.integrity_path(key)
        assert sidecar.is_file()
        digest = hashlib.sha256(
            store.path(key).read_bytes()
        ).hexdigest()
        assert sidecar.read_text().strip() == digest

    def test_corruption_is_quarantined_and_reads_as_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ab" + "0" * 62
        store.put(key, {"x": 1})
        # Flip the payload under the sidecar's nose.
        store.path(key).write_text('{"x": 2}')
        reader = ArtifactStore(tmp_path)
        assert reader.get(key) is None
        assert reader.stats.corrupt == 1
        assert reader.stats.misses == 1
        assert not store.path(key).exists()
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert any(p.name == f"{key}.json.corrupt" for p in quarantined)
        # The quarantined file never re-enters the addressable tree.
        assert reader.get(key) is None
        assert key not in ArtifactStore(tmp_path).keys()
        # A re-executed job can re-publish under the same key.
        store.put(key, {"x": 1})
        assert ArtifactStore(tmp_path).get(key) == {"x": 1}

    def test_strict_get_raises_typed_artifact_corrupt(self, tmp_path):
        from repro.service import ArtifactCorrupt

        store = ArtifactStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, {"x": 1})
        store.path(key).write_text("{garbage")
        reader = ArtifactStore(tmp_path)
        with pytest.raises(ArtifactCorrupt) as info:
            reader.get(key, strict=True)
        assert info.value.key == key
        assert info.value.quarantined is not None

    def test_legacy_artifact_without_sidecar_is_accepted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "ef" + "0" * 62
        store.path(key).parent.mkdir(parents=True)
        store.path(key).write_text(
            json.dumps({"x": 3}, sort_keys=True)
        )
        assert store.get(key) == {"x": 3}
        assert store.stats.corrupt == 0


class TestResultCacheShim:
    def test_same_layout_as_historical_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = result_key(KERNELS_BY_NAME["ks"], DesignPoint(), 1000, "event")
        cache.put(key, {"status": "ok"})
        assert (tmp_path / key[:2] / f"{key}.json").is_file()
        assert cache.get(key) == {"status": "ok"}
        assert len(cache) == 1

    def test_reads_entries_written_by_older_versions(self, tmp_path):
        key = "ee" + "0" * 62
        (tmp_path / key[:2]).mkdir(parents=True)
        (tmp_path / key[:2] / f"{key}.json").write_text(
            json.dumps({"status": "ok", "cycles": 42})
        )
        assert ResultCache(tmp_path).get(key) == {"status": "ok", "cycles": 42}

    def test_store_and_cache_share_one_root(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = ArtifactStore(tmp_path)
        cache.put("aa" + "0" * 62, {"from": "cache"})
        store.put("ab" + "0" * 62, {"from": "store"})
        assert store.get("aa" + "0" * 62) == {"from": "cache"}
        assert cache.get("ab" + "0" * 62) == {"from": "store"}
        assert len(store) == 2


# --------------------------------------------------------------------------
# Job queue
# --------------------------------------------------------------------------


def _drive(coro):
    """Run an async test body on a fresh loop (no pytest-asyncio dep)."""
    import asyncio

    return asyncio.run(coro)


class TestJobQueue:
    def test_identical_inflight_keys_coalesce_to_one_execution(self, tmp_path):
        async def body():
            store = ArtifactStore(tmp_path)
            gate = threading.Event()
            calls = []

            def run(request):
                calls.append(request.key)
                assert gate.wait(10)
                return {"kind": request.kind, "ran": True}

            queue = JobQueue(store, workers=2, run=run)
            await queue.start()
            try:
                request = JobRequest.make("compile", "ks")
                first = queue.submit(request)
                second = queue.submit(JobRequest.make("compile", "ks"))
                assert second is first  # same record, one job id
                assert first.submissions == 2
                assert queue.stats.coalesced == 1
                gate.set()
                assert await queue.wait(first, timeout=10)
                assert first.status == "done"
                assert len(calls) == 1  # the work ran exactly once
                assert queue.result(first) == {"kind": "compile", "ran": True}
                # A third submission after completion is a store hit.
                third = queue.submit(JobRequest.make("compile", "ks"))
                assert third is not first
                assert third.status == "done" and third.cached
                assert queue.stats.cached == 1
            finally:
                await queue.close()

        _drive(body())

    def test_distinct_keys_do_not_coalesce(self, tmp_path):
        async def body():
            store = ArtifactStore(tmp_path)
            queue = JobQueue(store, workers=2, run=lambda r: {"k": r.kind})
            await queue.start()
            try:
                a = queue.submit(JobRequest.make("compile", "ks"))
                b = queue.submit(
                    JobRequest.make("compile", "ks", {"n_workers": 2})
                )
                assert a is not b
                await queue.wait(a, 10)
                await queue.wait(b, 10)
                assert queue.stats.executed == 2
            finally:
                await queue.close()

        _drive(body())

    def test_failures_are_recorded_not_raised(self, tmp_path):
        async def body():
            from repro.errors import CgpaError

            store = ArtifactStore(tmp_path)

            def run(request):
                if request.options["n_workers"] == 1:
                    raise CgpaError("deadlock: nobody can make progress")
                raise ValueError("executor bug")

            queue = JobQueue(store, workers=1, run=run)
            await queue.start()
            try:
                model = queue.submit(
                    JobRequest.make("compile", "ks", {"n_workers": 1})
                )
                bug = queue.submit(
                    JobRequest.make("compile", "ks", {"n_workers": 2})
                )
                await queue.wait(model, 10)
                await queue.wait(bug, 10)
                assert model.status == "failed"
                assert "deadlock" in model.error
                assert bug.status == "failed"
                assert bug.error.startswith("internal: ValueError")
                assert queue.stats.failed == 2
                assert queue.result(model) is None
                # Failures are not cached: the next submission retries.
                retry = queue.submit(
                    JobRequest.make("compile", "ks", {"n_workers": 1})
                )
                assert retry is not model and not retry.cached
                await queue.wait(retry, 10)
            finally:
                await queue.close()

        _drive(body())


# --------------------------------------------------------------------------
# Rate limiting
# --------------------------------------------------------------------------


class TestRateLimiter:
    def test_burst_then_deny_then_refill(self):
        clock = [0.0]
        limiter = RateLimiter(
            capacity=2, refill_per_s=1.0, clock=lambda: clock[0]
        )
        assert limiter.check("alice").allowed
        assert limiter.check("alice").allowed
        denied = limiter.check("alice")
        assert not denied.allowed
        assert denied.retry_after == pytest.approx(1.0)
        assert limiter.rejected == 1
        clock[0] = 1.0  # one token refilled
        assert limiter.check("alice").allowed
        assert not limiter.check("alice").allowed

    def test_clients_are_isolated(self):
        clock = [0.0]
        limiter = RateLimiter(
            capacity=1, refill_per_s=0.0, clock=lambda: clock[0]
        )
        assert limiter.check("alice").allowed
        assert not limiter.check("alice").allowed
        assert limiter.check("bob").allowed  # bob has his own bucket

    def test_zero_refill_reports_finite_retry(self):
        limiter = RateLimiter(capacity=1, refill_per_s=0.0, clock=lambda: 0.0)
        limiter.check("c")
        decision = limiter.check("c")
        assert not decision.allowed and decision.retry_after > 0

    def test_client_table_is_bounded(self):
        limiter = RateLimiter(
            capacity=1, refill_per_s=1.0, max_clients=4, clock=lambda: 0.0
        )
        for i in range(20):
            limiter.check(f"client-{i}")
        assert len(limiter) <= 4
