"""Unit tests for partitioner internals: closures, demotion, repairs."""

import pytest

from repro.analysis import LoopInfo, PointsTo, ProgramDependenceGraph
from repro.frontend import compile_c
from repro.pipeline import ReplicationPolicy, partition_loop
from repro.pipeline.partition import _Partitioner
from repro.transforms import optimize_module


def pdg_for(source, kernel="kernel"):
    module = compile_c(source)
    optimize_module(module)
    loop = LoopInfo(module.get_function(kernel)).top_level()[0]
    return ProgramDependenceGraph(loop, PointsTo(module))


SHIFT_CHAIN = """
void* malloc(int m);
void kernel(double* in, double* out, int n) {
    double w0 = in[0];
    double w1 = in[1];
    for (int i = 0; i < n; i++) {
        out[i] = w0 + w1 * 0.5;
        w0 = w1;
        w1 = in[i + 2];
    }
}
void driver(void) { kernel((double*)malloc(256), (double*)malloc(256), 8); }
"""


class TestReplicableClosure:
    def test_shift_chain_replicated_together(self):
        # The w0 <- w1 chain must be replicated as a unit (gaussblur's R2).
        pdg = pdg_for(SHIFT_CHAIN)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        replicated_insts = {
            i.opcode for scc in spec.replicated for i in scc.instructions
        }
        assert "phi" in replicated_insts
        # The heavyweight in[] load is NOT replicated under P1.
        assert "load" not in replicated_insts

    def test_p2_replicates_the_load_too(self):
        pdg = pdg_for(SHIFT_CHAIN)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P2)
        replicated_insts = {
            i.opcode for scc in spec.replicated for i in scc.instructions
        }
        assert "load" in replicated_insts
        assert spec.signature == "P"

    def test_closure_fails_on_side_effecting_member(self):
        pdg = pdg_for(SHIFT_CHAIN)
        partitioner = _Partitioner(pdg, 4, ReplicationPolicy.P2)
        partitioner.parallel = {
            s.index for s in pdg.sccs if s.classification.value == "parallel"
        }
        store_scc = next(
            s for s in pdg.sccs
            if any(i.opcode == "store" for i in s.instructions)
        )
        assert partitioner._replicable_closure(store_scc.index) is None


class TestDemotion:
    def test_demoted_load_becomes_sequential_stage(self):
        # P1 on the shift chain: the load feeds the replicated shifts, is
        # cheap relative to the stage, and is fed by nothing in P ->
        # demoted to a broadcast stage (the paper's R3 handling).
        pdg = pdg_for(SHIFT_CHAIN)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        assert spec.signature == "S-P"
        stage0_ops = {
            i.opcode for scc in spec.stages[0].sccs for i in scc.instructions
        }
        assert "load" in stage0_ops

    def test_heavy_source_not_demoted(self):
        # ks-style: the gain computation IS the parallel stage; un-replicate
        # the reduction instead of demoting the gain.
        source = """
        void* malloc(int m);
        double kernel(double* w, int n) {
            double best = -1.0e30;
            for (int i = 0; i < n; i++) {
                double g = w[i] * w[i] + w[i] * 0.5 - 1.0;
                if (g > best) best = g;
            }
            return best;
        }
        void driver(void) { kernel((double*)malloc(256), 8); }
        """
        pdg = pdg_for(source)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        assert spec.signature == "P-S"
        # The fmul-heavy gain stays parallel.
        parallel_ops = {
            i.opcode
            for scc in spec.parallel_stage.sccs
            for i in scc.instructions
        }
        assert "fmul" in parallel_ops


class TestRepairTermination:
    def test_repair_converges_on_all_kernels(self):
        from repro.kernels import ALL_KERNELS
        for spec_def in ALL_KERNELS:
            module = compile_c(spec_def.source, spec_def.name)
            optimize_module(module)
            loop = LoopInfo(
                module.get_function(spec_def.accel_function)
            ).top_level()[0]
            pdg = ProgramDependenceGraph(
                loop, PointsTo(module), spec_def.shapes_for(module)
            )
            for policy in ReplicationPolicy:
                partition_loop(pdg, policy=policy)  # must not raise

    def test_every_policy_on_random_worker_counts(self):
        pdg = pdg_for(SHIFT_CHAIN)
        for n in (1, 2, 3, 4, 7, 8, 16):
            spec = partition_loop(pdg, n_workers=n)
            if spec.parallel_stage:
                assert spec.parallel_stage.n_workers == n
