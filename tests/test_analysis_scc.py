"""Property tests for Tarjan SCC and graph condensation."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import Condensation, condense, tarjan_scc


@st.composite
def digraph(draw):
    n = draw(st.integers(1, 12))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=30,
        )
    )
    return n, edges


class TestTarjan:
    @given(digraph())
    @settings(max_examples=80, deadline=None)
    def test_matches_networkx(self, graph):
        n, edges = graph
        succ = {}
        for a, b in edges:
            succ.setdefault(a, []).append(b)
        ours = tarjan_scc(range(n), succ)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        theirs = {frozenset(c) for c in nx.strongly_connected_components(g)}
        assert {frozenset(c) for c in ours} == theirs

    @given(digraph())
    @settings(max_examples=80, deadline=None)
    def test_partition_property(self, graph):
        n, edges = graph
        succ = {}
        for a, b in edges:
            succ.setdefault(a, []).append(b)
        comps = tarjan_scc(range(n), succ)
        seen = [node for comp in comps for node in comp]
        assert sorted(seen) == list(range(n))

    def test_reverse_topological_order(self):
        # Tarjan emits SCCs in reverse topological order: a -> b means
        # b's component appears before a's.
        succ = {0: [1], 1: [2], 2: []}
        comps = tarjan_scc([0, 1, 2], succ)
        position = {c[0]: i for i, c in enumerate(comps)}
        assert position[2] < position[1] < position[0]

    def test_cycle_collapsed(self):
        succ = {0: [1], 1: [2], 2: [0], 3: []}
        comps = tarjan_scc([0, 1, 2, 3], succ)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 3]


class TestCondensation:
    @given(digraph())
    @settings(max_examples=80, deadline=None)
    def test_condensation_is_acyclic(self, graph):
        n, edges = graph
        cond = condense(range(n), [(a, b, False) for a, b in edges])
        order = cond.topological_order()  # raises if cyclic
        position = {c: i for i, c in enumerate(order)}
        for (s, d) in cond.edges:
            assert position[s] < position[d]

    @given(digraph())
    @settings(max_examples=50, deadline=None)
    def test_component_of_consistent(self, graph):
        n, edges = graph
        cond = condense(range(n), [(a, b, False) for a, b in edges])
        for i, comp in enumerate(cond.components):
            for node in comp:
                assert cond.component_of[node] == i

    def test_carried_flag_aggregated(self):
        cond = condense(
            [0, 1],
            [(0, 1, False), (0, 1, True)],
        )
        assert cond.edges[(cond.component_of[0], cond.component_of[1])] is True

    def test_self_edges_do_not_create_dag_edges(self):
        cond = condense([0], [(0, 0, True)])
        assert not cond.edges
        assert len(cond.components) == 1
