"""Tests for the functional co-simulation layer (ChannelIO + fork runner)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.interp import ChannelIO, Interpreter, Memory
from repro.ir import (
    Channel,
    Consume,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    ParallelFork,
    ParallelJoin,
    Produce,
    VOID,
)
from repro.pipeline import FunctionalForkHandler
from repro.pipeline.spec import StageKind
from repro.pipeline.transform import TaskInfo


class TestChannelIO:
    def test_per_channel_fifo_order(self):
        io = ChannelIO()
        chan = Channel(0, "c", I32, 0, 1, n_channels=2)
        for v in (1, 2, 3):
            io.produce(chan, 0, v)
        io.produce(chan, 1, 99)
        assert io.try_consume(chan, 0) == (True, 1)
        assert io.try_consume(chan, 1) == (True, 99)
        assert io.try_consume(chan, 0) == (True, 2)
        assert io.try_consume(chan, 1) == (False, None)

    def test_broadcast_reaches_every_channel(self):
        io = ChannelIO()
        chan = Channel(1, "b", I32, 0, 1, n_channels=4)
        io.produce_broadcast(chan, 7)
        for i in range(4):
            assert io.try_consume(chan, i) == (True, 7)

    @given(st.lists(st.integers(), max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_values_preserved_in_order(self, values):
        io = ChannelIO()
        chan = Channel(2, "p", I32, 0, 1)
        for v in values:
            io.produce(chan, 0, v)
        out = []
        while True:
            ok, v = io.try_consume(chan, 0)
            if not ok:
                break
            out.append(v)
        assert out == values

    def test_pending_counts(self):
        io = ChannelIO()
        chan = Channel(0, "c", I32, 0, 1, n_channels=2)
        io.produce_broadcast(chan, 1)
        assert io.pending() == 2

    def test_deep_queue_order_and_snapshot(self):
        # Regression: queues are deques now — consuming the head of a
        # deep queue used to be an O(n) list pop(0), making a full
        # drain quadratic.  Order and the snapshot view must be
        # unaffected by the container change.
        io = ChannelIO()
        chan = Channel(3, "deep", I32, 0, 1)
        n = 50_000
        for v in range(n):
            io.produce(chan, 0, v)
        assert io.queue_sizes()[(3, 0)] == n
        snapshot = io.queue_snapshot()[(3, 0)]
        assert list(snapshot)[:5] == [0, 1, 2, 3, 4]
        for expected in range(n):
            ok, v = io.try_consume(chan, 0)
            assert ok and v == expected
        assert io.try_consume(chan, 0) == (False, None)


def build_producer_consumer(n_values=10):
    """A two-task pipeline: producer pushes 0..n-1, consumer sums them."""
    m = Module("m")
    chan = Channel(0, "c", I32, 0, 1)
    producer = m.new_function("producer", FunctionType(VOID, [I32]), ["n"])
    b = IRBuilder(producer.new_block("entry"))
    header = producer.new_block("header")
    body = producer.new_block("body")
    done = producer.new_block("done")
    b.jump(header)
    b.set_block(header)
    i_phi = b.phi(I32, "i")
    cond = b.icmp("slt", i_phi, producer.args[0])
    b.cond_branch(cond, body, done)
    b.set_block(body)
    b.block.append(Produce(chan, b.const_int(0), i_phi))
    i_next = b.add(i_phi, b.const_int(1))
    b.jump(header)
    i_phi.add_incoming(b.const_int(0), producer.entry)
    i_phi.add_incoming(i_next, body)
    b.set_block(done)
    b.ret()

    from repro.ir import StoreLiveout
    consumer = m.new_function("consumer", FunctionType(VOID, [I32]), ["n"])
    b = IRBuilder(consumer.new_block("entry"))
    header = consumer.new_block("header")
    body = consumer.new_block("body")
    done = consumer.new_block("done")
    b.jump(header)
    b.set_block(header)
    i_phi = b.phi(I32, "i")
    s_phi = b.phi(I32, "s")
    cond = b.icmp("slt", i_phi, consumer.args[0])
    b.cond_branch(cond, body, done)
    b.set_block(body)
    v = b.block.append(Consume(chan, I32))
    s_next = b.add(s_phi, v)
    i_next = b.add(i_phi, b.const_int(1))
    b.jump(header)
    i_phi.add_incoming(b.const_int(0), consumer.entry)
    i_phi.add_incoming(i_next, body)
    s_phi.add_incoming(b.const_int(0), consumer.entry)
    s_phi.add_incoming(s_next, body)
    b.set_block(done)
    b.block.append(StoreLiveout(0, s_phi))
    b.ret()

    parent = m.new_function("parent", FunctionType(I32, [I32]), ["n"])
    b = IRBuilder(parent.new_block("entry"))
    b.block.append(ParallelFork(0, producer, [parent.args[0]], None))
    b.block.append(ParallelFork(0, consumer, [parent.args[0]], None))
    b.block.append(ParallelJoin(0))
    from repro.ir import RetrieveLiveout
    r = b.block.append(RetrieveLiveout(0, I32))
    b.ret(r)

    for task in (producer, consumer):
        task.task_info = TaskInfo(0, 0, StageKind.SEQUENTIAL, 1)
    return m


class TestForkHandler:
    def test_producer_consumer_pipeline(self):
        m = build_producer_consumer()
        from repro.pipeline import run_transformed
        value, memory, handler = run_transformed(m, "parent", [10])
        assert value == sum(range(10))

    def test_empty_pipeline(self):
        m = build_producer_consumer()
        from repro.pipeline import run_transformed
        value, _, _ = run_transformed(m, "parent", [0])
        assert value == 0

    def test_deadlock_reported(self):
        # Consumer expects one more value than the producer sends.
        m = Module("m")
        chan = Channel(0, "c", I32, 0, 1)
        starving = m.new_function("starving", FunctionType(VOID, []), [])
        b = IRBuilder(starving.new_block("entry"))
        b.block.append(Consume(chan, I32))
        b.ret()
        starving.task_info = TaskInfo(0, 0, StageKind.SEQUENTIAL, 1)
        parent = m.new_function("parent", FunctionType(VOID, []), [])
        b = IRBuilder(parent.new_block("entry"))
        b.block.append(ParallelFork(0, starving, [], None))
        b.block.append(ParallelJoin(0))
        b.ret()
        from repro.pipeline import run_transformed
        with pytest.raises(SimulationError, match="deadlock"):
            run_transformed(m, "parent", [])

    def test_worker_id_forwarded_to_parallel_tasks(self):
        m = Module("m")
        from repro.ir import StoreLiveout
        task = m.new_function("t", FunctionType(VOID, [I32]), ["worker_id"])
        b = IRBuilder(task.new_block("entry"))
        b.block.append(StoreLiveout(0, task.args[0]))
        b.ret()
        task.task_info = TaskInfo(0, 0, StageKind.PARALLEL, 4)
        parent = m.new_function("parent", FunctionType(I32, []), [])
        b = IRBuilder(parent.new_block("entry"))
        b.block.append(ParallelFork(0, task, [], 3))
        b.block.append(ParallelJoin(0))
        from repro.ir import RetrieveLiveout
        r = b.block.append(RetrieveLiveout(0, I32))
        b.ret(r)
        from repro.pipeline import run_transformed
        value, _, _ = run_transformed(m, "parent", [])
        assert value == 3
