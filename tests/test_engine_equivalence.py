"""Differential tests: event-driven engine vs the lockstep oracle.

The event-driven engine (:mod:`repro.hw.engine`) skips the clock between
worker wake events; the lockstep engine ticks every worker every cycle.
The contract is *bit-identical* ``SimReport``\\ s — cycles, per-worker
stall breakdowns, cache and FIFO statistics, return values — on every
workload, including the fuzzed random pipelines, the private-cache mode
and traced runs (where the span cover must also match exactly).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import RegionShapes, Shape
from repro.errors import SimulationError
from repro.frontend import compile_c
from repro.harness.runner import setup_workload
from repro.hw import (
    AcceleratorSystem,
    DirectMappedCache,
    HwWorker,
    MemoryTraceSink,
)
from repro.interp import Interpreter, Memory, malloc_site_table
from repro.kernels import ALL_KERNELS, KERNELS_BY_NAME
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module

KERNEL_NAMES = [spec.name for spec in ALL_KERNELS]

#: cgpa_compile is engine-independent; compile each kernel once per session.
_COMPILED: dict[str, object] = {}


def compiled_kernel(name: str):
    if name not in _COMPILED:
        spec = KERNELS_BY_NAME[name]
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        _COMPILED[name] = cgpa_compile(
            module, spec.accel_function, shapes=spec.shapes_for(module),
            policy=ReplicationPolicy.P1, n_workers=4, fifo_depth=16,
        )
    return _COMPILED[name]


def simulate_kernel(name: str, engine: str, sink=None, **system_kwargs):
    spec = KERNELS_BY_NAME[name]
    compiled = compiled_kernel(name)
    memory, globals_, args = setup_workload(compiled.module, spec)
    system = AcceleratorSystem(
        compiled.module, memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=globals_,
        sink=sink,
        engine=engine,
        **system_kwargs,
    )
    return system.run(spec.measure_entry, args)


def assert_reports_identical(event, lockstep):
    assert event.cycles == lockstep.cycles
    assert event.return_value == lockstep.return_value
    assert event.invocations == lockstep.invocations
    assert event.worker_stats == lockstep.worker_stats
    assert event.cache_stats == lockstep.cache_stats
    assert event.fifo_stats == lockstep.fifo_stats
    assert event.stall_breakdown == lockstep.stall_breakdown


class TestPaperKernels:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_bit_identical_reports(self, name):
        event = simulate_kernel(name, "event")
        lockstep = simulate_kernel(name, "lockstep")
        assert_reports_identical(event, lockstep)

    def test_private_caches_identical(self):
        event = simulate_kernel("ks", "event", private_caches=True)
        lockstep = simulate_kernel("ks", "lockstep", private_caches=True)
        assert_reports_identical(event, lockstep)
        # The aggregated report must see the slice traffic (satellite fix:
        # it used to read only the idle shared cache).
        assert event.cache_stats.accesses > 0

    def test_traced_run_identical_spans(self):
        event_sink, lockstep_sink = MemoryTraceSink(), MemoryTraceSink()
        event = simulate_kernel("ks", "event", sink=event_sink)
        lockstep = simulate_kernel("ks", "lockstep", sink=lockstep_sink)
        assert_reports_identical(event, lockstep)
        # Span covers agree per worker, cycle for cycle...
        assert event_sink.total_cycles == lockstep_sink.total_cycles
        for worker in lockstep_sink.worker_names:
            assert event_sink.spans_for(worker) == lockstep_sink.spans_for(
                worker
            ), worker
        # ...and after the canonicalising flush, in identical global order.
        assert event_sink.spans == lockstep_sink.spans
        # Conservation still holds on the skip-ahead trace.
        assert event_sink.breakdown() == event.stall_breakdown
        for counts in event_sink.breakdown().values():
            assert sum(counts.values()) == event.cycles


FUZZ_SOURCE = """
void* malloc(int m);
unsigned out_acc;
int kernel(int* a, int* b, int n) {{
    int acc = 0;
    for (int i = 0; i < n; i++) {{
        {update}
    }}
    return acc;
}}
int run(int n) {{
    int* a = (int*)malloc(64 * sizeof(int));
    int* b = (int*)malloc(64 * sizeof(int));
    for (int k = 0; k < 64; k++) {{ a[k] = (k * 37 + 11) & 63; b[k] = 0; }}
    int r = kernel(a, b, n);
    out_acc = (unsigned)r;
    return r;
}}
"""

FUZZ_UPDATES = [
    "b[i] = a[i] * 3; acc += b[i] & 15;",
    "if (a[i] > 20) acc += a[i] - b[i]; else b[i] = acc;",
    "acc += a[i] + b[i]; b[i] = acc & 255;",
    "int t = 0; for (int j = 0; j < 3; j++) t += a[(i + j) & 31]; acc += t;",
]


class TestFuzzedPipelines:
    """Random pipelines through both engines, full-report equality."""

    @given(
        st.sampled_from(FUZZ_UPDATES),
        st.integers(min_value=0, max_value=24),
        st.sampled_from(["p1", "p2", "none"]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 16]),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_event_equals_lockstep(self, update, n, policy, workers, depth):
        source = FUZZ_SOURCE.format(update=update)
        module = compile_c(source)
        optimize_module(module)
        shapes = RegionShapes()
        for site in malloc_site_table(module):
            shapes.declare(site, Shape.LIST)
        compiled = cgpa_compile(
            module, "kernel", shapes=shapes,
            policy=ReplicationPolicy(policy), n_workers=workers,
            fifo_depth=depth,
        )
        reports = {}
        for engine in ("event", "lockstep", "specialized"):
            system = AcceleratorSystem(
                compiled.module, Memory(),
                channels=compiled.result.channels,
                engine=engine,
            )
            reports[engine] = system.run("run", [n])
        assert_reports_identical(reports["event"], reports["lockstep"])
        assert_reports_identical(reports["specialized"], reports["lockstep"])
        # And both still compute what the software interpreter computes.
        ref_module = compile_c(source)
        optimize_module(ref_module)
        expected = Interpreter(ref_module).call("run", [n])
        assert reports["event"].return_value == expected


class TestEngineBehaviour:
    def test_unknown_engine_rejected(self):
        module = compile_c("int f(void) { return 1; }")
        with pytest.raises(ValueError, match="unknown engine"):
            AcceleratorSystem(module, Memory(), engine="warp")

    def test_exact_deadlock_detection(self):
        # A consumer on a never-filled channel: the event engine reports
        # "no runnable worker and no pending event" immediately instead of
        # waiting out the lockstep engine's 16k-cycle progress poll.
        from repro.ir import (
            Consume, FunctionType, I32, IRBuilder, Module, VOID,
            ParallelFork, ParallelJoin,
        )
        from repro.ir.primitives import ChannelPlan
        from repro.pipeline.spec import StageKind
        from repro.pipeline.transform import TaskInfo

        m = Module("m")
        plan = ChannelPlan()
        chan = plan.new_channel("never", I32, 0, 1)
        task = m.new_function("task", FunctionType(VOID, []), [])
        tb = IRBuilder(task.new_block("entry"))
        tb.block.append(Consume(chan, I32))
        tb.ret()
        task.task_info = TaskInfo(0, 0, StageKind.SEQUENTIAL, 1)
        parent = m.new_function("parent", FunctionType(VOID, []), [])
        pb = IRBuilder(parent.new_block("entry"))
        pb.block.append(ParallelFork(0, task, [], None))
        pb.block.append(ParallelJoin(0))
        pb.ret()
        system = AcceleratorSystem(m, Memory(), channels=plan, engine="event")
        with pytest.raises(SimulationError, match="no pending event"):
            system.run("parent", [])

    def test_direct_worker_has_return_value(self):
        # Satellite fix: return_value is initialised in __init__, so a
        # directly-constructed worker (no system.run) can always be read.
        module = compile_c("int f(void) { return 7; }")
        system = AcceleratorSystem(module, Memory())
        worker = HwWorker("solo", module.get_function("f"), [], system)
        assert worker.return_value is None

    def test_max_cycles_guard_matches_lockstep(self):
        source = "int f(void) { int i = 0; while (1) { i++; } return i; }"
        for engine in ("event", "lockstep"):
            module = compile_c(source)
            system = AcceleratorSystem(
                module, Memory(), max_cycles=5000, engine=engine
            )
            with pytest.raises(SimulationError, match="max_cycles=5000"):
                system.run("f", [])
