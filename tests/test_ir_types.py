"""Unit tests for the IR type system and 32-bit data layout."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BOOL,
    F32,
    F64,
    I8,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    ptr,
)


class TestScalarTypes:
    def test_int_sizes(self):
        assert I8.size() == 1
        assert I32.size() == 4
        assert I64.size() == 8
        assert BOOL.size() == 1

    def test_float_sizes(self):
        assert F32.size() == 4
        assert F64.size() == 8

    def test_pointer_is_four_bytes_on_32bit_target(self):
        assert ptr(F64).size() == 4
        assert ptr(ptr(I32)).size() == 4

    def test_structural_equality(self):
        assert IntType(32) == I32
        assert FloatType(64) == F64
        assert ptr(I32) == PointerType(IntType(32))
        assert ptr(I32) != ptr(I64)
        assert I32 != F32

    def test_invalid_widths_rejected(self):
        with pytest.raises(IRError):
            IntType(7)
        with pytest.raises(IRError):
            FloatType(16)

    def test_void_has_no_size(self):
        with pytest.raises(IRError):
            VOID.size()

    def test_predicates(self):
        assert I32.is_integer and not I32.is_float
        assert F32.is_float and not F32.is_integer
        assert ptr(I32).is_pointer
        assert VOID.is_void


class TestArrayTypes:
    def test_array_size(self):
        assert ArrayType(I32, 10).size() == 40
        assert ArrayType(F64, 3).size() == 24

    def test_array_alignment_follows_element(self):
        assert ArrayType(F64, 2).alignment() == 8
        assert ArrayType(I8, 5).alignment() == 1

    def test_nested_array(self):
        inner = ArrayType(I32, 4)
        outer = ArrayType(inner, 3)
        assert outer.size() == 48

    def test_negative_length_rejected(self):
        with pytest.raises(IRError):
            ArrayType(I32, -1)


class TestStructTypes:
    def test_c_layout_with_padding(self):
        # struct { int a; double b; int c; } on a 32-bit target with
        # natural alignment: a@0, pad to 8, b@8, c@16, pad to 24.
        s = StructType("s", [("a", I32), ("b", F64), ("c", I32)])
        assert s.field_offset(0) == 0
        assert s.field_offset(1) == 8
        assert s.field_offset(2) == 16
        assert s.size() == 24
        assert s.alignment() == 8

    def test_packed_when_no_padding_needed(self):
        s = StructType("p", [("a", I32), ("b", I32)])
        assert s.size() == 8

    def test_em3d_node_layout(self):
        # The em3d node: value, from_count, from_nodes, coeffs, next.
        node = StructType("node_t")
        node.set_fields([
            ("value", F64),
            ("from_count", I32),
            ("from_nodes", ptr(ptr(node))),
            ("coeffs", ptr(F64)),
            ("next", ptr(node)),
        ])
        assert node.field_offset(node.field_index("value")) == 0
        assert node.field_offset(node.field_index("from_count")) == 8
        assert node.field_offset(node.field_index("from_nodes")) == 12
        assert node.field_offset(node.field_index("next")) == 20
        assert node.size() == 24

    def test_field_index_errors(self):
        s = StructType("s2", [("x", I32)])
        with pytest.raises(IRError):
            s.field_index("missing")

    def test_nominal_equality(self):
        a = StructType("same", [("x", I32)])
        b = StructType("same", [("y", F64)])
        assert a == b  # nominal typing, like C tags

    def test_opaque_struct_rejects_layout_queries(self):
        s = StructType("fwd")
        assert s.is_opaque
        with pytest.raises(IRError):
            s.size()

    def test_double_definition_rejected(self):
        s = StructType("once", [("x", I32)])
        with pytest.raises(IRError):
            s.set_fields([("y", I32)])


class TestFunctionTypes:
    def test_equality(self):
        assert FunctionType(I32, [I32]) == FunctionType(I32, [I32])
        assert FunctionType(I32, [I32]) != FunctionType(I32, [I64])
        assert FunctionType(VOID, []) != FunctionType(I32, [])

    def test_repr_is_readable(self):
        assert "i32" in repr(FunctionType(I32, [F64]))
