"""Tests for the IR printer (determinism, coverage) and verifier (negatives)."""

import pytest

from repro.errors import IRError
from repro.frontend import compile_c
from repro.ir import (
    BOOL,
    BasicBlock,
    BinaryOp,
    Channel,
    CondBranch,
    Constant,
    Consume,
    FunctionType,
    I32,
    IRBuilder,
    Jump,
    Module,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    StoreLiveout,
    VOID,
    print_function,
    print_instruction,
    print_module,
    verify_function,
    verify_module,
)
from repro.transforms import optimize_module


class TestPrinter:
    def test_deterministic(self):
        module = compile_c("int f(int a) { return a * 2 + 1; }")
        assert print_module(module) == print_module(module)

    def test_covers_all_kernel_instructions(self):
        from repro.kernels import ALL_KERNELS
        for spec in ALL_KERNELS:
            module = compile_c(spec.source, spec.name)
            optimize_module(module)
            text = print_module(module)
            assert "<unprintable>" not in text

    def test_primitives_printed(self):
        chan = Channel(3, "vals", I32, 0, 1, n_channels=4)
        c0 = Constant(I32, 0)
        assert "produce buf3" in print_instruction(Produce(chan, c0, c0))
        assert "produce_broadcast buf3" in print_instruction(
            ProduceBroadcast(chan, c0)
        )
        assert "consume" in print_instruction(Consume(chan, I32))
        assert "buf3[" in print_instruction(Consume(chan, I32, c0))
        assert "store_liveout #2" in print_instruction(StoreLiveout(2, c0))
        assert "retrieve_liveout" in print_instruction(RetrieveLiveout(2, I32))
        assert "parallel_join loop7" in print_instruction(ParallelJoin(7))

    def test_fork_shows_task_and_worker(self):
        m = Module("m")
        task = m.new_function("mytask", FunctionType(VOID, []), [])
        fork = ParallelFork(0, task, [], 2)
        text = print_instruction(fork)
        assert "@mytask" in text and "worker=2" in text

    def test_struct_and_global_headers(self):
        module = compile_c(
            "typedef struct pt { double x; int k; } pt_t;\n"
            "int counter = 5;\n"
            "int f(pt_t* p) { return p->k + counter; }"
        )
        text = print_module(module)
        assert "%pt = type {" in text
        assert "@counter = global" in text


class TestVerifierNegatives:
    def _fn(self):
        m = Module("m")
        f = m.new_function("f", FunctionType(I32, [I32]), ["x"])
        return m, f

    def test_unterminated_block(self):
        m, f = self._fn()
        bb = f.new_block("entry")
        bb.append(BinaryOp("add", f.args[0], Constant(I32, 1)))
        with pytest.raises(IRError, match="not terminated"):
            verify_function(f)

    def test_phi_after_non_phi(self):
        m, f = self._fn()
        entry = f.new_block("entry")
        b = IRBuilder(entry)
        add = b.add(f.args[0], b.const_int(1))
        phi = Phi(I32)
        entry.instructions.append(phi)  # illegally after the add
        phi.parent = entry
        entry.append(Ret(add))
        with pytest.raises(IRError, match="phi after non-phi"):
            verify_function(f)

    def test_branch_to_foreign_block(self):
        m, f = self._fn()
        entry = f.new_block("entry")
        foreign = BasicBlock("elsewhere")
        entry.append(Jump(foreign))
        with pytest.raises(IRError, match="outside the function"):
            verify_function(f)

    def test_phi_pred_mismatch(self):
        m, f = self._fn()
        entry = f.new_block("entry")
        other = f.new_block("other")
        merge = f.new_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("sgt", f.args[0], b.const_int(0))
        b.cond_branch(cond, other, merge)
        b.set_block(other)
        b.jump(merge)
        phi = Phi(I32)
        merge.insert(0, phi)
        phi.add_incoming(Constant(I32, 1), entry)  # missing arm from other
        b.set_block(merge)
        b.ret(phi)
        with pytest.raises(IRError, match="predecessors"):
            verify_function(f)

    def test_use_list_corruption_detected(self):
        m, f = self._fn()
        entry = f.new_block("entry")
        b = IRBuilder(entry)
        add = b.add(f.args[0], b.const_int(1))
        mul = b.mul(add, b.const_int(2))
        b.ret(mul)
        # Corrupt: remove mul from add's users behind the API's back.
        add._users.remove(mul)
        with pytest.raises(IRError, match="use-list"):
            verify_function(f)

    def test_cross_function_use_detected(self):
        m = Module("m")
        f1 = m.new_function("f1", FunctionType(I32, [I32]), ["x"])
        b1 = IRBuilder(f1.new_block("entry"))
        add = b1.add(f1.args[0], b1.const_int(1))
        b1.ret(add)
        f2 = m.new_function("f2", FunctionType(I32, []), [])
        b2 = IRBuilder(f2.new_block("entry"))
        b2.ret(add)  # uses f1's instruction
        with pytest.raises(IRError, match="another function"):
            verify_function(f2)

    def test_terminator_in_middle(self):
        m, f = self._fn()
        entry = f.new_block("entry")
        entry.instructions.append(Ret(Constant(I32, 0)))
        entry.instructions[-1].parent = entry
        entry.instructions.append(Ret(Constant(I32, 1)))
        entry.instructions[-1].parent = entry
        with pytest.raises(IRError, match="middle"):
            verify_function(f)

    def test_whole_module_verification(self):
        from repro.kernels import ALL_KERNELS
        for spec in ALL_KERNELS:
            module = compile_c(spec.source, spec.name)
            verify_module(module)
            optimize_module(module)
            verify_module(module)
