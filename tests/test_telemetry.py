"""Tests for the telemetry subsystem: tracing, exporters, analysis.

The load-bearing property is *cycle conservation*: for every worker, the
per-category stall counts must sum exactly to the run's total cycles —
both in the simulator's own counters (always on) and in a recorded trace
(spans cover every cycle exactly once).
"""

import io
import json

import pytest

from repro.errors import SimulationError
from repro.hw import AcceleratorSystem, FifoBuffer
from repro.interp import Memory
from repro.ir import (
    Consume,
    F64,
    FunctionType,
    I32,
    IRBuilder,
    Module,
    ParallelFork,
    ParallelJoin,
    Produce,
    VOID,
)
from repro.ir.instructions import BinaryOp
from repro.ir.primitives import ChannelPlan
from repro.ir.values import Constant
from repro.pipeline.spec import StageKind
from repro.pipeline.transform import TaskInfo
from repro.telemetry import (
    ALL_CATEGORIES,
    CycleCategory,
    MemoryTraceSink,
    NULL_SINK,
    analyze,
    analyze_trace,
    breakdown_from_trace,
    to_chrome_trace,
    write_vcd,
)


def build_two_stage(depth: int = 4, n_values: int = 12, slow_consumer=False,
                    slow_producer=False):
    """Hand-built 2-stage pipeline: producer pushes N ints, consumer pops.

    With ``slow_consumer`` the consumer burns a dependent op chain between
    pops, so a shallow FIFO backs up and the producer blocks on full;
    ``slow_producer`` is the mirror image (the consumer starves on empty).
    """
    module = Module("pipe")
    plan = ChannelPlan()
    chan = plan.new_channel("vals", I32, 0, 1, depth=depth)

    producer = module.new_function("producer", FunctionType(VOID, []), [])
    pb = IRBuilder(producer.new_block("entry"))
    sel = Constant(I32, 0)
    for i in range(n_values):
        pb.block.append(Produce(chan, sel, Constant(I32, i)))
        if slow_producer:
            for _ in range(3):  # dependent chain delaying the next push
                mul = BinaryOp("mul", sel, Constant(I32, 1))
                pb.block.append(mul)
                sel = mul
    pb.ret()
    producer.task_info = TaskInfo(0, 0, StageKind.SEQUENTIAL, 1)

    consumer = module.new_function("consumer", FunctionType(VOID, []), [])
    cb = IRBuilder(consumer.new_block("entry"))
    # A dependent op chain feeding the next consume's worker_select (any
    # int selects queue 0 of a 1-queue buffer) serialises the pops so the
    # consumer genuinely lags the producer when slow_consumer is set.
    acc = Constant(I32, 1)
    for _ in range(n_values):
        pop = Consume(chan, I32, worker_select=acc if slow_consumer else None)
        cb.block.append(pop)
        if slow_consumer:
            for _ in range(3):
                mul = BinaryOp("mul", acc, pop)
                cb.block.append(mul)
                acc = mul
    cb.ret()
    consumer.task_info = TaskInfo(0, 1, StageKind.SEQUENTIAL, 1)

    parent = module.new_function("parent", FunctionType(VOID, []), [])
    xb = IRBuilder(parent.new_block("entry"))
    xb.block.append(ParallelFork(0, producer, [], None))
    xb.block.append(ParallelFork(0, consumer, [], None))
    xb.block.append(ParallelJoin(0))
    xb.ret()
    return module, plan


def run_two_stage(depth: int = 4, n_values: int = 12, sink=None,
                  slow_consumer=False, slow_producer=False):
    module, plan = build_two_stage(depth, n_values, slow_consumer,
                                   slow_producer)
    system = AcceleratorSystem(module, Memory(), channels=plan, sink=sink)
    return system.run("parent", [])


class TestCycleConservation:
    def test_counters_partition_total_cycles(self):
        report = run_two_stage()
        assert len(report.worker_stats) == 3  # parent + producer + consumer
        for name, counts in report.stall_breakdown.items():
            assert sum(counts.values()) == report.cycles, name
            assert set(counts) == {c.value for c in ALL_CATEGORIES}

    def test_trace_spans_cover_every_cycle(self):
        sink = MemoryTraceSink()
        report = run_two_stage(sink=sink)
        assert sink.total_cycles == report.cycles
        for breakdown in breakdown_from_trace(sink):
            assert breakdown.total == report.cycles, breakdown.worker
        # Trace-side and counter-side attributions must agree exactly.
        assert sink.breakdown() == report.stall_breakdown

    def test_spans_are_disjoint_and_ordered(self):
        sink = MemoryTraceSink()
        run_two_stage(sink=sink)
        for name in sink.worker_names:
            spans = sorted(sink.spans_for(name), key=lambda s: s.start)
            assert spans[0].start == 0
            for before, after in zip(spans, spans[1:]):
                assert before.end == after.start  # no gap, no overlap

    def test_stalls_show_up_under_pressure(self):
        # Depth-1 FIFO behind a slow consumer: the producer must block on
        # a full queue.  Mirror setup: a slow producer starves the consumer.
        backed_up = run_two_stage(depth=1, n_values=16, slow_consumer=True)
        producer = backed_up.worker_stats["producer#w0"]
        assert producer.fifo_full_stall_cycles > 0
        assert producer.fifo_stall_cycles == (
            producer.fifo_full_stall_cycles + producer.fifo_empty_stall_cycles
        )
        starved = run_two_stage(depth=1, n_values=16, slow_producer=True)
        consumer = starved.worker_stats["consumer#w0"]
        assert consumer.fifo_empty_stall_cycles > 0

    def test_null_sink_is_default_and_disabled(self):
        module, plan = build_two_stage()
        system = AcceleratorSystem(module, Memory(), channels=plan)
        assert system.sink is NULL_SINK
        assert not system.sink.enabled
        report = system.run("parent", [])
        for counts in report.stall_breakdown.values():
            assert sum(counts.values()) == report.cycles


class TestChromeTrace:
    def test_schema(self):
        sink = MemoryTraceSink()
        report = run_two_stage(depth=1, n_values=16, sink=sink)
        doc = to_chrome_trace(sink)
        # Round-trips through JSON (chrome://tracing input format).
        doc = json.loads(json.dumps(doc))
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        phases = set()
        for event in doc["traceEvents"]:
            assert isinstance(event["name"], str)
            assert event["ph"] in ("M", "X", "C", "i")
            assert isinstance(event["pid"], int)
            phases.add(event["ph"])
            if event["ph"] != "M":
                assert isinstance(event["ts"], int) and event["ts"] >= 0
            if event["ph"] == "X":
                assert isinstance(event["dur"], int) and event["dur"] > 0
            if event["ph"] == "C":
                assert all(
                    isinstance(v, int) for v in event["args"].values()
                )
        assert {"M", "X", "C"} <= phases
        assert doc["otherData"]["total_cycles"] == report.cycles

    def test_worker_tracks_cover_run(self):
        sink = MemoryTraceSink()
        report = run_two_stage(sink=sink)
        doc = to_chrome_trace(sink)
        worker_pid = 1
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == worker_pid
        }
        assert set(names) == set(report.worker_stats)
        for name, tid in names.items():
            covered = sum(
                e["dur"] for e in doc["traceEvents"]
                if e["ph"] == "X" and e["pid"] == worker_pid
                and e["tid"] == tid
            )
            assert covered == report.cycles, name


class TestVcd:
    def test_well_formed(self):
        sink = MemoryTraceSink()
        report = run_two_stage(depth=1, n_values=16, sink=sink)
        buf = io.StringIO()
        write_vcd(sink, buf)
        text = buf.getvalue()
        assert "$timescale" in text and "$enddefinitions $end" in text

        header, _, body = text.partition("$enddefinitions $end")
        widths: dict[str, int] = {}
        for line in header.splitlines():
            if line.startswith("$var"):
                _, _, width, ident, _name, _end = line.split()
                widths[ident] = int(width)
        assert widths  # at least the category signals exist

        last_time = -1
        for line in body.splitlines():
            line = line.strip()
            if not line or line in ("$dumpvars", "$end"):
                continue
            if line.startswith("#"):
                time = int(line[1:])
                assert time > last_time  # strictly increasing timestamps
                last_time = time
                assert time <= report.cycles
                continue
            assert line.startswith("b"), line
            bits, ident = line[1:].split()
            assert ident in widths, line
            assert bits == "x" or set(bits) <= {"0", "1"}, line
            if bits != "x":
                assert len(bits) == widths[ident]

    def test_category_and_occupancy_signals_present(self):
        sink = MemoryTraceSink()
        run_two_stage(depth=1, n_values=16, sink=sink)
        buf = io.StringIO()
        write_vcd(sink, buf)
        text = buf.getvalue()
        assert "producer_w0_cat" in text
        assert "buf0:vals" in text.replace("buf0_vals", "buf0:vals")
        assert "_occ" in text
        assert "category encoding" in text


class TestBottleneckAnalysis:
    def test_critical_stage_and_recommendations(self):
        sink = MemoryTraceSink()
        report = run_two_stage(depth=1, n_values=64, sink=sink,
                               slow_consumer=True)
        analysis = analyze(report, sink)
        assert analysis.total_cycles == report.cycles
        assert analysis.critical_worker in report.worker_stats
        # The depth-1 FIFO saturates; the analyzer must say so.
        assert any("deepen" in r or "replicate" in r
                   for r in analysis.recommendations)
        saturated = [f for f in analysis.fifos if f.saturated]
        assert saturated and saturated[0].depth == 1
        text = analysis.format()
        assert analysis.critical_worker in text
        assert "Recommendations" in text

    def test_analyze_trace_matches_report(self):
        sink = MemoryTraceSink()
        report = run_two_stage(sink=sink)
        from_trace = analyze_trace(sink)
        from_report = analyze(report)
        assert from_trace.total_cycles == from_report.total_cycles
        by_name = {w.worker: w for w in from_trace.workers}
        for worker in from_report.workers:
            assert by_name[worker.worker].cycles == worker.cycles

    def test_balanced_pipeline_reports_balance(self):
        from repro.telemetry.bottleneck import BottleneckReport, WorkerBreakdown
        breakdown = WorkerBreakdown(
            "w", {c.value: 0 for c in ALL_CATEGORIES} | {"compute": 100}
        )
        report = BottleneckReport(total_cycles=100, workers=[breakdown])
        from repro.telemetry.bottleneck import _recommend
        recs = _recommend(report)
        assert any("balanced" in r for r in recs)


class TestFifoProtocolGuards:
    def test_push_to_full_raises(self):
        plan = ChannelPlan()
        chan = plan.new_channel("c", I32, 0, 1, depth=2)
        fifo = FifoBuffer(chan)
        fifo.push(0, 1)
        fifo.push(0, 2)
        with pytest.raises(SimulationError, match="full"):
            fifo.push(0, 3)

    def test_pop_from_empty_raises(self):
        plan = ChannelPlan()
        chan = plan.new_channel("c", I32, 0, 1)
        fifo = FifoBuffer(chan)
        with pytest.raises(SimulationError, match="empty"):
            fifo.pop(0)

    def test_broadcast_to_full_raises(self):
        plan = ChannelPlan()
        chan = plan.new_channel("c", I32, 0, 1, n_channels=2, depth=1)
        fifo = FifoBuffer(chan)
        fifo.push_broadcast(7)
        with pytest.raises(SimulationError, match="full"):
            fifo.push_broadcast(8)


class TestHarnessIntegration:
    def test_trace_cli_writes_artifacts(self, tmp_path, capsys):
        from repro.harness.__main__ import main
        rc = main(["trace", "ks", "--out", str(tmp_path),
                   "--store", str(tmp_path / "store")])
        assert rc == 0
        trace_path = tmp_path / "ks_cgpa-p1.trace.json"
        vcd_path = tmp_path / "ks_cgpa-p1.vcd"
        analysis_path = tmp_path / "ks_cgpa-p1.bottleneck.txt"
        assert trace_path.exists() and vcd_path.exists()
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        assert "Critical stage" in analysis_path.read_text()
        out = capsys.readouterr().out
        assert "Per-worker stall breakdown" in out

    def test_run_backend_accepts_sink(self):
        from repro.harness import run_backend
        from repro.kernels import KS
        sink = MemoryTraceSink()
        result = run_backend(KS, "cgpa-p1", sink=sink)
        assert result.sim is not None
        assert sink.total_cycles == result.sim.cycles
        for name, counts in result.sim.stall_breakdown.items():
            assert sum(counts.values()) == result.sim.cycles, name

    def test_format_stall_breakdown(self):
        from repro.harness import format_stall_breakdown
        report = run_two_stage()
        text = format_stall_breakdown(report, kernel="pipe")
        assert "producer#w0" in text and "consumer#w0" in text
        for category in ALL_CATEGORIES:
            assert category.value in text
