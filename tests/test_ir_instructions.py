"""Unit tests for IR instruction construction, use lists, and cloning."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BOOL,
    F64,
    I32,
    Alloca,
    BasicBlock,
    BinaryOp,
    Cast,
    Channel,
    CondBranch,
    Constant,
    Consume,
    GEP,
    ICmp,
    Jump,
    Load,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    Select,
    Store,
    StoreLiveout,
    StructType,
    ptr,
)


def c(v, t=I32):
    return Constant(t, v)


class TestConstruction:
    def test_binop_result_type(self):
        add = BinaryOp("add", c(1), c(2))
        assert add.type == I32
        fmul = BinaryOp("fmul", c(1.0, F64), c(2.0, F64))
        assert fmul.type == F64

    def test_binop_type_mismatch_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("add", c(1), c(1.0, F64))
        with pytest.raises(IRError):
            BinaryOp("fadd", c(1), c(2))
        with pytest.raises(IRError):
            BinaryOp("mul", c(1.0, F64), c(2.0, F64))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("frob", c(1), c(2))

    def test_icmp_produces_bool(self):
        cmp = ICmp("slt", c(1), c(2))
        assert cmp.type == BOOL

    def test_icmp_bad_predicate(self):
        with pytest.raises(IRError):
            ICmp("weird", c(1), c(2))

    def test_load_store_typing(self):
        slot = Alloca(I32)
        load = Load(slot)
        assert load.type == I32
        Store(c(5), slot)  # ok
        with pytest.raises(IRError):
            Store(c(5.0, F64), slot)
        with pytest.raises(IRError):
            Load(c(5))  # not a pointer

    def test_gep_through_struct(self):
        s = StructType("pair", [("a", I32), ("b", F64)])
        base = Alloca(s)
        g = GEP(base, [c(0), c(1)])
        assert g.type == ptr(F64)

    def test_gep_struct_index_must_be_constant(self):
        s = StructType("pair2", [("a", I32)])
        base = Alloca(s)
        dynamic = BinaryOp("add", c(0), c(0))
        with pytest.raises(IRError):
            GEP(base, [c(0), dynamic])

    def test_branch_condition_must_be_bool(self):
        bb1, bb2 = BasicBlock("a"), BasicBlock("b")
        CondBranch(ICmp("eq", c(0), c(0)), bb1, bb2)  # ok
        with pytest.raises(IRError):
            CondBranch(c(1), bb1, bb2)

    def test_select_arms_must_match(self):
        cond = ICmp("eq", c(0), c(0))
        Select(cond, c(1), c(2))  # ok
        with pytest.raises(IRError):
            Select(cond, c(1), c(2.0, F64))


class TestUseLists:
    def test_users_tracked(self):
        a = BinaryOp("add", c(1), c(2))
        b = BinaryOp("mul", a, a)
        assert b in a.users
        assert len([u for u in a.users if u is b]) == 1

    def test_replace_all_uses_with(self):
        a = BinaryOp("add", c(1), c(2))
        b = BinaryOp("mul", a, a)
        z = BinaryOp("sub", c(3), c(4))
        a.replace_all_uses_with(z)
        assert b.operands[0] is z and b.operands[1] is z
        assert b in z.users
        assert b not in a.users

    def test_replace_operand_keeps_other_uses(self):
        a = BinaryOp("add", c(1), c(2))
        b = BinaryOp("sub", c(1), c(2))
        m = BinaryOp("mul", a, b)
        m.replace_operand(a, b)
        assert m.operands == [b, b]
        assert m not in a.users

    def test_drop_operands_detaches(self):
        a = BinaryOp("add", c(1), c(2))
        b = BinaryOp("mul", a, a)
        b.drop_operands()
        assert b not in a.users
        assert b.operands == []

    def test_erase_refuses_when_still_used(self):
        bb = BasicBlock("bb")
        a = bb.append(BinaryOp("add", c(1), c(2)))
        bb.append(BinaryOp("mul", a, a))
        with pytest.raises(IRError):
            a.erase()


class TestClassification:
    def test_side_effects(self):
        slot = Alloca(I32)
        assert Store(c(1), slot).has_side_effects
        assert not Load(slot).has_side_effects
        assert not BinaryOp("add", c(1), c(2)).has_side_effects
        assert Ret(None).has_side_effects

    def test_heavyweight_ops_match_paper_heuristic(self):
        # Section 3.3: replicable sections containing load or multiply
        # instructions are not duplicated.
        slot = Alloca(I32)
        assert Load(slot).is_heavyweight
        assert BinaryOp("mul", c(1), c(2)).is_heavyweight
        assert BinaryOp("fmul", c(1.0, F64), c(1.0, F64)).is_heavyweight
        assert not BinaryOp("add", c(1), c(2)).is_heavyweight
        assert not ICmp("eq", c(1), c(2)).is_heavyweight

    def test_primitives_have_side_effects(self):
        chan = Channel(0, "t", I32, 0, 1)
        assert Produce(chan, c(0), c(1)).has_side_effects
        assert ProduceBroadcast(chan, c(1)).has_side_effects
        assert Consume(chan, I32).has_side_effects
        assert StoreLiveout(0, c(1)).has_side_effects

    def test_primitive_constraint_classes(self):
        chan = Channel(0, "t", I32, 0, 1)
        assert Produce(chan, c(0), c(1)).constraint_class == 2
        assert Consume(chan, I32).constraint_class == 2
        assert StoreLiveout(0, c(1)).constraint_class == 3


class TestCloning:
    def test_clone_remaps_operands(self):
        a = BinaryOp("add", c(1), c(2))
        b = BinaryOp("mul", a, c(3))
        a2 = BinaryOp("add", c(10), c(20))
        b2 = b.clone({a: a2})
        assert b2.operands[0] is a2
        assert b2.opcode == "mul"
        assert b2 is not b

    def test_clone_phi_remaps_blocks(self):
        bb1, bb2 = BasicBlock("x"), BasicBlock("y")
        phi = Phi(I32)
        phi.add_incoming(c(1), bb1)
        phi.add_incoming(c(2), bb2)
        nb1, nb2 = BasicBlock("nx"), BasicBlock("ny")
        phi2 = phi.clone({bb1: nb1, bb2: nb2})
        assert phi2.incoming_blocks == [nb1, nb2]

    def test_clone_preserves_channel(self):
        chan = Channel(3, "vals", I32, 0, 1, n_channels=4)
        cons = Consume(chan, I32)
        cons2 = cons.clone({})
        assert cons2.channel is chan

    def test_clone_cast_keeps_target_type(self):
        cst = Cast("sext", c(1, BOOL), I32)
        cst2 = cst.clone({})
        assert cst2.type == I32 and cst2.opcode == "sext"


class TestPhi:
    def test_incoming_management(self):
        bb1, bb2 = BasicBlock("p1"), BasicBlock("p2")
        phi = Phi(I32)
        phi.add_incoming(c(1), bb1)
        phi.add_incoming(c(2), bb2)
        assert phi.incoming_for(bb1).value == 1
        phi.remove_incoming(bb1)
        assert len(phi.operands) == 1
        with pytest.raises(IRError):
            phi.incoming_for(bb1)

    def test_incoming_type_checked(self):
        phi = Phi(I32)
        with pytest.raises(IRError):
            phi.add_incoming(c(1.0, F64), BasicBlock("p"))
