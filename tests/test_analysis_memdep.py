"""Unit tests for the loop-carried memory dependence analysis."""

import pytest

from repro.analysis import (
    LoopInfo,
    LoopMemoryModel,
    PointsTo,
    RegionShapes,
    Shape,
    basic_induction_variables,
    traversal_phis,
)
from repro.frontend import compile_c
from repro.interp import malloc_site_table
from repro.ir import Load, Store
from repro.transforms import optimize_module


def build_model(source, kernel="kernel", shapes="list"):
    module = compile_c(source)
    optimize_module(module)
    fn = module.get_function(kernel)
    loop = LoopInfo(fn).top_level()[0]
    pt = PointsTo(module)
    region_shapes = RegionShapes()
    if shapes == "list":
        for site in malloc_site_table(module):
            region_shapes.declare(site, Shape.LIST)
    return module, fn, loop, LoopMemoryModel(loop, pt, region_shapes)


LIST_SOURCE = """
typedef struct n { double v; struct n* next; } n_t;
void* malloc(int m);
void kernel(n_t* p) {
    for ( ; p; p = p->next) {
        double x = p->v;
        p->v = x * 2.0;
    }
}
void driver(void) {
    n_t* head = 0;
    for (int i = 0; i < 4; i++) {
        n_t* f = (n_t*)malloc(sizeof(n_t));
        f->v = i; f->next = head; head = f;
    }
    kernel(head);
}
"""


class TestIVandTraversalDetection:
    def test_basic_iv_detected(self):
        src = """
        void* malloc(int m);
        void kernel(int* a, int n) { for (int i = 0; i < n; i += 2) a[i] = i; }
        void driver(void) { kernel((int*)malloc(64), 8); }
        """
        module, fn, loop, model = build_model(src)
        ivs = basic_induction_variables(loop)
        assert len(ivs) == 1
        assert next(iter(ivs.values())).step == 2

    def test_down_counting_iv(self):
        src = """
        void* malloc(int m);
        void kernel(int* a, int n) { for (int i = n; i > 0; i--) a[i] = i; }
        void driver(void) { kernel((int*)malloc(64), 8); }
        """
        module, fn, loop, model = build_model(src)
        ivs = basic_induction_variables(loop)
        assert next(iter(ivs.values())).step == -1

    def test_traversal_phi_detected(self):
        module, fn, loop, model = build_model(LIST_SOURCE)
        travs = traversal_phis(loop, model.pointsto, model.shapes)
        assert len(travs) == 1
        assert next(iter(travs.values())).acyclic

    def test_traversal_not_acyclic_without_shape_facts(self):
        module, fn, loop, model = build_model(LIST_SOURCE, shapes="none")
        travs = traversal_phis(loop, model.pointsto, model.shapes)
        assert len(travs) == 1
        assert not next(iter(travs.values())).acyclic


class TestTraversalVerdicts:
    def test_same_field_intra_only_on_acyclic_list(self):
        module, fn, loop, model = build_model(LIST_SOURCE)
        load = next(i for i in loop.instructions()
                    if isinstance(i, Load) and i.type.is_float)
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        verdict = model.dependence(load, store)
        assert verdict.intra and not verdict.carried

    def test_same_field_carried_on_cyclic_region(self):
        module, fn, loop, model = build_model(LIST_SOURCE, shapes="none")
        load = next(i for i in loop.instructions()
                    if isinstance(i, Load) and i.type.is_float)
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        verdict = model.dependence(load, store)
        assert verdict.carried

    def test_disjoint_fields_no_dep(self):
        src = """
        typedef struct n { double v; int tag; struct n* next; } n_t;
        void* malloc(int m);
        void kernel(n_t* p) {
            for ( ; p; p = p->next) {
                int t = p->tag;      /* offset 8 */
                p->v = 1.0 + t;      /* offset 0 */
            }
        }
        void driver(void) {
            n_t* f = (n_t*)malloc(sizeof(n_t)); f->next = 0; kernel(f);
        }
        """
        module, fn, loop, model = build_model(src)
        load = next(i for i in loop.instructions()
                    if isinstance(i, Load) and i.type.is_integer)
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        verdict = model.dependence(load, store)
        assert not verdict.any


class TestAffineVerdicts:
    def _loop(self, body):
        src = f"""
        void* malloc(int m);
        void kernel(int* a, int* b, int n) {{
            for (int i = 1; i < n; i++) {{ {body} }}
        }}
        void driver(void) {{ kernel((int*)malloc(256), (int*)malloc(256), 8); }}
        """
        return build_model(src)

    def test_same_index_intra_only(self):
        module, fn, loop, model = self._loop("a[i] = a[i] + 1;")
        load = next(i for i in loop.instructions() if isinstance(i, Load))
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        verdict = model.dependence(load, store)
        assert verdict.intra and not verdict.carried

    def test_shifted_index_carried(self):
        module, fn, loop, model = self._loop("a[i] = a[i - 1] * 2;")
        load = next(i for i in loop.instructions() if isinstance(i, Load))
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        verdict = model.dependence(load, store)
        assert verdict.carried

    def test_disjoint_arrays_no_dep(self):
        module, fn, loop, model = self._loop("a[i] = b[i] * 2;")
        load = next(i for i in loop.instructions() if isinstance(i, Load))
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        assert not model.dependence(load, store).any

    def test_data_dependent_index_conservative(self):
        module, fn, loop, model = self._loop("a[b[i] & 7] += 1;")
        stores = [i for i in loop.instructions() if isinstance(i, Store)]
        verdict = model.dependence(stores[0], stores[0])
        assert verdict.carried  # histogram self-dependence

    def test_store_self_dependence_affine_none(self):
        module, fn, loop, model = self._loop("a[i] = i;")
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        verdict = model.dependence(store, store)
        assert not verdict.carried


class TestInvariantVerdicts:
    def test_accumulator_in_memory_fully_dependent(self):
        src = """
        void* malloc(int m);
        void kernel(int* acc, int n) {
            for (int i = 0; i < n; i++) *acc += i;
        }
        void driver(void) { kernel((int*)malloc(4), 8); }
        """
        module, fn, loop, model = build_model(src)
        load = next(i for i in loop.instructions() if isinstance(i, Load))
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        verdict = model.dependence(load, store)
        assert verdict.intra and verdict.carried

    def test_loads_never_conflict(self):
        src = """
        void* malloc(int m);
        int kernel(int* a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i] + a[0];
            return s;
        }
        void driver(void) { kernel((int*)malloc(64), 8); }
        """
        module, fn, loop, model = build_model(src)
        loads = [i for i in loop.instructions() if isinstance(i, Load)]
        assert len(loads) == 2
        assert not model.dependence(loads[0], loads[1]).any
