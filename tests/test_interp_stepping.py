"""Tests for the interpreter's manual stepping interface (cosim substrate)."""

import pytest

from repro.errors import InterpError
from repro.frontend import compile_c
from repro.interp import ChannelIO, Interpreter, Memory, Status
from repro.ir import Channel, Consume, FunctionType, I32, IRBuilder, Module
from repro.transforms import optimize_module


class TestStepping:
    def test_step_until_done(self):
        module = compile_c("int f(int a) { return a * 2 + 1; }")
        optimize_module(module)
        interp = Interpreter(module)
        interp.start("f", [20])
        steps = 0
        while not interp.done:
            status = interp.step()
            steps += 1
            assert status in (Status.RUNNING, Status.DONE)
        assert interp.return_value == 41
        assert steps >= 2

    def test_step_after_done_returns_done(self):
        module = compile_c("int f(void) { return 1; }")
        interp = Interpreter(module)
        interp.start("f", [])
        while interp.step() is not Status.DONE:
            pass
        assert interp.step() is Status.DONE

    def test_cannot_start_twice(self):
        module = compile_c("int f(void) { return 1; }")
        interp = Interpreter(module)
        interp.start("f", [])
        with pytest.raises(InterpError, match="already running"):
            interp.start("f", [])

    def test_blocked_consume_does_not_advance(self):
        m = Module("m")
        chan = Channel(0, "c", I32, 0, 1)
        f = m.new_function("f", FunctionType(I32, []), [])
        b = IRBuilder(f.new_block("entry"))
        got = b.block.append(Consume(chan, I32))
        b.ret(got)
        io = ChannelIO()
        interp = Interpreter(m, Memory(), channel_io=io)
        interp.start("f", [])
        assert interp.step() is Status.BLOCKED
        assert interp.step() is Status.BLOCKED  # still parked on the consume
        io.produce(chan, 0, 77)
        status = interp.step()
        while status is Status.RUNNING:
            status = interp.step()
        assert interp.return_value == 77

    def test_blocked_call_via_call_api_raises(self):
        m = Module("m")
        chan = Channel(0, "c", I32, 0, 1)
        f = m.new_function("f", FunctionType(I32, []), [])
        b = IRBuilder(f.new_block("entry"))
        got = b.block.append(Consume(chan, I32))
        b.ret(got)
        interp = Interpreter(m, Memory(), channel_io=ChannelIO())
        with pytest.raises(InterpError, match="blocked"):
            interp.call("f", [])

    def test_steps_counter(self):
        module = compile_c(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        optimize_module(module)
        interp = Interpreter(module)
        interp.call("f", [10])
        assert interp.steps > 30  # roughly 5+ ops per iteration
