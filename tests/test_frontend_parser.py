"""Unit tests for the C-subset parser (AST shape checks)."""

import pytest

from repro.errors import ParseError
from repro.frontend import parse
from repro.frontend import ast_nodes as ast


class TestTopLevel:
    def test_function_with_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        (fn,) = unit.decls
        assert isinstance(fn, ast.FunctionDecl)
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]
        assert isinstance(fn.body.body[0], ast.ReturnStmt)

    def test_prototype(self):
        unit = parse("void* malloc(int n);")
        (fn,) = unit.decls
        assert fn.body is None
        assert fn.return_type.pointer_depth == 1

    def test_void_params(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.decls[0].params == []

    def test_typedef_struct(self):
        unit = parse("typedef struct node { int x; struct node* next; } node_t;")
        (s,) = unit.decls
        assert isinstance(s, ast.StructDecl)
        assert s.tag == "node"
        assert s.typedef_name == "node_t"
        assert [f.name for f in s.fields] == ["x", "next"]
        assert s.fields[1].type.pointer_depth == 1

    def test_anonymous_typedef_struct(self):
        unit = parse("typedef struct { double v; } pt;")
        (s,) = unit.decls
        assert s.typedef_name == "pt" and s.tag == "pt"

    def test_typedef_name_usable_afterwards(self):
        unit = parse(
            "typedef struct n { int x; } n_t;\n"
            "int get(n_t* p) { return p->x; }"
        )
        fn = unit.decls[1]
        assert fn.params[0].type.base == "n_t"

    def test_global_array_with_init(self):
        unit = parse("double coef[5] = {0.1, 0.2, 0.4, 0.2, 0.1};")
        (g,) = unit.decls
        assert isinstance(g, ast.GlobalDecl)
        assert g.array_length == 5
        assert g.init_values == [0.1, 0.2, 0.4, 0.2, 0.1]

    def test_global_scalar(self):
        unit = parse("int threshold = -3;")
        assert unit.decls[0].init_values == [-3]


class TestStatements:
    def _body(self, code):
        unit = parse("void f() { " + code + " }")
        return unit.decls[0].body.body

    def test_for_loop_with_decl(self):
        (stmt,) = self._body("for (int i = 0; i < 10; i++) { }")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.DeclStmt)
        assert isinstance(stmt.cond, ast.BinaryExpr)
        assert isinstance(stmt.step, ast.PostfixIncDec)

    def test_for_loop_empty_clauses(self):
        (stmt,) = self._body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_for_with_comma_step(self):
        # The em3d outer loop: for ( ; nodelist; nodelist = nodelist->next, i++)
        (stmt,) = self._body("for ( ; p; p = q, i++) ;")
        assert isinstance(stmt.step, ast.BinaryExpr) and stmt.step.op == ","

    def test_if_else(self):
        (stmt,) = self._body("if (x) y = 1; else y = 2;")
        assert isinstance(stmt, ast.IfStmt) and stmt.else_body is not None

    def test_while_and_do_while(self):
        stmts = self._body("while (a) a = a - 1; do b = 1; while (b);")
        assert isinstance(stmts[0], ast.WhileStmt)
        assert isinstance(stmts[1], ast.DoWhileStmt)

    def test_local_array_decl(self):
        (stmt,) = self._body("int buf[8];")
        assert stmt.array_length == 8


class TestExpressions:
    def _expr(self, code):
        unit = parse(f"void f() {{ x = {code}; }}")
        return unit.decls[0].body.body[0].expr.rhs

    def test_precedence_mul_over_add(self):
        e = self._expr("a + b * c")
        assert e.op == "+" and e.rhs.op == "*"

    def test_precedence_cmp_over_and(self):
        e = self._expr("a < b && c > d")
        assert e.op == "&&" and e.lhs.op == "<" and e.rhs.op == ">"

    def test_right_assoc_assignment(self):
        unit = parse("void f() { a = b = 1; }")
        outer = unit.decls[0].body.body[0].expr
        assert isinstance(outer.rhs, ast.AssignExpr)

    def test_member_chain(self):
        e = self._expr("p->next->value")
        assert isinstance(e, ast.MemberExpr) and e.member == "value"
        assert isinstance(e.base, ast.MemberExpr) and e.base.arrow

    def test_index_of_member(self):
        e = self._expr("n->from_nodes[i]")
        assert isinstance(e, ast.IndexExpr)
        assert isinstance(e.base, ast.MemberExpr)

    def test_cast_vs_parenthesised_expr(self):
        unit = parse(
            "typedef struct q { int x; } q_t;\n"
            "void f(void* p) { q_t* a = (q_t*)p; int b = (x); }"
        )
        body = unit.decls[1].body.body
        assert isinstance(body[0].init, ast.CastExpr)
        assert isinstance(body[1].init, ast.Identifier)

    def test_sizeof(self):
        e = self._expr("sizeof(double)")
        assert isinstance(e, ast.SizeofExpr)

    def test_ternary(self):
        e = self._expr("a ? b : c")
        assert isinstance(e, ast.ConditionalExpr)

    def test_call_args(self):
        e = self._expr("hash(k, 17)")
        assert isinstance(e, ast.CallExpr) and len(e.args) == 2

    def test_unary_chain(self):
        e = self._expr("-*p")
        assert e.op == "-" and e.operand.op == "*"

    def test_compound_assign(self):
        unit = parse("void f() { v -= c * w; }")
        e = unit.decls[0].body.body[0].expr
        assert isinstance(e, ast.AssignExpr) and e.op == "-="


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int f() { return 1 }")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse("int f() { ); }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse("int f() { if (x) { }")

    def test_bad_struct_field(self):
        with pytest.raises(ParseError):
            parse("struct s { int; };")
