"""Tests for accelerator-system options: private caches, reinvocation."""

import dataclasses

from repro.frontend import compile_c
from repro.harness.runner import setup_workload
from repro.hw import AcceleratorSystem, DirectMappedCache
from repro.kernels import KS
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module

SMALL_KS = dataclasses.replace(KS, setup_args=[8, 8])


def simulate(private_caches: bool, n_workers: int = 4):
    module = compile_c(SMALL_KS.source, "ks")
    optimize_module(module)
    compiled = cgpa_compile(
        module, "kernel", shapes=SMALL_KS.shapes_for(module),
        policy=ReplicationPolicy.P1, n_workers=n_workers,
    )
    memory, globals_, args = setup_workload(compiled.module, SMALL_KS)
    system = AcceleratorSystem(
        compiled.module, memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=globals_,
        private_caches=private_caches,
    )
    sim = system.run("kernel", args)
    return system, sim


class TestPrivateCaches:
    def test_results_identical_to_shared(self):
        _, shared = simulate(False)
        _, private = simulate(True)
        assert shared.return_value == private.return_value

    def test_private_slices_created_per_worker(self):
        system, _ = simulate(True)
        # 1 top + 1 seq + 4 parallel + 1 seq = 7 workers, each a slice.
        assert len(system._private_cache_pool) == 7

    def test_slices_are_single_ported_quarters(self):
        system, _ = simulate(True)
        for slice_ in system._private_cache_pool:
            assert slice_.ports == 1
            assert slice_.n_lines == system.cache.n_lines // 4

    def test_shared_mode_uses_one_cache(self):
        system, sim = simulate(False)
        assert not system._private_cache_pool
        assert sim.cache_stats.accesses > 0

    def test_shared_cache_untouched_in_private_mode(self):
        system, sim = simulate(True)
        assert system.cache.stats.accesses == 0
        total_private = sum(
            s.stats.accesses for s in system._private_cache_pool
        )
        assert total_private > 0

    def test_report_aggregates_private_slices(self):
        system, sim = simulate(True)
        # The report must carry the traffic of the private slices, not the
        # idle shared cache (which used to be reported verbatim).
        total_private = sum(
            s.stats.accesses for s in system._private_cache_pool
        )
        assert sim.cache_stats.accesses == total_private
        assert sim.cache_stats.hits == sum(
            s.stats.hits for s in system._private_cache_pool
        )


class TestRunReuse:
    """Calling run() twice on one system must behave like two cold runs."""

    def assert_same_report(self, first, second):
        assert second.cycles == first.cycles
        assert second.return_value == first.return_value
        assert second.invocations == first.invocations
        assert second.worker_stats == first.worker_stats
        assert second.cache_stats == first.cache_stats
        assert second.fifo_stats == first.fifo_stats

    def test_second_run_identical(self):
        for engine in ("event", "lockstep"):
            module = compile_c(SMALL_KS.source, "ks")
            optimize_module(module)
            compiled = cgpa_compile(
                module, "kernel", shapes=SMALL_KS.shapes_for(module),
                policy=ReplicationPolicy.P1, n_workers=4,
            )
            memory, globals_, args = setup_workload(compiled.module, SMALL_KS)
            system = AcceleratorSystem(
                compiled.module, memory,
                channels=compiled.result.channels,
                cache=DirectMappedCache(ports=8),
                global_addresses=globals_,
                engine=engine,
            )
            first = system.run("kernel", args)
            # Before the per-run reset, stale cache tags/stats, FIFO stall
            # counters and liveout registers leaked into the second run.
            second = system.run("kernel", args)
            self.assert_same_report(first, second)

    def test_second_run_identical_private_caches(self):
        module = compile_c(SMALL_KS.source, "ks")
        optimize_module(module)
        compiled = cgpa_compile(
            module, "kernel", shapes=SMALL_KS.shapes_for(module),
            policy=ReplicationPolicy.P1, n_workers=4,
        )
        memory, globals_, args = setup_workload(compiled.module, SMALL_KS)
        system = AcceleratorSystem(
            compiled.module, memory,
            channels=compiled.result.channels,
            cache=DirectMappedCache(ports=8),
            global_addresses=globals_,
            private_caches=True,
        )
        first = system.run("kernel", args)
        second = system.run("kernel", args)
        self.assert_same_report(first, second)
        # The pool holds only the second run's slices, not both runs'.
        assert len(system._private_cache_pool) == 7
