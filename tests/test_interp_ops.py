"""Property tests: shared op semantics vs. Python/numpy oracles.

These are the semantics both the interpreter and the hardware worker use;
any divergence between them and real machine arithmetic would silently
corrupt every benchmark.
"""

import struct

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.interp.ops import eval_binop, eval_cast, eval_fcmp, eval_gep, eval_icmp
from repro.ir import (
    BinaryOp,
    Cast,
    Constant,
    FCmp,
    GEP,
    I8,
    I32,
    I64,
    ICmp,
    F32,
    F64,
    Alloca,
    StructType,
    ptr,
)

i32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
f64s = st.floats(allow_nan=False, allow_infinity=False, width=64)


def binop(op, a, b, type_=I32):
    inst = BinaryOp(op, Constant(type_, a), Constant(type_, b))
    return eval_binop(inst, a, b)


class TestIntSemantics:
    @given(i32s, i32s)
    def test_add_matches_int32_wraparound(self, a, b):
        expected = int(np.int32(np.int64(a) + np.int64(b)))
        assert binop("add", a, b) == expected

    @given(i32s, i32s)
    def test_mul_matches_int32(self, a, b):
        expected = int(np.int32(np.int64(a) * np.int64(b) & 0xFFFFFFFF))
        assert binop("mul", a, b) == expected

    @given(i32s, i32s)
    def test_sdiv_truncates_like_c(self, a, b):
        assume(b != 0)
        assume(not (a == -(2**31) and b == -1))  # overflow UB
        expected = int(a / b)  # C: trunc toward zero
        assert binop("sdiv", a, b) == expected

    @given(i32s, i32s)
    def test_srem_sign_follows_dividend(self, a, b):
        assume(b != 0)
        assume(not (a == -(2**31) and b == -1))
        r = binop("srem", a, b)
        assert binop("sdiv", a, b) * b + r == a
        if r != 0:
            assert (r < 0) == (a < 0)

    @given(i32s, st.integers(0, 31))
    def test_shifts(self, a, s):
        from repro.interp import wrap_int
        assert binop("shl", a, s) == wrap_int((a & 0xFFFFFFFF) << s, 32)
        assert binop("ashr", a, s) == a >> s

    @given(i32s, i32s)
    def test_bitwise(self, a, b):
        assert binop("and", a, b) == a & b
        assert binop("or", a, b) == a | b
        assert binop("xor", a, b) == a ^ b

    @given(i32s, i32s)
    def test_udiv_unsigned(self, a, b):
        assume(b != 0)
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        assume(ub != 0)
        expected = int(np.int32(ua // ub))
        assert binop("udiv", a, b) == expected


class TestFloatSemantics:
    @given(f64s, f64s)
    def test_fadd_is_ieee_double(self, a, b):
        inst = BinaryOp("fadd", Constant(F64, a), Constant(F64, b))
        result = eval_binop(inst, a, b)
        assert result == a + b or (result != result and (a + b) != (a + b))

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32),
           st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_f32_ops_round_to_single(self, a, b):
        inst = BinaryOp("fmul", Constant(F32, a), Constant(F32, b))
        result = eval_binop(inst, a, b)
        expected = np.float32(a) * np.float32(b)  # IEEE f32 incl. overflow
        assert result == expected or (result != result)

    @given(f64s, f64s)
    def test_fcmp_matches_python(self, a, b):
        for pred, fn in [("olt", lambda: a < b), ("oge", lambda: a >= b),
                         ("oeq", lambda: a == b)]:
            inst = FCmp(pred, Constant(F64, a), Constant(F64, b))
            assert eval_fcmp(inst, a, b) == int(fn())


class TestCmpAndCast:
    @given(i32s, i32s)
    def test_icmp_signed(self, a, b):
        assert eval_icmp(ICmp("slt", Constant(I32, a), Constant(I32, b)), a, b) == int(a < b)
        assert eval_icmp(ICmp("sge", Constant(I32, a), Constant(I32, b)), a, b) == int(a >= b)

    @given(i32s, i32s)
    def test_icmp_unsigned(self, a, b):
        ua, ub = a & 0xFFFFFFFF, b & 0xFFFFFFFF
        assert eval_icmp(ICmp("ult", Constant(I32, a), Constant(I32, b)), a, b) == int(ua < ub)

    @given(i32s)
    def test_trunc_sext_roundtrip_for_small(self, a):
        t = eval_cast(Cast("trunc", Constant(I32, a), I8), a)
        assert -128 <= t <= 127
        back = eval_cast(Cast("sext", Constant(I8, t), I32), t)
        assert back == t

    @given(f64s)
    def test_fptosi_truncates(self, x):
        assume(abs(x) < 2**30)
        inst = Cast("fptosi", Constant(F64, x), I32)
        assert eval_cast(inst, x) == int(x)

    @given(st.integers(-(2**20), 2**20))
    def test_sitofp_exact_in_range(self, n):
        inst = Cast("sitofp", Constant(I32, n), F64)
        assert eval_cast(inst, n) == float(n)


class TestGepSemantics:
    def test_struct_field_offsets(self):
        s = StructType("gs", [("a", I32), ("b", F64), ("c", I32)])
        base = Alloca(s)
        g = GEP(base, [Constant(I32, 0), Constant(I32, 2)])
        assert eval_gep(g, 1000, [0, 2]) == 1000 + s.field_offset(2)

    @given(st.integers(0, 1000), st.integers(-100, 100))
    def test_array_scaling(self, base, index):
        slot = Alloca(F64)
        g = GEP(slot, [Constant(I32, index)])
        assert eval_gep(g, base, [index]) == (base + 8 * index) & 0xFFFFFFFF

    def test_nested_struct_array(self):
        from repro.ir import ArrayType
        s = StructType("gt", [("pad", I32), ("tab", ArrayType(I32, 8))])
        base = Alloca(s)
        g = GEP(base, [Constant(I32, 0), Constant(I32, 1), Constant(I32, 3)])
        assert eval_gep(g, 0x100, [0, 1, 3]) == 0x100 + 4 + 3 * 4
