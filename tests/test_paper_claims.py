"""End-to-end paper-claim checks on reduced workloads.

The benchmark suite asserts the full-size shapes; this test file asserts
the same *qualitative* claims on smaller inputs so they run inside the
regular test suite:

1. CGPA beats the LegUp-style baseline on every kernel (Fig. 4 direction);
2. the LegUp baseline beats or matches the soft core;
3. CGPA's area exceeds LegUp's by roughly the worker count (Table 3);
4. P1 is at least as fast as P2 where P2 applies (Section 4.2).
"""

import dataclasses

import pytest

from repro.harness import run_kernel
from repro.kernels import PAPER_KERNELS, KernelSpec

# Paper-claim floors (e.g. >1.5x over LegUp) only bind the five kernels
# the paper measured; the second wave's cross-backend correctness and
# CGPA-not-slower direction live in tests/test_kernel_conformance.py.
SMALL_ARGS = {
    "K-means": [32, 3, 4],
    "Hash-indexing": [96, 16],
    "ks": [12, 12],
    "em3d": [32, 32, 4],
    "1D-Gaussblur": [3, 40],
}


def small(spec: KernelSpec) -> KernelSpec:
    return dataclasses.replace(spec, setup_args=SMALL_ARGS[spec.name])


@pytest.fixture(scope="module")
def runs():
    out = {}
    for spec in PAPER_KERNELS:
        backends = ["mips", "legup", "cgpa-p1"]
        if spec.supports_p2:
            backends.append("cgpa-p2")
        out[spec.name] = run_kernel(small(spec), tuple(backends))
    return out


class TestFigure4Direction:
    @pytest.mark.parametrize("name", list(SMALL_ARGS))
    def test_cgpa_beats_legup(self, runs, name):
        run = runs[name]
        assert run.results["cgpa-p1"].cycles < run.results["legup"].cycles

    @pytest.mark.parametrize("name", list(SMALL_ARGS))
    def test_legup_not_slower_than_mips_by_much(self, runs, name):
        # On tiny inputs LegUp may roughly tie the core, but never lose
        # badly (the FSM has no fetch/decode overhead).
        run = runs[name]
        assert run.results["legup"].cycles < 1.3 * run.results["mips"].cycles

    @pytest.mark.parametrize("name", list(SMALL_ARGS))
    def test_meaningful_pipeline_speedup(self, runs, name):
        run = runs[name]
        ratio = run.results["legup"].cycles / run.results["cgpa-p1"].cycles
        assert ratio > 1.5, f"{name}: only {ratio:.2f}x over LegUp"


class TestTable3Direction:
    @pytest.mark.parametrize("name", list(SMALL_ARGS))
    def test_area_overhead_near_worker_count(self, runs, name):
        run = runs[name]
        ratio = run.results["cgpa-p1"].aluts / run.results["legup"].aluts
        assert 2.0 < ratio < 7.0


class TestTradeoffDirection:
    @pytest.mark.parametrize("name", ["em3d", "1D-Gaussblur"])
    def test_p1_not_slower_than_p2(self, runs, name):
        run = runs[name]
        assert run.results["cgpa-p1"].cycles <= run.results["cgpa-p2"].cycles
