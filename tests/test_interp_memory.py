"""Unit and property tests for the byte-addressable memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterpError
from repro.interp import HEAP_BASE, Memory, round_f32, to_unsigned, wrap_int
from repro.ir import F32, F64, I8, I16, I32, I64, StructType, ptr


class TestAllocator:
    def test_null_page_reserved(self):
        mem = Memory()
        addr = mem.malloc(16)
        assert addr >= HEAP_BASE

    def test_allocations_do_not_overlap(self):
        mem = Memory()
        spans = []
        for size in (1, 7, 8, 64, 3):
            addr = mem.malloc(size)
            spans.append((addr, addr + size))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_alignment(self):
        mem = Memory()
        for _ in range(5):
            assert mem.malloc(3, align=8) % 8 == 0

    def test_site_recorded(self):
        mem = Memory()
        mem.malloc(8, site=42)
        assert mem.allocations[-1].site == 42

    def test_allocation_containing(self):
        mem = Memory()
        addr = mem.malloc(16, site=7)
        found = mem.allocation_containing(addr + 8)
        assert found is not None and found.site == 7
        assert mem.allocation_containing(4) is None

    def test_negative_malloc_rejected(self):
        with pytest.raises(InterpError):
            Memory().malloc(-1)

    def test_growth(self):
        mem = Memory(size=4096)
        addr = mem.malloc(1 << 20)
        mem.store(addr + (1 << 20) - 4, I32, 5)
        assert mem.load(addr + (1 << 20) - 4, I32) == 5


class TestTypedAccess:
    @pytest.mark.parametrize("type_,value", [
        (I8, -5), (I16, -1234), (I32, -100000), (I64, -(2**40)),
        (F32, 1.5), (F64, 3.141592653589793),
    ])
    def test_roundtrip(self, type_, value):
        mem = Memory()
        addr = mem.malloc(16)
        mem.store(addr, type_, value)
        assert mem.load(addr, type_) == value

    def test_pointer_roundtrip(self):
        mem = Memory()
        addr = mem.malloc(8)
        mem.store(addr, ptr(I32), 0xDEADBEEF)
        assert mem.load(addr, ptr(I32)) == 0xDEADBEEF

    def test_little_endian_layout(self):
        mem = Memory()
        addr = mem.malloc(4)
        mem.store(addr, I32, 0x01020304)
        assert mem.read_bytes(addr, 4) == bytes([4, 3, 2, 1])

    def test_null_access_rejected(self):
        mem = Memory()
        with pytest.raises(InterpError):
            mem.load(0, I32)

    def test_f32_store_rounds(self):
        mem = Memory()
        addr = mem.malloc(4)
        mem.store(addr, F32, 0.1)
        assert mem.load(addr, F32) == round_f32(0.1)

    def test_traffic_counters(self):
        mem = Memory()
        addr = mem.malloc(8)
        mem.store(addr, F64, 1.0)
        mem.load(addr, F64)
        assert mem.bytes_written >= 8
        assert mem.bytes_read >= 8


class TestStructHelpers:
    def test_field_roundtrip(self):
        s = StructType("memnode", [("v", F64), ("n", I32)])
        mem = Memory()
        addr = mem.alloc_object(s)
        mem.store_field(addr, s, "v", 2.5)
        mem.store_field(addr, s, "n", 9)
        assert mem.load_field(addr, s, "v") == 2.5
        assert mem.load_field(addr, s, "n") == 9

    def test_array_roundtrip(self):
        mem = Memory()
        addr = mem.malloc(40)
        mem.store_array(addr, F64, [1.0, 2.0, 3.0])
        assert mem.load_array(addr, F64, 3) == [1.0, 2.0, 3.0]

    def test_clone_is_independent(self):
        mem = Memory()
        addr = mem.malloc(4, site=3)
        mem.store(addr, I32, 1)
        copy = mem.clone()
        copy.store(addr, I32, 2)
        assert mem.load(addr, I32) == 1
        assert copy.load(addr, I32) == 2
        assert copy.allocations[-1].site == 3

    def test_snapshot_equality_detects_divergence(self):
        a = Memory()
        addr = a.malloc(16)
        a.store(addr, I32, 5)
        b = a.clone()
        assert a.snapshot() == b.snapshot()
        b.store(addr, I32, 6)
        assert a.snapshot() != b.snapshot()


class TestIntHelpers:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1),
           st.sampled_from([8, 16, 32, 64]))
    def test_wrap_int_range(self, value, bits):
        wrapped = wrap_int(value, bits)
        assert -(2 ** (bits - 1)) <= wrapped < 2 ** (bits - 1)

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_wrap_is_identity_in_range(self, value):
        assert wrap_int(value, 32) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_unsigned_signed_roundtrip(self, value):
        assert wrap_int(to_unsigned(value, 32), 32) == value

    @given(st.integers(), st.integers())
    def test_wrap_add_homomorphism(self, a, b):
        # (a + b) wrapped == (wrap a + wrap b) wrapped — the property that
        # makes per-op wrapping in the interpreter sound.
        assert wrap_int(a + b, 32) == wrap_int(wrap_int(a, 32) + wrap_int(b, 32), 32)


class TestMemoryProperties:
    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(1, 64)), max_size=20))
    def test_disjoint_writes_preserved(self, writes):
        mem = Memory()
        cells = []
        for value, size in writes:
            addr = mem.malloc(size)
            mem.store(addr, I8, value)
            cells.append((addr, wrap_int(value, 8)))
        for addr, expected in cells:
            assert mem.load(addr, I8) == expected
