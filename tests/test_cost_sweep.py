"""Cost-model behaviour under design-space sweeps.

The DSE subsystem leans on two aggregation properties the point tests in
``test_cost.py`` never pinned down: replicated parallel stages must scale
area with the worker count, and the shared-cache / FIFO terms must be
counted exactly once per configuration (not once per worker).
"""

import dataclasses

import pytest

from repro.cost import power_report
from repro.harness.runner import cgpa_area, run_backend
from repro.kernels import KERNELS_BY_NAME

SMALL_KS = dataclasses.replace(KERNELS_BY_NAME["ks"], setup_args=[10, 10])
SMALL_EM3D = dataclasses.replace(
    KERNELS_BY_NAME["em3d"], setup_args=[48, 32, 4]
)

WORKER_SWEEP = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def ks_sweep():
    """run_backend over a worker sweep: (n_workers -> BackendResult)."""
    return {
        n: run_backend(SMALL_KS, "cgpa-p1", n_workers=n)
        for n in WORKER_SWEEP
    }


class TestAreaUnderSweeps:
    def test_total_aluts_strictly_monotonic_in_workers(self, ks_sweep):
        totals = [ks_sweep[n].area.total_aluts for n in WORKER_SWEEP]
        assert all(a < b for a, b in zip(totals, totals[1:]))

    def test_parallel_stage_area_scales_linearly(self, ks_sweep):
        # The parallel stage instantiates its module once per worker; the
        # sequential stages and the wrapper must not replicate.
        one = ks_sweep[1].area.worker_aluts
        four = ks_sweep[4].area.worker_aluts
        assert set(one) == set(four)
        grew = {name for name in one if four[name] > one[name]}
        flat = {name for name in one if four[name] == one[name]}
        parallel = [name for name in grew if four[name] == 4 * one[name]]
        assert parallel, f"no stage scaled 4x: {one} vs {four}"
        assert flat, "some module (wrapper or sequential stage) must not scale"

    def test_arbiter_not_multiplied_by_workers(self, ks_sweep):
        # One shared cache, one arbiter: its slice of the area is a
        # property of the port count, not of the worker count.
        arbiters = {ks_sweep[n].area.arbiter_aluts for n in WORKER_SWEEP}
        assert len(arbiters) == 1

    def test_fifo_area_grows_with_consumer_fanout(self):
        narrow = run_backend(SMALL_KS, "cgpa-p1", n_workers=1)
        wide = run_backend(SMALL_KS, "cgpa-p1", n_workers=8)
        assert wide.area.fifo_aluts > narrow.area.fifo_aluts
        assert wide.area.bram_bits > narrow.area.bram_bits


class TestPowerUnderSweeps:
    def test_static_power_tracks_area(self, ks_sweep):
        statics = [
            ks_sweep[n].power.static_power_w for n in WORKER_SWEEP
        ]
        assert all(a < b for a, b in zip(statics, statics[1:]))

    def test_shared_cache_energy_not_double_counted(self, ks_sweep):
        # Dynamic cache energy is proportional to hit/miss counts.  The
        # same workload does (nearly) the same number of accesses at any
        # worker count, so if each worker re-counted the shared cache the
        # 8-worker dynamic energy would explode.  Recompute the power
        # report with the 1-worker activity but the 8-worker area: only
        # the static (area-linked) term may change.
        r1, r8 = ks_sweep[1], ks_sweep[8]
        base = power_report(r1.sim, r1.area, [])
        mixed = power_report(r1.sim, r8.area, [])
        assert mixed.dynamic_energy_j == pytest.approx(base.dynamic_energy_j)
        assert mixed.static_power_w > base.static_power_w

    def test_energy_aggregates_static_and_dynamic(self, ks_sweep):
        power = ks_sweep[4].power
        assert power.total_energy_j == pytest.approx(
            power.total_power_w * power.time_s
        )
        assert power.total_power_w > power.static_power_w > 0

    def test_em3d_worker_sweep_monotone_area(self):
        results = [
            run_backend(SMALL_EM3D, "cgpa-p1", n_workers=n)
            for n in (1, 4)
        ]
        assert results[1].area.total_aluts > results[0].area.total_aluts
        # More area, same workload: energy should not collapse to zero or
        # blow up by the replication factor (cache/FIFO terms are shared).
        ratio = results[1].energy_uj / results[0].energy_uj
        assert 0.2 < ratio < 4.0
