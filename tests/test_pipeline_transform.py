"""Pipeline transform tests: functional equivalence and generated structure.

The central property (the paper's "all Verilog designs passed the
verification"): for every kernel and every replication policy, running the
transformed program (parent + fork/join + tasks over FIFO channels) must
produce exactly the same return value and the same memory image as the
sequential original.
"""

import pytest

from repro.analysis import RegionShapes, Shape
from repro.frontend import compile_c
from repro.interp import Interpreter, malloc_site_table
from repro.ir import (
    Consume,
    Phi,
    Produce,
    ProduceBroadcast,
    StoreLiveout,
    verify_module,
)
from repro.pipeline import (
    ReplicationPolicy,
    cgpa_compile,
    run_transformed,
)
from repro.transforms import optimize_module

from tests.test_analysis_pdg import (
    CALL_SOURCE,
    EM3D_SOURCE,
    REDUCTION_SOURCE,
    SEQUENTIAL_STORE_SOURCE,
)

KERNELS = [
    ("em3d", EM3D_SOURCE, True),
    ("reduction", REDUCTION_SOURCE, False),
    ("histogram", SEQUENTIAL_STORE_SOURCE, False),
    ("purecall", CALL_SOURCE, False),
]

POLICIES = [ReplicationPolicy.P1, ReplicationPolicy.P2, ReplicationPolicy.NONE]


def reference_run(source):
    module = compile_c(source)
    optimize_module(module)
    interp = Interpreter(module)
    value = interp.call("main", [])
    return value, interp.memory.snapshot()


def compiled(source, policy, list_shapes, n_workers=4):
    module = compile_c(source)
    shapes = RegionShapes()
    if list_shapes:
        for site in malloc_site_table(module):
            shapes.declare(site, Shape.LIST)
    return cgpa_compile(
        module, "kernel", shapes=shapes, policy=policy, n_workers=n_workers
    )


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("name,source,list_shapes", KERNELS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_value_and_memory_match(self, name, source, list_shapes, policy):
        ref_value, ref_memory = reference_run(source)
        cp = compiled(source, policy, list_shapes)
        verify_module(cp.module)
        value, memory, _ = run_transformed(cp.module, "main", [])
        assert value == ref_value
        assert memory.snapshot() == ref_memory

    @pytest.mark.parametrize("n_workers", [1, 2, 4, 8])
    def test_worker_count_sweep(self, n_workers):
        ref_value, ref_memory = reference_run(EM3D_SOURCE)
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P1, True, n_workers)
        value, memory, _ = run_transformed(cp.module, "main", [])
        assert value == ref_value
        assert memory.snapshot() == ref_memory

    def test_non_power_of_two_workers(self):
        ref_value, ref_memory = reference_run(EM3D_SOURCE)
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P1, True, n_workers=3)
        value, memory, _ = run_transformed(cp.module, "main", [])
        assert value == ref_value
        assert memory.snapshot() == ref_memory


class TestGeneratedStructure:
    def test_em3d_matches_figure_1e(self):
        """The generated em3d tasks mirror the paper's Figure 1(e)."""
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P1, True)
        assert cp.signature == "S-P"
        stage0, stage1 = cp.result.tasks

        # Stage 0 (sequential traversal): produces the node pointer
        # round-robin and broadcasts the exit condition.
        produces = [i for i in stage0.instructions() if isinstance(i, Produce)]
        broadcasts = [
            i for i in stage0.instructions() if isinstance(i, ProduceBroadcast)
        ]
        assert len(produces) == 1
        assert produces[0].value.type.is_pointer
        assert len(broadcasts) == 1
        assert broadcasts[0].value.type.bits == 1  # the end token

        # Stage 1 (parallel): consumes the pointer only in its own
        # iterations (one consume), the end token in both bodies (two).
        consumes = [i for i in stage1.instructions() if isinstance(i, Consume)]
        pointer_consumes = [c for c in consumes if c.type.is_pointer]
        token_consumes = [c for c in consumes if c.type.is_integer]
        assert len(pointer_consumes) == 1
        assert len(token_consumes) == 2

        # Worker id argument and the it & MASK dispatch.
        assert stage1.args[-1].name == "worker_id"
        opcodes = {i.opcode for i in stage1.instructions()}
        assert "and" in opcodes  # it & (W-1), the paper's MASK form

    def test_task_info_attached(self):
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P1, True)
        info0 = cp.result.tasks[0].task_info
        info1 = cp.result.tasks[1].task_info
        assert not info0.is_parallel and info0.n_workers == 1
        assert info1.is_parallel and info1.n_workers == 4

    def test_channels_flow_forward(self):
        cp = compiled(SEQUENTIAL_STORE_SOURCE, ReplicationPolicy.P1, False)
        for binding in cp.result.bindings:
            assert binding.producer_stage < binding.consumer_stage

    def test_parallel_to_sequential_consume_is_round_robin(self):
        # Histogram is P-S: the sequential stage must pop worker FIFOs
        # round-robin (an explicit selector on the consume).
        cp = compiled(SEQUENTIAL_STORE_SOURCE, ReplicationPolicy.P1, False)
        assert cp.signature == "P-S"
        seq_task = cp.result.tasks[-1]
        consumes = [i for i in seq_task.instructions() if isinstance(i, Consume)]
        assert consumes
        assert all(c.worker_select is not None for c in consumes)

    def test_liveout_stored_and_retrieved(self):
        cp = compiled(REDUCTION_SOURCE, ReplicationPolicy.P1, False)
        stores = [
            i
            for task in cp.result.tasks
            for i in task.instructions()
            if isinstance(i, StoreLiveout)
        ]
        assert len(stores) >= 1
        from repro.ir import RetrieveLiveout
        parent = cp.result.parent
        retrieves = [
            i for i in parent.instructions() if isinstance(i, RetrieveLiveout)
        ]
        assert len(retrieves) == len(cp.result.liveout_ids)

    def test_parent_loop_replaced_by_fork_join(self):
        from repro.ir import ParallelFork, ParallelJoin
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P1, True)
        parent = cp.result.parent
        forks = [i for i in parent.instructions() if isinstance(i, ParallelFork)]
        joins = [i for i in parent.instructions() if isinstance(i, ParallelJoin)]
        assert len(forks) == 1 + 4  # one sequential worker + four parallel
        assert len(joins) == 1
        # The original loop is gone from the parent.
        from repro.analysis import LoopInfo
        assert not LoopInfo(parent).loops

    def test_broadcast_channels_marked(self):
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P1, True)
        broadcast = [b for b in cp.result.bindings if b.broadcast]
        per_worker = [b for b in cp.result.bindings if not b.broadcast]
        assert len(broadcast) == 1  # the end token
        assert len(per_worker) == 1  # the node pointer

    def test_p2_has_no_channels_for_em3d(self):
        # Replicating the traversal removes all cross-stage traffic:
        # a single parallel stage with redundant fetching (Fig. 1(b)).
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P2, True)
        assert cp.signature == "P"
        assert len(cp.result.bindings) == 0

    def test_dual_bodies_share_dispatch_phis(self):
        cp = compiled(EM3D_SOURCE, ReplicationPolicy.P1, True)
        stage1 = cp.result.tasks[1]
        dispatch = next(b for b in stage1.blocks if b.name == "dispatch")
        phis = dispatch.phis()
        assert phis  # at least the iteration counter
        # Each phi has one entry arm plus one arm per (reachable) latch.
        for phi in phis:
            assert len(phi.incoming_blocks) >= 2
