"""Tests for the cycle-accurate FSM worker and accelerator system.

The strongest property: for any (sequential) function, the hardware
simulation must compute exactly what the functional interpreter computes —
only cycle counts may differ.
"""

import pytest

from repro.errors import SimulationError
from repro.frontend import compile_c
from repro.hw import AcceleratorSystem, DirectMappedCache
from repro.interp import Interpreter
from repro.transforms import optimize_module

PROGRAMS = [
    ("int f(int a, int b) { return (a * 3 + b) ^ (a - b); }", [17, 5]),
    ("double f(double x, int n) { double a = 1.0;"
     " for (int i = 0; i < n; i++) a = a * x + 0.25; return a; }", [1.5, 10]),
    ("int f(int n) { int s = 0;"
     " for (int i = 0; i < n; i++) { if (i % 3 == 0) s += i; else s -= 1; }"
     " return s; }", [50]),
    ("int helper(int x) { return x * x; }"
     "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += helper(i);"
     " return s; }", [12]),
    ("void* malloc(int n);"
     "int f(int n) {"
     "  int* a = (int*)malloc(n * sizeof(int));"
     "  for (int i = 0; i < n; i++) a[i] = i * 7;"
     "  int s = 0;"
     "  for (int i = 0; i < n; i++) s += a[i];"
     "  return s; }", [20]),
]


def run_both(source, args):
    ref_module = compile_c(source)
    optimize_module(ref_module)
    expected = Interpreter(ref_module).call("f", list(args))

    hw_module = compile_c(source)
    optimize_module(hw_module)
    from repro.interp import Memory
    system = AcceleratorSystem(hw_module, Memory())
    report = system.run("f", list(args))
    return expected, report


class TestFunctionalExactness:
    @pytest.mark.parametrize("source,args", PROGRAMS)
    def test_hw_matches_interpreter(self, source, args):
        expected, report = run_both(source, args)
        assert report.return_value == expected

    @pytest.mark.parametrize("source,args", PROGRAMS)
    def test_cycles_positive_and_bounded(self, source, args):
        _, report = run_both(source, args)
        assert report.cycles > 0
        assert report.total_ops > 0
        # Sanity: an FSM can't take more than ~100 cycles per executed op
        # on these programs.
        assert report.cycles < 100 * report.total_ops


class TestTiming:
    def test_cache_misses_cost_cycles(self):
        source = (
            "void* malloc(int n);"
            "int f(int* p, int n) { int s = 0;"
            " for (int i = 0; i < n; i++) s += p[i * 64]; return s; }"
        )
        module = compile_c(source)
        optimize_module(module)
        from repro.interp import Memory
        mem = Memory()
        base = mem.malloc(64 * 256 * 4)

        fast = AcceleratorSystem(
            module, mem.clone(), cache=DirectMappedCache(miss_penalty=4)
        ).run("f", [base, 32])
        slow_module = compile_c(source)
        optimize_module(slow_module)
        slow = AcceleratorSystem(
            slow_module, mem.clone(), cache=DirectMappedCache(miss_penalty=64)
        ).run("f", [base, 32])
        # Note: each i*64 access is a distinct 256B-strided address ->
        # every access misses; higher penalty must cost many more cycles.
        assert slow.cycles > fast.cycles + 30 * 32

    def test_fp_longer_than_int(self):
        int_src = "int f(int a) { int s = a; for (int i = 0; i < 50; i++) s = s + 3; return s; }"
        fp_src = "double f(double a) { double s = a; for (int i = 0; i < 50; i++) s = s + 3.0; return s; }"
        _, int_rep = run_both(int_src, [1])
        _, fp_rep = run_both(fp_src, [1.0])
        assert fp_rep.cycles > int_rep.cycles

    def test_worker_stats_accumulate(self):
        _, report = run_both(PROGRAMS[4][0], PROGRAMS[4][1])
        stats = next(iter(report.worker_stats.values()))
        assert stats.loads == 20
        assert stats.stores == 20
        assert stats.mem_stall_cycles > 0
        assert stats.ops_executed["add"] > 0


class TestFaults:
    def test_deadlock_detected(self):
        # A task consuming from a channel nobody fills must be reported
        # as a deadlock, not hang.
        from repro.ir import (
            Channel, Consume, FunctionType, I32, IRBuilder, Module, VOID,
            ParallelFork, ParallelJoin,
        )
        from repro.pipeline.transform import TaskInfo
        from repro.pipeline.spec import StageKind
        from repro.interp import Memory
        from repro.ir.primitives import ChannelPlan

        m = Module("m")
        chan_plan = ChannelPlan()
        chan = chan_plan.new_channel("never", I32, 0, 1)
        task = m.new_function("task", FunctionType(VOID, []), [])
        tb = IRBuilder(task.new_block("entry"))
        tb.block.append(Consume(chan, I32))
        tb.ret()
        task.task_info = TaskInfo(0, 0, StageKind.SEQUENTIAL, 1)
        parent = m.new_function("parent", FunctionType(VOID, []), [])
        pb = IRBuilder(parent.new_block("entry"))
        pb.block.append(ParallelFork(0, task, [], None))
        pb.block.append(ParallelJoin(0))
        pb.ret()
        system = AcceleratorSystem(m, Memory(), channels=chan_plan)
        with pytest.raises(SimulationError, match="deadlock"):
            system.run("parent", [])

    def test_max_cycles_guard(self):
        source = "int f(void) { int i = 0; while (1) { i++; } return i; }"
        module = compile_c(source)
        # Note: no optimize (the infinite loop survives either way).
        from repro.interp import Memory
        system = AcceleratorSystem(module, Memory(), max_cycles=5000)
        with pytest.raises(SimulationError, match="max_cycles"):
            system.run("f", [])

    def test_undefined_external_call_rejected(self):
        module = compile_c("int g(int x); int f(void) { return g(1); }")
        from repro.interp import Memory
        system = AcceleratorSystem(module, Memory())
        with pytest.raises(SimulationError):
            system.run("f", [])


class TestFifoIntegrationTiming:
    def test_full_fifo_stalls_producer(self):
        # Producer pushes N values; consumer drains slowly (long fp chain
        # per value): with depth 2 the producer must stall.
        from repro.kernels import HASH_INDEXING
        from repro.harness import run_backend
        deep = run_backend(HASH_INDEXING, "cgpa-p1", fifo_depth=16)
        shallow = run_backend(HASH_INDEXING, "cgpa-p1", fifo_depth=1)
        assert shallow.cycles >= deep.cycles
        stalls_shallow = sum(
            s.fifo_stall_cycles for s in shallow.sim.worker_stats.values()
        )
        stalls_deep = sum(
            s.fifo_stall_cycles for s in deep.sim.worker_stats.values()
        )
        assert stalls_shallow > stalls_deep
