"""Tests for the MIPS soft-core baseline cost model."""

import pytest

from repro.frontend import compile_c
from repro.hw import DirectMappedCache, run_on_mips
from repro.interp import Interpreter, Memory
from repro.transforms import optimize_module


def run(source, entry, args, **kw):
    module = compile_c(source)
    optimize_module(module)
    return run_on_mips(module, entry, args, Memory(), **kw)


class TestCostModel:
    def test_functional_result_exact(self):
        src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i * i; return s; }"
        result = run(src, "f", [20])
        assert result.return_value == sum(i * i for i in range(20))

    def test_cycles_scale_with_work(self):
        src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        small = run(src, "f", [10])
        large = run(src, "f", [100])
        assert 5 < large.cycles / small.cycles < 15

    def test_fp_more_expensive_than_int(self):
        int_src = "int f(int n) { int s = 1; for (int i = 0; i < n; i++) s = s * 3; return s; }"
        fp_src = "double f(int n) { double s = 1.0; for (int i = 0; i < n; i++) s = s * 3.0; return (double)(int)s; }"
        int_run = run(int_src, "f", [30])
        fp_run = run(fp_src, "f", [30])
        assert fp_run.cycles > int_run.cycles

    def test_instruction_count_tracked(self):
        result = run("int f(int a, int b) { return a + b; }", "f", [1, 2])
        assert result.instructions >= 2  # add + ret

    def test_cache_latency_charged(self):
        src = (
            "void* malloc(int n);"
            "int f(int n) {"
            "  int* a = (int*)malloc(n * 256);"
            "  int s = 0;"
            "  for (int i = 0; i < n; i++) s += a[i * 64];"
            "  return s; }"
        )
        module = compile_c(src)
        optimize_module(module)
        fast = run_on_mips(module, "f", [32], Memory(),
                           cache=DirectMappedCache(ports=1, miss_penalty=2))
        module2 = compile_c(src)
        optimize_module(module2)
        slow = run_on_mips(module2, "f", [32], Memory(),
                           cache=DirectMappedCache(ports=1, miss_penalty=100))
        assert slow.cycles > fast.cycles + 32 * 80

    def test_memory_writes_visible_afterwards(self):
        src = (
            "void* malloc(int n);"
            "int g_out = 0;"
            "void f(int v) { g_out = v * 3; }"
        )
        module = compile_c(src)
        optimize_module(module)
        memory = Memory()
        probe = Interpreter(module, memory)
        result = run_on_mips(module, "f", [5], memory,
                             global_addresses=probe.global_addresses)
        from repro.ir import I32
        assert memory.load(probe.global_addresses["g_out"], I32) == 15

    def test_shared_global_addresses(self):
        # Without shared globals the model would re-place (and zero) them.
        src = "double coef = 2.5; double f(double x) { return x * coef; }"
        module = compile_c(src)
        optimize_module(module)
        setup = Interpreter(module)
        result = run_on_mips(module, "f", [4.0], setup.memory,
                             global_addresses=setup.global_addresses)
        assert result.return_value == 10.0
