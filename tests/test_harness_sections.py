"""Tests for the Figure-1-style section annotation and the harness CLI."""

import pytest

from repro.frontend import compile_c
from repro.harness import annotate_sections, format_sections, section_summary
from repro.harness.__main__ import main as harness_main
from repro.kernels import EM3D, KERNELS_BY_NAME, KS
from repro.pipeline import cgpa_compile
from repro.transforms import optimize_module


def compiled_for(spec):
    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    return cgpa_compile(
        module, spec.accel_function, shapes=spec.shapes_for(module),
        rewrite_parent=False,
    )


class TestSectionAnnotation:
    def test_em3d_matches_figure1(self):
        cp = compiled_for(EM3D)
        lines = annotate_sections(cp.pdg, cp.spec)
        summary = section_summary(lines)
        # Fig 1(a): traversal is replicable, update is parallel, and em3d
        # has no sequential section.
        assert summary["R"] > 0
        assert summary["P"] > summary["R"]
        assert summary["S"] == 0
        # The update store is parallel.
        store_lines = [l for l in lines if l.text.startswith("store ")]
        assert store_lines and all(l.section == "P" for l in store_lines)
        # The traversal load (->next) is replicable.
        assert any(
            l.section == "R" and l.text.startswith("%") and "load" in l.text
            for l in lines
        )

    def test_replicated_marker_set_for_kmeans_iv(self):
        # K-means (Appendix A.1): the induction variable is duplicated
        # into every worker.
        cp = compiled_for(KERNELS_BY_NAME["K-means"])
        lines = annotate_sections(cp.pdg, cp.spec)
        replicated = [l for l in lines if l.replicated]
        assert replicated
        assert all(l.section == "R" for l in replicated)

    def test_unreplicated_replicable_sections_in_ks(self):
        # ks: both the heavyweight traversal and the max reduction are
        # replicable by classification but placed in sequential stages.
        cp = compiled_for(KS)
        lines = annotate_sections(cp.pdg, cp.spec)
        unreplicated_r = [
            l for l in lines if l.section == "R" and not l.replicated
        ]
        assert unreplicated_r

    def test_format_is_block_grouped(self):
        cp = compiled_for(EM3D)
        text = format_sections(annotate_sections(cp.pdg, cp.spec))
        assert "for.cond:" in text
        assert "[P" in text and "[R" in text
        assert "duplicated into workers" in text

    def test_every_instruction_annotated(self):
        cp = compiled_for(EM3D)
        lines = annotate_sections(cp.pdg)
        assert len(lines) == len(cp.pdg.nodes)


class TestCli:
    def test_single_kernel(self, capsys):
        assert harness_main(["--kernel", "ks"]) == 0
        out = capsys.readouterr().out
        assert "cgpa-p1" in out and "partition=S-P-S" in out

    def test_worker_override(self, capsys):
        assert harness_main(["--kernel", "ks", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "cgpa-p1" in out

    def test_bad_kernel_rejected(self):
        with pytest.raises(SystemExit):
            harness_main(["--kernel", "nonexistent"])
