"""Cross-subsystem kernel conformance matrix.

Every kernel in :data:`repro.kernels.ALL_KERNELS` must flow unchanged
through every backend of the repo — this file is the single place that
enforces it.  For *each* registered kernel (paper five plus the second
wave) it asserts, with zero kernel-specific skips:

1. **oracle equality** — the accelerator simulation returns the same
   value and checksum as the sequential interpreter;
2. **engine bit-identity** — lockstep, event and specialized engines
   produce bit-identical ``SimReport``\\ s;
3. **RTL** — every emitted worker module lints clean and co-simulates
   bit-identically to the interpreter oracle (liveouts, FIFO traffic,
   final memory image);
4. **DSE totality** — the evaluator captures failures as statuses and
   never raises, for good and known-bad design points alike;
5. **fault resilience** — timing faults stay liveout-correct, injected
   hangs are diagnosed by the watchdog, corruption is detected or
   consistently masked;
6. **observability** — a ``sim`` run envelope round-trips bit-exactly
   through its JSON encoding.

Adding kernel #10 to the registry automatically buys this whole matrix;
a kernel that cannot pass one of these rows does not belong in
``ALL_KERNELS``.  Workloads run at the co-simulation smoke scale
(:data:`repro.vsim.cosim.SMOKE_SETUP_ARGS`) so the matrix stays cheap.
"""

import dataclasses
import json

import pytest

from repro.dse import DesignPoint, Evaluator
from repro.dse.evaluate import STATUSES
from repro.faults.sweep import resilience_sweep
from repro.frontend import compile_c
from repro.harness.runner import run_backend, setup_workload
from repro.hw import AcceleratorSystem, DirectMappedCache
from repro.interp import Interpreter
from repro.kernels import ALL_KERNELS, KernelSpec
from repro.obs import RunEnvelope
from repro.obs.emit import sim_envelope
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.rtl import generate_verilog_hierarchy
from repro.transforms import optimize_module
from repro.vsim import lint_verilog
from repro.vsim.cosim import SMOKE_SETUP_ARGS, run_rtl_cosim

KERNEL_IDS = [spec.name for spec in ALL_KERNELS]

ENGINES = ("lockstep", "event", "specialized")


def small(spec: KernelSpec) -> KernelSpec:
    """The kernel at co-simulation smoke scale."""
    return dataclasses.replace(spec, setup_args=SMOKE_SETUP_ARGS[spec.name])


#: cgpa_compile is engine- and workload-independent; one compile per
#: (kernel, policy) for the whole module.
_COMPILED: dict = {}


def compiled(spec: KernelSpec, policy=ReplicationPolicy.P1):
    key = (spec.name, policy)
    if key not in _COMPILED:
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        _COMPILED[key] = cgpa_compile(
            module, spec.accel_function, shapes=spec.shapes_for(module),
            policy=policy,
        )
    return _COMPILED[key]


def simulate(spec: KernelSpec, engine: str):
    """One accelerator run of the smoke-scale kernel; returns SimReport."""
    pipeline = compiled(spec)
    memory, globals_, args = setup_workload(pipeline.module, small(spec))
    system = AcceleratorSystem(
        pipeline.module, memory,
        channels=pipeline.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=globals_,
        engine=engine,
    )
    report = system.run(spec.measure_entry, args)
    checker = Interpreter(
        pipeline.module, memory, global_addresses=globals_
    )
    return report, checker.call(spec.check_function, [])


def assert_reports_identical(a, b):
    assert a.cycles == b.cycles
    assert a.return_value == b.return_value
    assert a.invocations == b.invocations
    assert a.worker_stats == b.worker_stats
    assert a.cache_stats == b.cache_stats
    assert a.fifo_stats == b.fifo_stats
    assert a.stall_breakdown == b.stall_breakdown


def test_smoke_scale_covers_every_kernel():
    # The matrix's workload table must never lag the registry.
    assert set(SMOKE_SETUP_ARGS) == {s.name for s in ALL_KERNELS}


@pytest.mark.parametrize("spec", ALL_KERNELS, ids=KERNEL_IDS)
class TestOracleEquality:
    """Row 1: accelerator simulation vs the sequential interpreter."""

    def test_return_and_checksum_match_interpreter(self, spec):
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        memory, globals_, args = setup_workload(module, small(spec))
        oracle = Interpreter(module, memory, global_addresses=globals_)
        expected_return = oracle.call(spec.measure_entry, args)
        expected_checksum = oracle.call(spec.check_function, [])

        report, checksum = simulate(spec, "event")
        assert report.return_value == expected_return
        assert checksum == expected_checksum


@pytest.mark.parametrize("spec", ALL_KERNELS, ids=KERNEL_IDS)
class TestEngineBitIdentity:
    """Row 2: all three simulation engines, one SimReport."""

    def test_three_engines_bit_identical(self, spec):
        reports = {}
        checksums = set()
        for engine in ENGINES:
            reports[engine], checksum = simulate(spec, engine)
            checksums.add(checksum)
        assert len(checksums) == 1
        assert_reports_identical(reports["event"], reports["lockstep"])
        assert_reports_identical(reports["specialized"], reports["lockstep"])


@pytest.mark.parametrize("spec", ALL_KERNELS, ids=KERNEL_IDS)
class TestRtl:
    """Row 3: the emitted Verilog is lintable and bit-identical in vsim."""

    def test_worker_modules_lint_clean(self, spec):
        pipeline = compiled(spec)
        for task in pipeline.result.tasks:
            issues = lint_verilog(generate_verilog_hierarchy(task))
            assert issues == [], f"{task.name}: {issues}"
        parent_issues = lint_verilog(
            generate_verilog_hierarchy(pipeline.result.parent)
        )
        assert parent_issues == []

    def test_cosim_bit_identical_to_oracle(self, spec):
        report = run_rtl_cosim(spec.name)
        assert report.ok, report.format()
        assert report.rounds, "oracle recorded no fork/join rounds"
        for rnd in report.rounds:
            assert rnd.memory_diff is None, rnd.memory_diff
            for inst in rnd.instances:
                for diff in inst.liveouts:
                    assert diff.oracle_bits == diff.rtl_bits, (
                        f"{inst.tag} liveout[{diff.liveout_id}]"
                    )


@pytest.mark.parametrize("spec", ALL_KERNELS, ids=KERNEL_IDS)
class TestDseTotality:
    """Row 4: the evaluator is total over good and hostile points."""

    POINTS = [
        DesignPoint(policy="p1", n_workers=2, fifo_depth=8),
        DesignPoint(policy="none", n_workers=1, fifo_depth=4),
        # Known-bad: a zero-depth FIFO deadlocks the pipeline.  The
        # evaluator must capture that as a status, not an exception.
        DesignPoint(policy="p1", n_workers=2, fifo_depth=0),
    ]

    def test_every_point_yields_a_classified_result(self, spec):
        evaluator = Evaluator(small(spec), max_cycles=2_000_000)
        results = [evaluator.evaluate(point) for point in self.POINTS]
        for result in results:
            assert result.status in STATUSES
        assert results[0].ok and results[0].cycles > 0
        assert results[1].ok
        assert not results[2].ok  # fifo_depth=0 never simulates cleanly


@pytest.mark.parametrize("spec", ALL_KERNELS, ids=KERNEL_IDS)
class TestFaultResilience:
    """Row 5: the fault taxonomy holds for every kernel."""

    def test_sweep_outcomes_match_fault_classes(self, spec):
        report = resilience_sweep(small(spec), n_plans=2, seed=3)
        assert report.baseline_cycles > 0
        timing = report.by_kind("timing")
        assert timing and all(r.outcome == "correct" for r in timing), (
            "timing faults must degrade gracefully, never corrupt liveouts"
        )
        hangs = report.by_kind("hang")
        assert hangs
        for r in hangs:
            if r.triggered:
                assert r.detected, (
                    "every triggered hang must be diagnosed by the watchdog"
                )
            else:
                # An injection point past the end of the (smoke-scale)
                # run never fires; the run must then be unaffected.
                assert r.outcome == "correct", r.outcome
        for r in report.by_kind("corruption"):
            if r.triggered and not r.detected:
                # Silently masked flips must still be liveout-correct.
                assert r.outcome == "correct", r.outcome


@pytest.mark.parametrize("spec", ALL_KERNELS, ids=KERNEL_IDS)
class TestEnvelopeRoundTrip:
    """Row 6: the run-record spine carries every kernel bit-exactly."""

    def test_sim_envelope_json_round_trip(self, spec):
        result = run_backend(small(spec), "cgpa-p1")
        envelope = sim_envelope(
            result.sim, kernel=spec.name, engine="event",
            backend="cgpa-p1", area=result.area, power=result.power,
        )
        encoded = json.dumps(envelope.to_dict(), sort_keys=True)
        decoded = RunEnvelope.from_dict(json.loads(encoded))
        assert json.dumps(decoded.to_dict(), sort_keys=True) == encoded
        assert decoded.kernel == spec.name
        assert decoded.cycles == result.cycles
