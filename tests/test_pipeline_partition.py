"""Partitioner tests: stage shapes, legality rules, P1/P2/NONE policies."""

import pytest

from repro.analysis import (
    LoopInfo,
    PointsTo,
    ProgramDependenceGraph,
    RegionShapes,
    SccClass,
    Shape,
)
from repro.frontend import compile_c
from repro.interp import malloc_site_table
from repro.pipeline import ReplicationPolicy, partition_loop
from repro.transforms import optimize_module

from tests.test_analysis_pdg import (
    CALL_SOURCE,
    EM3D_SOURCE,
    REDUCTION_SOURCE,
    SEQUENTIAL_STORE_SOURCE,
)


def build_pdg(source, kernel="kernel", list_shapes=False):
    module = compile_c(source)
    optimize_module(module)
    loop = LoopInfo(module.get_function(kernel)).top_level()[0]
    shapes = RegionShapes()
    if list_shapes:
        for site in malloc_site_table(module):
            shapes.declare(site, Shape.LIST)
    return ProgramDependenceGraph(loop, PointsTo(module), shapes)


class TestStageShapes:
    def test_em3d_p1_is_sp(self):
        # Table 2: em3d with the replicable (traversal) section in a
        # sequential stage is an S-P pipeline.
        pdg = build_pdg(EM3D_SOURCE, list_shapes=True)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        assert spec.signature == "S-P"

    def test_em3d_p2_is_p(self):
        # Table 2: em3d P2 duplicates the traversal into the workers.
        pdg = build_pdg(EM3D_SOURCE, list_shapes=True)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P2)
        assert spec.signature == "P"
        assert spec.replicated  # the traversal SCC

    def test_reduction_p1_is_ps(self):
        pdg = build_pdg(REDUCTION_SOURCE)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        assert spec.signature == "P-S"

    def test_histogram_is_ps(self):
        pdg = build_pdg(SEQUENTIAL_STORE_SOURCE)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        assert spec.signature == "P-S"

    def test_pure_call_is_p(self):
        pdg = build_pdg(CALL_SOURCE)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        assert spec.signature == "P"

    def test_none_policy_never_replicates(self):
        pdg = build_pdg(SEQUENTIAL_STORE_SOURCE)
        spec = partition_loop(pdg, policy=ReplicationPolicy.NONE)
        assert not spec.replicated
        assert spec.signature == "S-P-S"

    def test_conservative_shapes_degenerate(self):
        # Without shape facts em3d's update is not provably parallel;
        # whatever comes out must still be a legal partition.
        pdg = build_pdg(EM3D_SOURCE, list_shapes=False)
        spec = partition_loop(pdg, policy=ReplicationPolicy.P1)
        assert spec.signature in ("S", "S-P", "P-S", "S-P-S", "P")


class TestLegality:
    def _spec(self, source, policy=ReplicationPolicy.P1, **kw):
        pdg = build_pdg(source, **kw)
        return pdg, partition_loop(pdg, policy=policy)

    @pytest.mark.parametrize("source,list_shapes", [
        (EM3D_SOURCE, True),
        (REDUCTION_SOURCE, False),
        (SEQUENTIAL_STORE_SOURCE, False),
        (CALL_SOURCE, False),
    ])
    def test_no_carried_edges_within_parallel_stage(self, source, list_shapes):
        pdg, spec = self._spec(source, list_shapes=list_shapes)
        parallel = spec.parallel_stage
        if parallel is None:
            return
        member_ids = {scc.index for scc in parallel.sccs}
        for edge in pdg.edges:
            if not edge.carried:
                continue
            src = pdg.scc_of(edge.src).index
            dst = pdg.scc_of(edge.dst).index
            assert not (src in member_ids and dst in member_ids and src != dst), \
                "carried dependence between two non-replicated parallel SCCs"

    @pytest.mark.parametrize("source,list_shapes", [
        (EM3D_SOURCE, True),
        (REDUCTION_SOURCE, False),
        (SEQUENTIAL_STORE_SOURCE, False),
    ])
    def test_all_edges_flow_forward(self, source, list_shapes):
        pdg, spec = self._spec(source, list_shapes=list_shapes)
        stage_of_scc = {}
        for stage in spec.stages:
            for scc in stage.sccs:
                stage_of_scc[scc.index] = stage.index
        for (s, d) in pdg.condensation.edges:
            if s in stage_of_scc and d in stage_of_scc:
                assert stage_of_scc[s] <= stage_of_scc[d]

    def test_every_scc_is_placed_exactly_once(self):
        pdg, spec = self._spec(EM3D_SOURCE, list_shapes=True)
        placed = [scc.index for stage in spec.stages for scc in stage.sccs]
        placed += [scc.index for scc in spec.replicated]
        assert sorted(placed) == sorted(s.index for s in pdg.sccs)

    def test_replicated_sccs_have_no_side_effects(self):
        for source, ls in ((EM3D_SOURCE, True), (REDUCTION_SOURCE, False)):
            pdg, spec = self._spec(source, policy=ReplicationPolicy.P2, list_shapes=ls)
            for scc in spec.replicated:
                assert not scc.has_side_effects

    def test_p1_replicated_sections_are_lightweight(self):
        pdg, spec = self._spec(REDUCTION_SOURCE)
        for scc in spec.replicated:
            assert scc.is_lightweight  # no load / multiply under P1

    def test_worker_count_honoured(self):
        pdg = build_pdg(CALL_SOURCE)
        for n in (1, 2, 4, 8):
            spec = partition_loop(pdg, n_workers=n)
            assert spec.parallel_stage.n_workers == n

    def test_sequential_stages_have_one_worker(self):
        pdg, spec = self._spec(SEQUENTIAL_STORE_SOURCE)
        for stage in spec.stages:
            if not stage.is_parallel:
                assert stage.n_workers == 1
