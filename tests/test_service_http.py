"""End-to-end HTTP tests: real sockets, real jobs, real artifacts.

Each test boots a :func:`repro.service.app.start_service` instance on an
ephemeral port with a tmp-dir store and drives it through
:class:`repro.service.client.ServiceClient` — the same path the load
benchmark and the CI smoke job use.  The full submit -> poll -> fetch
contract is exercised for every job kind at smoke scale, and the
service-specific behaviours (cache short-circuit, coalescing, 429,
409-until-done, error routes) get targeted scenarios with fake
executors where real kernels would only add runtime.
"""

import threading

import pytest

from repro.service import JobRequest, RateLimited, ServiceClient, ServiceError
from repro.service.app import ServiceConfig, start_service
from repro.service.client import JobFailed
from repro.service.jobs import execute
from repro.service.store import ArtifactStore


def _config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(port=0, workers=2, store_root=str(tmp_path / "store"))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def live_service(tmp_path):
    """A real service (real executor) plus a connected client."""
    with start_service(_config(tmp_path)) as handle:
        with ServiceClient(handle.host, handle.port, client_id="t") as client:
            yield handle, client


# Smoke-scale requests covering every job kind; ks is the cheapest
# kernel end to end (rtl cosim for it takes well under a second).
KIND_REQUESTS = {
    "compile": JobRequest.make("compile", "ks"),
    "simulate": JobRequest.make("simulate", "ks", {"n_workers": 2}),
    "dse": JobRequest.make(
        "dse",
        "ks",
        {"strategy": "grid", "policies": ["p1"], "n_workers": [1, 2],
         "fifo_depths": [4], "max_cycles": 200_000},
    ),
    "faults": JobRequest.make(
        "faults", "ks", {"plans": 2, "max_cycles": 200_000}
    ),
    "rtl": JobRequest.make("rtl", "ks", {"n_workers": 1}),
}


class TestRoundTrips:
    @pytest.mark.parametrize("kind", sorted(KIND_REQUESTS))
    def test_submit_poll_fetch_matches_direct_execution(
        self, live_service, kind
    ):
        _, client = live_service
        request = KIND_REQUESTS[kind]
        record = client.submit(request)
        assert record["kind"] == kind and record["key"] == request.key
        final = client.wait(record["job_id"], timeout=120)
        assert final["status"] == "done", final.get("error")
        artifact = client.result(record["job_id"])
        # The service answer is exactly what a direct run produces.
        assert artifact == execute(request)
        # The artifact is also addressable by content key.
        assert client.artifact(request.key) == artifact

    def test_resubmission_is_served_from_the_store(self, live_service):
        handle, client = live_service
        request = KIND_REQUESTS["compile"]
        first = client.run(request, timeout=120)
        before = client.stats()
        record = client.submit(request)
        assert record["status"] == "done" and record["cached"]
        assert client.result(record["job_id"]) == first
        after = client.stats()
        assert after["queue"]["cached"] == before["queue"]["cached"] + 1
        assert after["store"]["warm_hits"] > before["store"]["warm_hits"]
        assert after["queue"]["executed"] == before["queue"]["executed"]

    def test_store_survives_service_restart(self, tmp_path):
        request = KIND_REQUESTS["compile"]
        with start_service(_config(tmp_path)) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                artifact = client.run(request, timeout=120)
        # Same store root, new process-equivalent: served cold from disk.
        with start_service(_config(tmp_path)) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                record = client.submit(request)
                assert record["status"] == "done" and record["cached"]
                assert client.result(record["job_id"]) == artifact
                assert client.stats()["store"]["cold_hits"] >= 1


class TestCoalescing:
    def test_identical_inflight_submissions_share_one_job(self, tmp_path):
        gate = threading.Event()
        calls = []

        def fake_run(request):
            calls.append(request.key)
            assert gate.wait(10)
            return {"kind": request.kind, "echo": request.kernel}

        with start_service(_config(tmp_path), run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                request = JobRequest.make("compile", "ks")
                first = client.submit(request)
                second = client.submit(request)
                assert second["job_id"] == first["job_id"]
                assert second["submissions"] == 2
                # Not ready yet: the result endpoint answers 409.
                with pytest.raises(ServiceError) as info:
                    client.result(first["job_id"])
                assert info.value.status == 409
                gate.set()
                final = client.wait(first["job_id"], timeout=10)
                assert final["status"] == "done"
                assert calls == [request.key]  # executed exactly once
                assert client.stats()["queue"]["coalesced"] == 1
                artifact = client.result(first["job_id"])
                assert artifact == {"kind": "compile", "echo": "ks"}


class TestRateLimiting:
    def test_429_with_retry_after_then_recovery(self, tmp_path):
        clock = [0.0]
        config = _config(tmp_path, rate_capacity=2, rate_refill_per_s=1.0)
        with start_service(
            config, run=lambda r: {"ok": True}, clock=lambda: clock[0]
        ) as handle:
            with ServiceClient(
                handle.host, handle.port, client_id="greedy"
            ) as client:
                client.submit(JobRequest.make("compile", "ks"))
                client.submit(JobRequest.make("simulate", "ks"))
                with pytest.raises(RateLimited) as info:
                    client.submit(JobRequest.make("compile", "em3d"))
                assert info.value.retry_after == pytest.approx(1.0, abs=0.01)
                assert client.stats()["rate"]["rejected"] == 1
                # Reads are never limited; only submissions spend tokens.
                assert client.health()
                clock[0] = 1.0
                client.submit(JobRequest.make("compile", "em3d"))

    def test_clients_have_independent_buckets(self, tmp_path):
        config = _config(tmp_path, rate_capacity=1, rate_refill_per_s=0.0)
        with start_service(
            config, run=lambda r: {"ok": True}, clock=lambda: 0.0
        ) as handle:
            with ServiceClient(handle.host, handle.port, client_id="a") as a:
                a.submit(JobRequest.make("compile", "ks"))
                with pytest.raises(RateLimited):
                    a.submit(JobRequest.make("compile", "em3d"))
            with ServiceClient(handle.host, handle.port, client_id="b") as b:
                b.submit(JobRequest.make("compile", "em3d"))


class TestErrorPaths:
    def test_failed_job_raises_job_failed(self, tmp_path):
        from repro.errors import CgpaError

        def fake_run(request):
            raise CgpaError("deadlock: all workers stalled")

        with start_service(_config(tmp_path), run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(JobFailed, match="deadlock"):
                    client.run(JobRequest.make("compile", "ks"), timeout=10)
                # The failure is not cached: stats show no store entry.
                assert client.stats()["store"]["entries"] == 0

    def test_contract_violations_answer_400(self, live_service):
        _, client = live_service
        for body in (
            {"kind": "transmogrify", "kernel": "ks"},
            {"kind": "compile", "kernel": "nope"},
            {"kind": "compile", "kernel": "ks", "options": {"bogus": 1}},
            [1, 2, 3],
        ):
            with pytest.raises(ServiceError) as info:
                client.submit(body)
            assert info.value.status == 400

    def test_unknown_routes_and_ids_answer_404(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as info:
            client.job("job-99999999")
        assert info.value.status == 404
        assert client.artifact("0" * 64) is None
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v2/nope")
        assert info.value.status == 404
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v1/jobs")  # wrong method
        assert info.value.status == 405

    def test_non_json_body_answers_400(self, live_service):
        handle, client = live_service
        import http.client as hc

        conn = hc.HTTPConnection(handle.host, handle.port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/jobs", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()
