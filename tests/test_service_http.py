"""End-to-end HTTP tests: real sockets, real jobs, real artifacts.

Each test boots a :func:`repro.service.app.start_service` instance on an
ephemeral port with a tmp-dir store and drives it through
:class:`repro.service.client.ServiceClient` — the same path the load
benchmark and the CI smoke job use.  The full submit -> poll -> fetch
contract is exercised for every job kind at smoke scale, and the
service-specific behaviours (cache short-circuit, coalescing, 429,
409-until-done, error routes) get targeted scenarios with fake
executors where real kernels would only add runtime.
"""

import threading
import time

import pytest

from repro.service import JobRequest, RateLimited, ServiceClient, ServiceError
from repro.service.app import ServiceConfig, start_service
from repro.service.client import JobCancelled, JobFailed
from repro.service.jobs import execute
from repro.service.store import ArtifactStore


def _config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(port=0, workers=2, store_root=str(tmp_path / "store"))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def live_service(tmp_path):
    """A real service (real executor) plus a connected client."""
    with start_service(_config(tmp_path)) as handle:
        with ServiceClient(handle.host, handle.port, client_id="t") as client:
            yield handle, client


# Smoke-scale requests covering every job kind; ks is the cheapest
# kernel end to end (rtl cosim for it takes well under a second).
KIND_REQUESTS = {
    "compile": JobRequest.make("compile", "ks"),
    "simulate": JobRequest.make("simulate", "ks", {"n_workers": 2}),
    "dse": JobRequest.make(
        "dse",
        "ks",
        {"strategy": "grid", "policies": ["p1"], "n_workers": [1, 2],
         "fifo_depths": [4], "max_cycles": 200_000},
    ),
    "faults": JobRequest.make(
        "faults", "ks", {"plans": 2, "max_cycles": 200_000}
    ),
    "rtl": JobRequest.make("rtl", "ks", {"n_workers": 1}),
}


class TestRoundTrips:
    @pytest.mark.parametrize("kind", sorted(KIND_REQUESTS))
    def test_submit_poll_fetch_matches_direct_execution(
        self, live_service, kind
    ):
        _, client = live_service
        request = KIND_REQUESTS[kind]
        record = client.submit(request)
        assert record["kind"] == kind and record["key"] == request.key
        final = client.wait(record["job_id"], timeout=120)
        assert final["status"] == "done", final.get("error")
        artifact = client.result(record["job_id"])
        # The service answer is exactly what a direct run produces.
        assert artifact == execute(request)
        # The artifact is also addressable by content key.
        assert client.artifact(request.key) == artifact

    def test_resubmission_is_served_from_the_store(self, live_service):
        handle, client = live_service
        request = KIND_REQUESTS["compile"]
        first = client.run(request, timeout=120)
        before = client.stats()
        record = client.submit(request)
        assert record["status"] == "done" and record["cached"]
        assert client.result(record["job_id"]) == first
        after = client.stats()
        assert after["queue"]["cached"] == before["queue"]["cached"] + 1
        assert after["store"]["warm_hits"] > before["store"]["warm_hits"]
        assert after["queue"]["executed"] == before["queue"]["executed"]

    def test_store_survives_service_restart(self, tmp_path):
        request = KIND_REQUESTS["compile"]
        with start_service(_config(tmp_path)) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                artifact = client.run(request, timeout=120)
        # Same store root, new process-equivalent: served cold from disk.
        with start_service(_config(tmp_path)) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                record = client.submit(request)
                assert record["status"] == "done" and record["cached"]
                assert client.result(record["job_id"]) == artifact
                assert client.stats()["store"]["cold_hits"] >= 1


class TestCoalescing:
    def test_identical_inflight_submissions_share_one_job(self, tmp_path):
        gate = threading.Event()
        calls = []

        def fake_run(request):
            calls.append(request.key)
            assert gate.wait(10)
            return {"kind": request.kind, "echo": request.kernel}

        with start_service(_config(tmp_path), run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                request = JobRequest.make("compile", "ks")
                first = client.submit(request)
                second = client.submit(request)
                assert second["job_id"] == first["job_id"]
                assert second["submissions"] == 2
                # Not ready yet: the result endpoint answers 409.
                with pytest.raises(ServiceError) as info:
                    client.result(first["job_id"])
                assert info.value.status == 409
                gate.set()
                final = client.wait(first["job_id"], timeout=10)
                assert final["status"] == "done"
                assert calls == [request.key]  # executed exactly once
                assert client.stats()["queue"]["coalesced"] == 1
                artifact = client.result(first["job_id"])
                assert artifact == {"kind": "compile", "echo": "ks"}


class TestRateLimiting:
    def test_429_with_retry_after_then_recovery(self, tmp_path):
        clock = [0.0]
        config = _config(tmp_path, rate_capacity=2, rate_refill_per_s=1.0)
        with start_service(
            config, run=lambda r: {"ok": True}, clock=lambda: clock[0]
        ) as handle:
            with ServiceClient(
                handle.host, handle.port, client_id="greedy"
            ) as client:
                client.submit(JobRequest.make("compile", "ks"))
                client.submit(JobRequest.make("simulate", "ks"))
                with pytest.raises(RateLimited) as info:
                    client.submit(JobRequest.make("compile", "em3d"))
                assert info.value.retry_after == pytest.approx(1.0, abs=0.01)
                assert client.stats()["rate"]["rejected"] == 1
                # Reads are never limited; only submissions spend tokens.
                assert client.health()
                clock[0] = 1.0
                client.submit(JobRequest.make("compile", "em3d"))

    def test_clients_have_independent_buckets(self, tmp_path):
        config = _config(tmp_path, rate_capacity=1, rate_refill_per_s=0.0)
        with start_service(
            config, run=lambda r: {"ok": True}, clock=lambda: 0.0
        ) as handle:
            with ServiceClient(handle.host, handle.port, client_id="a") as a:
                a.submit(JobRequest.make("compile", "ks"))
                with pytest.raises(RateLimited):
                    a.submit(JobRequest.make("compile", "em3d"))
            with ServiceClient(handle.host, handle.port, client_id="b") as b:
                b.submit(JobRequest.make("compile", "em3d"))


class TestErrorPaths:
    def test_failed_job_raises_job_failed(self, tmp_path):
        from repro.errors import CgpaError

        def fake_run(request):
            raise CgpaError("deadlock: all workers stalled")

        with start_service(_config(tmp_path), run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(JobFailed, match="deadlock"):
                    client.run(JobRequest.make("compile", "ks"), timeout=10)
                # The failure is not cached: stats show no store entry.
                assert client.stats()["store"]["entries"] == 0

    def test_contract_violations_answer_400(self, live_service):
        _, client = live_service
        for body in (
            {"kind": "transmogrify", "kernel": "ks"},
            {"kind": "compile", "kernel": "nope"},
            {"kind": "compile", "kernel": "ks", "options": {"bogus": 1}},
            [1, 2, 3],
        ):
            with pytest.raises(ServiceError) as info:
                client.submit(body)
            assert info.value.status == 400

    def test_unknown_routes_and_ids_answer_404(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as info:
            client.job("job-99999999")
        assert info.value.status == 404
        assert client.artifact("0" * 64) is None
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v2/nope")
        assert info.value.status == 404
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/v1/jobs")  # wrong method
        assert info.value.status == 405

    def test_non_json_body_answers_400(self, live_service):
        handle, client = live_service
        import http.client as hc

        conn = hc.HTTPConnection(handle.host, handle.port, timeout=10)
        try:
            conn.request(
                "POST", "/v1/jobs", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestCancellation:
    def test_cancel_queued_job_is_terminal(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()

        def fake_run(request):
            started.set()
            assert gate.wait(10)
            return {"ok": True}

        config = _config(tmp_path, workers=1)
        with start_service(config, run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                running = client.submit(JobRequest.make("compile", "ks"))
                assert started.wait(10)
                queued = client.submit(JobRequest.make("simulate", "ks"))
                assert queued["status"] == "queued"
                cancelled = client.cancel(queued["job_id"])
                assert cancelled["status"] == "cancelled"
                assert client.job(queued["job_id"])["status"] == "cancelled"
                # A cancelled job never produces a result.
                with pytest.raises(ServiceError) as info:
                    client.result(queued["job_id"])
                assert info.value.status == 409
                # Cancelling a terminal record is an idempotent no-op.
                assert client.cancel(queued["job_id"])["status"] == "cancelled"
                gate.set()
                final = client.wait(running["job_id"], timeout=10)
                assert final["status"] == "done"
                assert client.stats()["queue"]["cancelled"] == 1

    def test_cancel_running_job_raises_typed_error_from_run(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()

        def fake_run(request):
            started.set()
            gate.wait(10)
            return {"ok": True}

        config = _config(tmp_path, workers=1)
        with start_service(config, run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                request = JobRequest.make("compile", "ks")
                record = client.submit(request)
                assert started.wait(10)

                outcome = {}

                def run_and_capture():
                    with ServiceClient(handle.host, handle.port) as peer:
                        try:
                            peer.run(request, timeout=30)
                        except BaseException as exc:
                            outcome["exc"] = exc

                waiter = threading.Thread(target=run_and_capture)
                waiter.start()
                # Let the peer's submission coalesce onto the running job
                # before cancelling, so its run() observes the cancel.
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if client.job(record["job_id"])["submissions"] >= 2:
                        break
                    time.sleep(0.01)
                client.cancel(record["job_id"])
                final = client.wait(record["job_id"], timeout=10)
                assert final["status"] == "cancelled"
                waiter.join(20)
                assert isinstance(outcome.get("exc"), JobCancelled)
                gate.set()  # release the abandoned executor thread
                assert client.stats()["queue"]["cancelled"] == 1

    def test_unknown_job_cancel_answers_404(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as info:
            client.cancel("job-99999999")
        assert info.value.status == 404


class TestDeadlines:
    def test_queue_default_deadline_lands_timeout_state(self, tmp_path):
        gate = threading.Event()

        def fake_run(request):
            gate.wait(5)
            return {"ok": True}

        config = _config(tmp_path, workers=1, job_deadline_s=0.2)
        with start_service(config, run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                record = client.submit(JobRequest.make("compile", "ks"))
                final = client.wait(record["job_id"], timeout=10)
                assert final["status"] == "timeout"
                assert "deadline" in final["error"]
                with pytest.raises(JobFailed, match="deadline"):
                    client.result(record["job_id"])
                assert client.stats()["queue"]["timeouts"] == 1
                # Nothing landed in the store for the timed-out key.
                assert client.artifact(record["key"]) is None
                gate.set()

    def test_per_request_deadline_rides_outside_the_key(self, tmp_path):
        bounded = JobRequest.make("compile", "ks", deadline_s=0.15)
        # The deadline is transport-level: the content key is unchanged,
        # so a deadline must never split the artifact address space.
        assert bounded.key == JobRequest.make("compile", "ks").key
        gate = threading.Event()

        def fake_run(request):
            gate.wait(5)
            return {"ok": True}

        with start_service(_config(tmp_path, workers=1), run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                record = client.submit(bounded)
                final = client.wait(record["job_id"], timeout=10)
                assert final["status"] == "timeout"
                gate.set()


class TestDrain:
    def test_drain_finishes_inflight_then_rejects_new_submissions(
        self, tmp_path
    ):
        gate = threading.Event()
        started = threading.Event()

        def fake_run(request):
            started.set()
            assert gate.wait(10)
            return {"ok": True}

        config = _config(tmp_path, workers=1, drain_timeout=8.0)
        handle = start_service(config, run=fake_run)
        client = ServiceClient(handle.host, handle.port)
        try:
            record = client.submit(JobRequest.make("compile", "ks"))
            assert started.wait(10)
            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            deadline = time.monotonic() + 5
            while (
                not handle.service.queue.draining
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert handle.service.queue.draining
            # The HTTP front end stays up through the drain: polls work,
            # new submissions answer 503.
            health = client._request("GET", "/v1/healthz")
            assert health["status"] == "draining" and health["ok"] is False
            with pytest.raises(ServiceError) as info:
                client.submit(JobRequest.make("simulate", "ks"))
            assert info.value.status == 503
            gate.set()
            stopper.join(20)
            assert not stopper.is_alive()
            # The in-flight job landed its artifact before shutdown.
            assert handle.service.queue.get(record["job_id"]).status == "done"
            store = ArtifactStore(tmp_path / "store")
            assert store.get(record["key"]) == {"ok": True}
        finally:
            gate.set()
            client.close()
            handle.stop()

    def test_healthz_reports_degraded_queue(self, tmp_path):
        with start_service(_config(tmp_path), run=lambda r: {}) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                assert client._request("GET", "/v1/healthz")["status"] == "ok"
                handle.service.queue._degraded = True
                health = client._request("GET", "/v1/healthz")
                assert health["status"] == "degraded" and health["ok"]


class TestCorruptArtifacts:
    def test_corrupt_stored_artifact_reexecutes_job(self, tmp_path):
        from repro.fleet.chaos import corrupt_artifact

        calls = []

        def fake_run(request):
            calls.append(request.key)
            return {"value": 42}

        with start_service(_config(tmp_path), run=fake_run) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                request = JobRequest.make("compile", "ks")
                assert client.run(request, timeout=10) == {"value": 42}
                assert len(calls) == 1
                store = handle.service.store
                assert corrupt_artifact(store.root, key=request.key) == (
                    request.key
                )
                store.drop_memory()  # cold reader, like a restarted server
                # The corrupt artifact reads as a miss: the job simply
                # re-executes and re-publishes under the same key.
                assert client.run(request, timeout=10) == {"value": 42}
                assert len(calls) == 2
                stats = client.stats()["store"]
                assert stats["corrupt"] >= 1
                quarantine = store.root / "quarantine"
                assert any(quarantine.iterdir())
                assert client.artifact(request.key) == {"value": 42}


class TestClientRetries:
    def test_retries_absorb_rate_limits(self, tmp_path):
        config = _config(tmp_path, rate_capacity=1, rate_refill_per_s=50.0)
        with start_service(config, run=lambda r: {"ok": True}) as handle:
            with ServiceClient(
                handle.host, handle.port, client_id="r"
            ) as client:
                client.submit(JobRequest.make("compile", "ks"))
                # Default keeps the historical contract: first 429 raises.
                with pytest.raises(RateLimited):
                    client.submit(JobRequest.make("simulate", "ks"))
                # retries= sleeps out the Retry-After hints and lands it.
                artifact = client.run(
                    JobRequest.make("simulate", "ks"), timeout=10, retries=5
                )
                assert artifact == {"ok": True}

    def test_retry_delay_is_deterministic_and_capped(self, tmp_path):
        from repro.service.client import RETRY_AFTER_CAP_S

        client = ServiceClient("127.0.0.1", 1, client_id="x")
        assert client._retry_delay(1.0, 1) == client._retry_delay(1.0, 1)
        assert client._retry_delay(1.0, 1) != client._retry_delay(1.0, 2)
        # A hostile/misconfigured Retry-After cannot park the client.
        assert client._retry_delay(1e9, 1) <= RETRY_AFTER_CAP_S * 1.25
        other = ServiceClient("127.0.0.1", 1, client_id="y")
        assert client._retry_delay(1.0, 1) != other._retry_delay(1.0, 1)
