"""Tests for region shape declarations (the Ghiya–Hendren stand-in)."""

from repro.analysis import EXTERNAL, AbstractObject, RegionShapes, Shape, conservative


class TestShapes:
    def test_default_is_cyclic(self):
        shapes = RegionShapes()
        obj = AbstractObject("malloc", 0)
        assert shapes.shape_of(obj) is Shape.CYCLIC
        assert not shapes.shape_of(obj).is_acyclic

    def test_declared_shape_returned(self):
        shapes = RegionShapes().declare(3, Shape.LIST)
        assert shapes.shape_of(AbstractObject("malloc", 3)) is Shape.LIST
        assert shapes.shape_of(AbstractObject("malloc", 4)) is Shape.CYCLIC

    def test_declare_chains(self):
        shapes = RegionShapes().declare(0, Shape.TREE).declare(1, Shape.DAG)
        assert shapes.shape_of(AbstractObject("malloc", 0)) is Shape.TREE
        assert shapes.shape_of(AbstractObject("malloc", 1)) is Shape.DAG

    def test_acyclicity_lattice(self):
        assert Shape.LIST.is_acyclic
        assert Shape.TREE.is_acyclic
        assert Shape.DAG.is_acyclic
        assert not Shape.CYCLIC.is_acyclic

    def test_external_always_cyclic(self):
        shapes = RegionShapes().declare(-1, Shape.LIST)
        assert shapes.shape_of(EXTERNAL) is Shape.CYCLIC

    def test_globals_and_allocas_acyclic(self):
        shapes = RegionShapes()
        assert shapes.shape_of(AbstractObject("global", 0, "g")).is_acyclic
        assert shapes.shape_of(AbstractObject("alloca", 0, "x")).is_acyclic

    def test_all_acyclic_requires_every_object(self):
        shapes = RegionShapes().declare(0, Shape.LIST)
        listy = AbstractObject("malloc", 0)
        cyclic = AbstractObject("malloc", 1)
        assert shapes.all_acyclic([listy])
        assert not shapes.all_acyclic([listy, cyclic])

    def test_conservative_factory(self):
        shapes = conservative()
        assert shapes.shape_of(AbstractObject("malloc", 0)) is Shape.CYCLIC
