"""Tests for the pipeline specification datatypes and channel descriptors."""

import pytest

from repro.frontend import compile_c
from repro.ir import (
    Channel,
    ChannelPlan,
    DEFAULT_FIFO_DEPTH,
    DEFAULT_FIFO_WIDTH,
    F64,
    I32,
)
from repro.kernels import EM3D, KERNELS_BY_NAME
from repro.pipeline import ReplicationPolicy, StageKind, cgpa_compile
from repro.transforms import optimize_module


class TestChannel:
    def test_wire_width(self):
        c32 = Channel(0, "a", I32, 0, 1)
        c64 = Channel(1, "b", F64, 0, 1)
        assert c32.width_bits == 32
        assert c64.width_bits == 64

    def test_fifo_slots_for_wide_values(self):
        # The paper fixes FIFO width to 32 bits; doubles take two slots.
        assert Channel(0, "a", I32, 0, 1).fifo_slots_per_value == 1
        assert Channel(1, "b", F64, 0, 1).fifo_slots_per_value == 2

    def test_defaults_match_paper(self):
        assert DEFAULT_FIFO_DEPTH == 16
        assert DEFAULT_FIFO_WIDTH == 32
        c = Channel(0, "a", I32, 0, 1)
        assert c.depth == 16

    def test_plan_assigns_sequential_ids(self):
        plan = ChannelPlan()
        a = plan.new_channel("a", I32, 0, 1)
        b = plan.new_channel("b", F64, 0, 1, n_channels=4, broadcast=True)
        assert (a.channel_id, b.channel_id) == (0, 1)
        assert plan.by_id(1) is b
        assert len(plan) == 2


class TestPipelineSpec:
    @pytest.fixture(scope="class")
    def em3d_spec(self):
        module = compile_c(EM3D.source, "em3d")
        optimize_module(module)
        return cgpa_compile(
            module, "kernel", shapes=EM3D.shapes_for(module),
            rewrite_parent=False,
        ).spec

    def test_signature(self, em3d_spec):
        assert em3d_spec.signature == "S-P"
        assert em3d_spec.parallel_stage is not None
        assert em3d_spec.parallel_stage.kind is StageKind.PARALLEL

    def test_full_signature_is_unambiguous(self, em3d_spec):
        # The transform recorded the realized FIFO depth on the spec, so
        # the full signature pins shape + policy + workers + depth.
        assert em3d_spec.fifo_depth == DEFAULT_FIFO_DEPTH
        assert em3d_spec.full_signature == "S-P/p1/w4/d16"

    def test_full_signature_tracks_knobs(self):
        module = compile_c(EM3D.source, "em3d")
        optimize_module(module)
        compiled = cgpa_compile(
            module, "kernel", shapes=EM3D.shapes_for(module),
            policy=ReplicationPolicy.P2, n_workers=2, fifo_depth=8,
            rewrite_parent=False,
        )
        assert compiled.full_signature.endswith("/p2/w2/d8")
        # The bare Table-2 shape string stays untouched (deprecated alias).
        assert "/" not in compiled.signature

    def test_total_workers(self, em3d_spec):
        assert em3d_spec.total_workers == 1 + 4

    def test_stage_of_lookup(self, em3d_spec):
        for stage in em3d_spec.stages:
            for inst in stage.owned_instructions():
                assert em3d_spec.stage_of(inst) is stage

    def test_replicated_lookup(self, em3d_spec):
        for scc in em3d_spec.replicated:
            for inst in scc.instructions:
                assert em3d_spec.is_replicated(inst)
                assert em3d_spec.stage_of(inst) is None

    def test_describe_readable(self, em3d_spec):
        text = em3d_spec.describe()
        assert "S-P" in text and "parallel x4" in text

    def test_stage_weights_positive(self, em3d_spec):
        for stage in em3d_spec.stages:
            assert stage.weight > 0


class TestPolicyEnum:
    def test_values(self):
        assert ReplicationPolicy("p1") is ReplicationPolicy.P1
        assert ReplicationPolicy("p2") is ReplicationPolicy.P2
        assert ReplicationPolicy("none") is ReplicationPolicy.NONE
