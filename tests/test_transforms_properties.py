"""Property tests for the optimizer: idempotence and random-program safety."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import print_module, verify_module
from repro.transforms import optimize_module

BIN_OPS = ["+", "-", "*", "&", "|", "^"]
CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def random_program(draw):
    """A small structured integer program with loops and branches.

    Covers the control idioms the kernel suite leans on: fixed-bound
    loops, early-exit (``break``) loops, ``continue`` guards and
    data-dependent ``while`` trip counts.
    """
    n_stmts = draw(st.integers(1, 4))
    lines = ["int s = 1;"]
    for k in range(n_stmts):
        kind = draw(st.integers(0, 6))
        op = draw(st.sampled_from(BIN_OPS))
        cmp = draw(st.sampled_from(CMP_OPS))
        c1 = draw(st.integers(-10, 10))
        c2 = draw(st.integers(1, 8))
        if kind == 0:
            lines.append(f"s = s {op} {c1};")
        elif kind == 1:
            lines.append(f"if (s {cmp} {c1}) s = s {op} {c2}; else s = s - 1;")
        elif kind == 2:
            lines.append(
                f"for (int i{k} = 0; i{k} < {c2}; i{k}++) s = s {op} i{k};"
            )
        elif kind == 3:
            lines.append(f"{{ int t{k} = a {op} {c1}; s = s + t{k}; }}")
        elif kind == 4:
            # Early-exit bound: the loop leaves through a break whose
            # condition depends on the accumulator.
            lines.append(
                f"for (int i{k} = 0; i{k} < {c2 + 4}; i{k}++) "
                f"{{ if (s {cmp} {c1}) break; s = s {op} i{k}; }}"
            )
        elif kind == 5:
            # Continue guard: only odd iterations update.
            lines.append(
                f"for (int i{k} = 0; i{k} < {c2}; i{k}++) "
                f"{{ if ((i{k} & 1) == 0) continue; s = s {op} {c1}; }}"
            )
        else:
            # Data-dependent trip count, always terminating.
            lines.append(
                f"int w{k} = s & 7; while (w{k} > 0) "
                f"{{ s = s {op} {c2}; w{k} = w{k} - 1; }}"
            )
    body = "\n            ".join(lines)
    return f"""
        int f(int a) {{
            {body}
            return s;
        }}
    """


class TestOptimizerProperties:
    @given(random_program(), st.integers(-100, 100))
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimization_preserves_behaviour(self, source, arg):
        baseline = compile_c(source)
        expected = Interpreter(baseline).call("f", [arg])
        optimized = compile_c(source)
        optimize_module(optimized)
        verify_module(optimized)
        assert Interpreter(optimized).call("f", [arg]) == expected

    @given(random_program())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimization_idempotent(self, source):
        module = compile_c(source)
        optimize_module(module)
        once = print_module(module)
        optimize_module(module)
        twice = print_module(module)
        assert once == twice

    @given(random_program())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimization_never_grows_code(self, source):
        module = compile_c(source)
        before = sum(1 for f in module.functions.values()
                     for _ in f.instructions())
        optimize_module(module)
        after = sum(1 for f in module.functions.values()
                    for _ in f.instructions())
        assert after <= before
