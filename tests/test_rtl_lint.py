"""Structural lint of every emitted kernel module (repro.vsim.lint).

The emitter must produce Verilog a synthesis front-end would accept:
every identifier declared, no silent width truncation, FSM cases unique
and covering every state, no multiply-driven or undriven nets.  This is
asserted for every worker module (with its callee hierarchy) of every
kernel under both replication policies, plus the parent.
"""

import pytest

from repro.frontend import compile_c
from repro.kernels import ALL_KERNELS
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.rtl import generate_verilog_hierarchy
from repro.transforms import optimize_module
from repro.vsim import lint_verilog

_CASES = []
for _spec in ALL_KERNELS:
    for _policy in [ReplicationPolicy.P1, ReplicationPolicy.NONE] + (
        [ReplicationPolicy.P2] if _spec.supports_p2 else []
    ):
        _CASES.append((_spec, _policy))


def _compile(spec, policy):
    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    return cgpa_compile(
        module, spec.accel_function, shapes=spec.shapes_for(module),
        policy=policy,
    )


@pytest.mark.parametrize(
    "spec,policy", _CASES,
    ids=[f"{s.name}-{p.name.lower()}" for s, p in _CASES],
)
class TestKernelModulesLintClean:
    def test_worker_modules_lint_clean(self, spec, policy):
        compiled = _compile(spec, policy)
        for task in compiled.result.tasks:
            issues = lint_verilog(generate_verilog_hierarchy(task))
            assert issues == [], f"{task.name}: {issues}"

    def test_parent_module_lints_clean(self, spec, policy):
        compiled = _compile(spec, policy)
        parent = compiled.result.parent
        issues = lint_verilog(generate_verilog_hierarchy(parent))
        assert issues == [], f"{parent.name}: {issues}"
