"""PDG construction and SCC classification tests.

These check the paper's central analysis result: on irregular pointer
loops, the traversal becomes a *replicable* (heavyweight) SCC, the update
work becomes *parallel* SCCs, and reductions become *sequential* SCCs.
"""

import pytest

from repro.analysis import (
    LoopInfo,
    PointsTo,
    ProgramDependenceGraph,
    RegionShapes,
    SccClass,
    Shape,
)
from repro.frontend import compile_c
from repro.interp import malloc_site_table
from repro.ir import Call, Load, Phi, Store
from repro.transforms import optimize_module

EM3D_SOURCE = """
typedef struct node {
    double value;
    int from_count;
    struct node** from_nodes;
    double* coeffs;
    struct node* next;
} node_t;
void* malloc(int n);

node_t* build(int n_a, int n_b, int degree) {
    node_t* b_head = 0;
    for (int i = 0; i < n_b; i++) {
        node_t* nb = (node_t*)malloc(sizeof(node_t));
        nb->value = i; nb->from_count = 0;
        nb->from_nodes = 0; nb->coeffs = 0;
        nb->next = b_head; b_head = nb;
    }
    node_t* a_head = 0;
    for (int i = 0; i < n_a; i++) {
        node_t* na = (node_t*)malloc(sizeof(node_t));
        na->value = 0.0;
        na->from_count = degree;
        na->from_nodes = (node_t**)malloc(degree * sizeof(node_t*));
        na->coeffs = (double*)malloc(degree * sizeof(double));
        node_t* cursor = b_head;
        for (int j = 0; j < degree; j++) {
            na->from_nodes[j] = cursor;
            na->coeffs[j] = 0.5;
            cursor = cursor->next;
            if (!cursor) cursor = b_head;
        }
        na->next = a_head; a_head = na;
    }
    return a_head;
}

void kernel(node_t* nodelist) {
    for ( ; nodelist; nodelist = nodelist->next) {
        for (int i = 0; i < nodelist->from_count; i++) {
            node_t* from = nodelist->from_nodes[i];
            double coeff = nodelist->coeffs[i];
            double value = from->value;
            nodelist->value -= coeff * value;
        }
    }
}

int main(void) {
    node_t* list = build(8, 8, 3);
    kernel(list);
    return 0;
}
"""


def build_em3d_pdg(shapes=None):
    module = compile_c(EM3D_SOURCE)
    optimize_module(module)
    kernel = module.get_function("kernel")
    loops = LoopInfo(kernel)
    outer = loops.top_level()[0]
    pt = PointsTo(module)
    if shapes is None:
        shapes = RegionShapes()
        for site in malloc_site_table(module):
            shapes.declare(site, Shape.LIST)
    return module, kernel, outer, ProgramDependenceGraph(outer, pt, shapes)


class TestEm3dClassification:
    def test_traversal_is_replicable_and_heavy(self):
        module, kernel, outer, pdg = build_em3d_pdg()
        traversal_phi = next(
            p for p in outer.header_phis() if p.type.is_pointer
        )
        scc = pdg.scc_of(traversal_phi)
        assert scc.classification is SccClass.REPLICABLE
        assert not scc.is_lightweight  # contains the ->next load

    def test_update_store_is_parallel(self):
        module, kernel, outer, pdg = build_em3d_pdg()
        store = next(i for i in kernel.instructions() if isinstance(i, Store))
        scc = pdg.scc_of(store)
        assert scc.classification is SccClass.PARALLEL

    def test_inner_loop_iv_is_parallel(self):
        # The inner loop's recurrence is not carried by the *outer* loop.
        module, kernel, outer, pdg = build_em3d_pdg()
        inner = LoopInfo(kernel).loops
        inner_loop = next(l for l in inner if l.parent is not None)
        iv_phi = next(p for p in inner_loop.header_phis() if p.type.is_integer)
        assert pdg.scc_of(iv_phi).classification is SccClass.PARALLEL

    def test_without_shape_facts_update_is_not_parallel(self):
        # Conservative shapes (CYCLIC): the store may revisit a node, so
        # the update gains a carried dependence.
        module, kernel, outer, pdg = build_em3d_pdg(shapes=RegionShapes())
        store = next(i for i in kernel.instructions() if isinstance(i, Store))
        assert pdg.scc_of(store).classification is not SccClass.PARALLEL

    def test_exit_branch_in_traversal_scc(self):
        module, kernel, outer, pdg = build_em3d_pdg()
        traversal_phi = next(p for p in outer.header_phis() if p.type.is_pointer)
        branch = outer.header.terminator
        assert pdg.scc_of(branch).index == pdg.scc_of(traversal_phi).index

    def test_summary_counts(self):
        module, kernel, outer, pdg = build_em3d_pdg()
        summary = pdg.summary()
        assert summary["replicable"] >= 1
        assert summary["parallel"] >= 3
        assert summary["sequential"] == 0  # em3d's loop body has no seq SCC


REDUCTION_SOURCE = """
void* malloc(int n);
int kernel(int* data, int n) {
    int best = -1;
    for (int i = 0; i < n; i++) {
        int v = data[i] * 3 - i;
        if (v > best) best = v;
    }
    return best;
}
int main(void) {
    int* d = (int*)malloc(64 * sizeof(int));
    for (int i = 0; i < 64; i++) d[i] = (i * 37) % 101;
    return kernel(d, 64);
}
"""


class TestReductionClassification:
    def test_max_reduction_is_replicable_not_parallel(self):
        module = compile_c(REDUCTION_SOURCE)
        optimize_module(module)
        kernel = module.get_function("kernel")
        loop = LoopInfo(kernel).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        best_phi = next(
            p for p in loop.header_phis()
            if any(u.opcode == "ret" or "select" in u.opcode for u in p.users)
            or len(loop.header_phis()) == 2
        )
        # Find the reduction phi: integer phi that is not the IV.
        from repro.analysis import basic_induction_variables
        ivs = basic_induction_variables(loop)
        red_phi = next(
            p for p in loop.header_phis() if id(p) not in ivs
        )
        scc = pdg.scc_of(red_phi)
        assert scc.classification is SccClass.REPLICABLE
        assert scc.has_internal_carried

    def test_iv_scc_is_replicable(self):
        module = compile_c(REDUCTION_SOURCE)
        optimize_module(module)
        kernel = module.get_function("kernel")
        loop = LoopInfo(kernel).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        from repro.analysis import basic_induction_variables
        ivs = basic_induction_variables(loop)
        assert len(ivs) == 1
        iv = next(iter(ivs.values()))
        scc = pdg.scc_of(iv.phi)
        assert scc.classification is SccClass.REPLICABLE
        assert scc.is_lightweight

    def test_data_load_is_parallel(self):
        module = compile_c(REDUCTION_SOURCE)
        optimize_module(module)
        kernel = module.get_function("kernel")
        loop = LoopInfo(kernel).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        load = next(i for i in loop.instructions() if isinstance(i, Load))
        assert pdg.scc_of(load).classification is SccClass.PARALLEL


SEQUENTIAL_STORE_SOURCE = """
void* malloc(int n);
void kernel(int* hist, int* data, int n) {
    for (int i = 0; i < n; i++) {
        int b = data[i] & 7;
        hist[b] += 1;
    }
}
int main(void) {
    int* hist = (int*)malloc(8 * sizeof(int));
    int* data = (int*)malloc(100 * sizeof(int));
    for (int i = 0; i < 100; i++) data[i] = i * 13;
    kernel(hist, data, 100);
    return hist[0];
}
"""


class TestSequentialClassification:
    def test_histogram_update_is_sequential(self):
        # hist[b] with data-dependent b: carried WAW/RAW -> sequential.
        module = compile_c(SEQUENTIAL_STORE_SOURCE)
        optimize_module(module)
        kernel = module.get_function("kernel")
        loop = LoopInfo(kernel).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        assert pdg.scc_of(store).classification is SccClass.SEQUENTIAL

    def test_affine_store_is_parallel(self):
        module = compile_c(
            """
            void* malloc(int n);
            void kernel(int* out, int* data, int n) {
                for (int i = 0; i < n; i++) out[i] = data[i] * 2;
            }
            int main(void) {
                int* out = (int*)malloc(40);
                int* data = (int*)malloc(40);
                kernel(out, data, 10);
                return out[0];
            }
            """
        )
        optimize_module(module)
        kernel = module.get_function("kernel")
        loop = LoopInfo(kernel).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        store = next(i for i in loop.instructions() if isinstance(i, Store))
        assert pdg.scc_of(store).classification is SccClass.PARALLEL


CALL_SOURCE = """
void* malloc(int n);
double score(double* row, double* center, int nf) {
    double s = 0.0;
    for (int j = 0; j < nf; j++) {
        double d = row[j] - center[j];
        s += d * d;
    }
    return s;
}
void kernel(double* rows, double* center, double* out, int n, int nf) {
    for (int i = 0; i < n; i++) {
        out[i] = score(rows + i * nf, center, nf);
    }
}
int main(void) {
    double* rows = (double*)malloc(20 * 4 * sizeof(double));
    double* center = (double*)malloc(4 * sizeof(double));
    double* out = (double*)malloc(20 * sizeof(double));
    kernel(rows, center, out, 20, 4);
    return (int)out[0];
}
"""


class TestCallClassification:
    def test_pure_call_is_parallel(self):
        # The K-means pattern: findNearestPoint-style read-only call.
        module = compile_c(CALL_SOURCE)
        optimize_module(module)
        kernel = module.get_function("kernel")
        loop = LoopInfo(kernel).top_level()[0]
        pdg = ProgramDependenceGraph(loop, PointsTo(module))
        call = next(
            i for i in loop.instructions()
            if isinstance(i, Call) and i.callee.name == "score"
        )
        assert pdg.scc_of(call).classification is SccClass.PARALLEL
