"""Simulator wall-clock: event-driven skip-ahead vs lockstep oracle.

The event-driven engine (the default) jumps the clock from wake event to
wake event instead of ticking every worker every cycle; both engines are
required to produce bit-identical ``SimReport``\\ s (pinned down by
``tests/test_engine_equivalence.py``).  This benchmark measures what the
skip-ahead actually buys: simulation-only wall-clock (compilation and
workload setup excluded) for every kernel under

* the paper-default cache (few stalls, modest skips), and
* a stall-heavy memory system (``miss_penalty=200``, 16 cache lines),
  where blocked workers dominate and the event engine shines.

Acceptance bar: identical cycle counts everywhere, and >= 3x wall-clock
speedup on at least one stall-dominated kernel.  Pass ``--json <path>``
to also write the timings as JSON (BENCH_sim_speed.json perf tracking).
"""

import time

from conftest import emit, emit_json

from repro.frontend import compile_c
from repro.harness.runner import setup_workload
from repro.hw import AcceleratorSystem, DirectMappedCache
from repro.kernels import ALL_KERNELS
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module

CONFIGS = [
    ("default", {}),
    ("stall_heavy", {"miss_penalty": 200, "n_lines": 16}),
]


def _compile(spec):
    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    return cgpa_compile(
        module, spec.accel_function, shapes=spec.shapes_for(module),
        policy=ReplicationPolicy.P1, n_workers=4, fifo_depth=16,
    )


def _timed_run(spec, compiled, engine, cache_kwargs):
    """Simulate once; returns (sim-only seconds, SimReport)."""
    kwargs = dict(cache_kwargs)
    kwargs.setdefault("ports", 8)
    memory, globals_, args = setup_workload(compiled.module, spec)
    system = AcceleratorSystem(
        compiled.module, memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(**kwargs),
        global_addresses=globals_,
        engine=engine,
    )
    start = time.perf_counter()
    sim = system.run(spec.measure_entry, args)
    return time.perf_counter() - start, sim


def test_sim_speed(benchmark, results_dir, json_path):
    compiled = {spec.name: _compile(spec) for spec in ALL_KERNELS}
    rows = []
    for config_name, cache_kwargs in CONFIGS:
        for spec in ALL_KERNELS:
            event_s, event = _timed_run(
                spec, compiled[spec.name], "event", cache_kwargs
            )
            lockstep_s, lockstep = _timed_run(
                spec, compiled[spec.name], "lockstep", cache_kwargs
            )
            # The whole point of the differential contract: skipping the
            # clock forward must not change a single reported number.
            assert event.cycles == lockstep.cycles, (config_name, spec.name)
            assert event.return_value == lockstep.return_value
            assert event.worker_stats == lockstep.worker_stats
            rows.append({
                "config": config_name,
                "kernel": spec.name,
                "cycles": event.cycles,
                "event_s": event_s,
                "lockstep_s": lockstep_s,
                "speedup": lockstep_s / event_s,
            })

    # The tracked quantity: one stall-heavy event-engine simulation.
    em3d = next(s for s in ALL_KERNELS if s.name == "em3d")
    benchmark.pedantic(
        lambda: _timed_run(em3d, compiled["em3d"], "event", CONFIGS[1][1]),
        rounds=1, iterations=1,
    )

    lines = [
        "Simulator wall-clock: event-driven vs lockstep (sim only)",
        "",
        f"{'config':<12s} {'kernel':<14s} {'cycles':>10s} "
        f"{'lockstep':>9s} {'event':>9s} {'speedup':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row['config']:<12s} {row['kernel']:<14s} {row['cycles']:>10d} "
            f"{row['lockstep_s']:>8.3f}s {row['event_s']:>8.3f}s "
            f"{row['speedup']:>7.2f}x"
        )
    stall_heavy = [r for r in rows if r["config"] == "stall_heavy"]
    best = max(stall_heavy, key=lambda r: r["speedup"])
    lines.append("")
    lines.append(
        f"best stall-heavy speedup: {best['speedup']:.2f}x ({best['kernel']})"
    )
    emit(results_dir, "sim_speed", "\n".join(lines))

    emit_json(results_dir, json_path, "sim_speed", {
        "rows": rows,
        "best_stall_heavy_speedup": best["speedup"],
        "best_stall_heavy_kernel": best["kernel"],
    })

    # Acceptance bar: the skip-ahead pays for itself where stalls dominate.
    assert best["speedup"] >= 3.0, best
