"""Table 2: the pipeline partition CGPA derives for each kernel.

Regenerates the stage-shape column of the paper's Table 2 (P1) and the
P2 column for the two kernels where replicated data-level parallelism
applies.  The benchmarked quantity is the full compiler flow (frontend ->
PDG -> partition) for all five kernels.
"""

from conftest import emit

from repro.frontend import compile_c
from repro.harness import format_table2, table2
from repro.kernels import ALL_KERNELS
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module


def compile_all_partitions():
    signatures = {}
    for spec in ALL_KERNELS:
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        compiled = cgpa_compile(
            module, spec.accel_function, shapes=spec.shapes_for(module),
            policy=ReplicationPolicy.P1,
        )
        signatures[spec.name] = compiled.signature
    return signatures


def test_table2_partitions(benchmark, all_runs, results_dir):
    signatures = benchmark.pedantic(compile_all_partitions, rounds=1, iterations=1)
    rows = table2(all_runs)
    emit(results_dir, "table2_partitions", format_table2(rows))
    for row in rows:
        assert row.p1_matches, f"{row.kernel}: {row.measured_p1} != {row.expected_p1}"
        assert row.p2_matches, f"{row.kernel}: P2 {row.measured_p2} != {row.expected_p2}"
    assert signatures  # compiler flow ran inside the benchmark
