"""Section 4.2 "Tradeoff": decoupled pipelining (P1) vs replicated
data-level parallelism (P2) for em3d and 1D-Gaussblur.

Paper: P1 outperforms P2 by 6% / 15% and dissipates 11% / 14% less
energy.  The benchmarked quantity is one P2 hardware simulation.
"""

from conftest import emit

from repro.harness import format_tradeoff, run_backend, tradeoff
from repro.kernels import GAUSSBLUR


def test_tradeoff_p1_vs_p2(benchmark, all_runs, results_dir):
    benchmark.pedantic(
        lambda: run_backend(GAUSSBLUR, "cgpa-p2"), rounds=1, iterations=1
    )
    rows = tradeoff(all_runs)
    emit(results_dir, "tradeoff_p1_p2", format_tradeoff(rows))

    assert len(rows) == 2
    for row in rows:
        # Shape: P1 is faster than P2 (by single-digit to low-double-digit
        # percent) and at most as energy-hungry.
        assert row.p2_cycles > row.p1_cycles, row.kernel
        assert 0.0 < row.perf_gain_pct < 45.0, row.kernel
        assert row.p1_energy_uj < row.p2_energy_uj, row.kernel
