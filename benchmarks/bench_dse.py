"""Design-space exploration throughput: pool scaling and cache warmth.

Two quantities matter for sweep ergonomics:

* **pool-size speedup** — the 12-point ks grid fanned over a 4-process
  pool vs. evaluated serially (both cold, no result cache).  Each grid
  point here is its own compile key, so this measures end-to-end
  per-point cost, not just simulation.
* **warm-cache speedup** — the same sweep re-run against a populated
  on-disk cache; every point must hit (zero re-simulation), which is the
  incrementality contract repeated sweeps rely on.

Both paths must produce byte-identical report JSON (the determinism
acceptance bar).  Pass ``--json <path>`` for BENCH_dse.json tracking.
"""

import json
import os
import time

from conftest import emit, emit_json

from repro.dse import ConfigSpace, Explorer, GridStrategy, ResultCache
from repro.kernels import KERNELS_BY_NAME

#: 2 policies x 3 worker counts x 2 FIFO depths = 12 points.
SPACE_KWARGS = dict(
    policies=["p1", "none"],
    n_workers=[1, 2, 4],
    fifo_depths=[4, 16],
)


def _sweep(spec, processes, cache=None):
    """One grid sweep; returns (wall seconds, SweepResult)."""
    with Explorer(
        spec, ConfigSpace(**SPACE_KWARGS), cache=cache, processes=processes
    ) as explorer:
        start = time.perf_counter()
        sweep = explorer.run(GridStrategy())
        return time.perf_counter() - start, sweep


def test_dse_speed(benchmark, results_dir, json_path, tmp_path):
    spec = KERNELS_BY_NAME["ks"]
    serial_s, serial = _sweep(spec, processes=1)
    pool_s, pooled = _sweep(spec, processes=4)

    cache = ResultCache(tmp_path / "dse-cache")
    cold_s, cold = _sweep(spec, processes=4, cache=cache)
    warm_s, warm = _sweep(spec, processes=4, cache=cache)

    # Determinism and incrementality contracts before any reporting.
    reports = [
        json.dumps(s.to_json_dict(), sort_keys=True)
        for s in (serial, pooled, cold, warm)
    ]
    assert len(set(reports)) == 1, "sweep reports diverged across modes"
    assert warm.cache_misses == 0, "warm sweep re-simulated points"
    assert warm.hit_rate == 1.0

    # The tracked quantity: one warm (fully cached) sweep.
    benchmark.pedantic(
        lambda: _sweep(spec, processes=4, cache=cache),
        rounds=1, iterations=1,
    )

    pool_speedup = serial_s / pool_s
    warm_speedup = cold_s / warm_s
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else os.cpu_count()
    lines = [
        "Design-space sweep throughput (ks, 12-point grid)",
        f"  host cores: {cores} (pool speedup is bounded by this)",
        "",
        f"{'mode':<22s} {'seconds':>8s} {'speedup':>9s}",
        f"{'serial, cold':<22s} {serial_s:>7.2f}s {'1.00x':>9s}",
        f"{'4 processes, cold':<22s} {pool_s:>7.2f}s {pool_speedup:>8.2f}x",
        f"{'4 processes, warm':<22s} {warm_s:>7.2f}s "
        f"{cold_s / warm_s:>8.2f}x (vs cold cached run)",
        "",
        f"cache: {warm.cache_hits}/{len(warm.results)} hits on re-run "
        f"({100 * warm.hit_rate:.0f}%)",
        f"frontier: {len(warm.frontier())} of {len(warm.results)} points",
    ]
    emit(results_dir, "dse_speed", "\n".join(lines))

    emit_json(results_dir, json_path, "dse_speed", {
        "host_cores": cores,
        "n_points": len(serial.results),
        "serial_s": serial_s,
        "pool_s": pool_s,
        "pool_speedup": pool_speedup,
        "cold_cached_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": warm_speedup,
        "warm_hit_rate": warm.hit_rate,
    }, kernel=spec.name)
