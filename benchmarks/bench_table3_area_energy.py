"""Table 3: ALUT area, power, energy and energy efficiency per kernel.

Shape targets from the paper: CGPA uses ~4.1x the ALUTs of LegUp (four
parallel workers) at ~20% geomean energy overhead.  The benchmarked
quantity is the area+power evaluation over precomputed simulations.
"""

from conftest import emit

from repro.harness import (
    alut_overhead_geomean,
    energy_overhead_geomean,
    format_table3,
    table3,
)


def test_table3_area_energy(benchmark, all_runs, results_dir):
    rows = benchmark.pedantic(lambda: table3(all_runs), rounds=1, iterations=1)
    emit(results_dir, "table3_area_energy", format_table3(rows))

    by_kernel = {}
    for row in rows:
        by_kernel.setdefault(row.kernel, {})[row.config] = row
    for kernel, configs in by_kernel.items():
        legup = configs["Legup"]
        cgpa = configs["CGPA (P1)"]
        # CGPA replicates the parallel stage 4x: area must grow 2.5x-6.5x.
        assert 2.5 < cgpa.aluts / legup.aluts < 6.5, kernel
        # CGPA burns more power (more hardware active)...
        assert cgpa.power_mw > legup.power_mw, kernel
        # ...but energy stays within 2x (it finishes much sooner).
        assert cgpa.energy_uj < 2.0 * legup.energy_uj, kernel

    assert 3.0 < alut_overhead_geomean(rows) < 5.5      # paper: ~4.1x
    assert 0.95 < energy_overhead_geomean(rows) < 1.55  # paper: ~1.20x
