"""Design-choice ablations beyond the paper's tables.

* FIFO depth: the decoupling that tolerates variable memory latency
  (Section 2.2) — depth 1 lock-steps the stages, the paper's 16 is ample.
* Cache miss penalty: pipelining hides memory latency, so CGPA should
  degrade *less* than LegUp as memory slows down.
* Replication policy: P1 heuristic vs never-replicate (NONE).
"""

from conftest import emit

from repro.harness import (
    fifo_depth_ablation,
    memory_system_ablation,
    miss_latency_ablation,
    prefetch_ablation,
    replication_policy_ablation,
)
from repro.kernels import EM3D, HASH_INDEXING, KS


def test_fifo_depth(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: fifo_depth_ablation(HASH_INDEXING, (1, 2, 4, 16, 64)),
        rounds=1, iterations=1,
    )
    lines = ["FIFO depth ablation (Hash-indexing, CGPA-P1)"]
    by_depth = {}
    for p in points:
        by_depth[p.value] = p.cycles
        lines.append(f"  depth {p.value:3d}: {p.cycles} cycles")
    emit(results_dir, "ablation_fifo_depth", "\n".join(lines))
    # Deeper FIFOs decouple the stages; depth 16 (the paper's choice)
    # captures nearly all of the benefit.
    assert by_depth[16] <= by_depth[1]
    assert by_depth[64] >= by_depth[16] * 0.9  # saturation


def test_miss_latency(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: miss_latency_ablation(EM3D, (8, 24, 64)), rounds=1, iterations=1
    )
    lines = ["Cache miss-penalty ablation (em3d)"]
    table = {}
    for p in points:
        backend, _ = p.knob.split(":")
        table[(backend, p.value)] = p.cycles
        lines.append(f"  {p.knob:22s} = {p.value:3d}: {p.cycles} cycles")
    legup_degradation = table[("legup", 64)] / table[("legup", 8)]
    cgpa_degradation = table[("cgpa-p1", 64)] / table[("cgpa-p1", 8)]
    lines.append(
        f"  degradation 8->64: legup {legup_degradation:.2f}x, "
        f"cgpa {cgpa_degradation:.2f}x"
    )
    emit(results_dir, "ablation_miss_latency", "\n".join(lines))
    # The decoupled pipeline tolerates slow memory at least as well as the
    # single FSM (Section 2.2 benefit 1).
    assert cgpa_degradation <= legup_degradation * 1.10


def test_memory_partitioning(benchmark, results_dir):
    # Appendix B.1: "private cache and memory partition techniques can be
    # applied" to scale past the shared-port bottleneck.
    points = benchmark.pedantic(
        lambda: memory_system_ablation(KS, (4, 8)), rounds=1, iterations=1
    )
    lines = ["Memory-system ablation (ks): shared 8-port vs private slices"]
    cycles = {}
    for p in points:
        cycles[(p.knob, p.value)] = p.cycles
        lines.append(f"  {p.knob:12s} workers={p.value}: {p.cycles} cycles")
    emit(results_dir, "ablation_memory_system", "\n".join(lines))
    # Both organisations must produce working accelerators; private slices
    # should not be dramatically worse despite being 4x smaller each.
    assert cycles[("mem:private", 8)] < 2.0 * cycles[("mem:shared", 8)]


def test_prefetching(benchmark, results_dir):
    # Appendix B.2 future work: a next-line prefetcher helps the streaming
    # Gaussblur rows but not the pointer-chasing em3d traversal.
    points = benchmark.pedantic(prefetch_ablation, rounds=1, iterations=1)
    lines = ["Next-line prefetch ablation (Appendix B.2 future work)"]
    cycles = {}
    for p in points:
        cycles[(p.kernel, p.value)] = p.cycles
        lines.append(f"  {p.kernel:14s} {p.knob:13s}: {p.cycles} cycles")
    emit(results_dir, "ablation_prefetch", "\n".join(lines))
    # Streaming kernel: prefetching never hurts and usually helps.
    assert cycles[("1D-Gaussblur", True)] <= cycles[("1D-Gaussblur", False)]
    # Pointer chasing: within noise either way (no sequential locality).
    ratio = cycles[("em3d", True)] / cycles[("em3d", False)]
    assert 0.95 < ratio < 1.05


def test_replication_policy(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: replication_policy_ablation(EM3D), rounds=1, iterations=1
    )
    lines = ["Replication-policy ablation (em3d)"]
    cycles = {}
    for p in points:
        cycles[p.value] = p.cycles
        lines.append(f"  policy {p.value:5s}: {p.cycles} cycles")
    emit(results_dir, "ablation_policy", "\n".join(lines))
    # The paper's P1 heuristic beats forcing replication (P2) on em3d.
    assert cycles["p1"] <= cycles["p2"]
