"""Shared fixtures: run every kernel on every backend once per session."""

import pathlib

import pytest

from repro.harness import run_all_kernels

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--json", action="store", default=None, metavar="PATH",
        help="also write machine-readable benchmark results (fig4 speedups)"
        " to PATH for BENCH_*.json perf tracking",
    )


@pytest.fixture(scope="session")
def json_path(request):
    """Target path for machine-readable results (None when not requested)."""
    return request.config.getoption("--json")


@pytest.fixture(scope="session")
def all_runs():
    """Simulations of all five kernels on mips/legup/cgpa-p1(/p2)."""
    return run_all_kernels()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir, name: str, text: str) -> None:
    """Print a report and archive it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
