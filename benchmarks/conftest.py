"""Shared fixtures: run every kernel on every backend once per session."""

import json
import pathlib

import pytest

from repro.harness import run_all_kernels

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--json", action="store", default=None, metavar="PATH",
        help="also write machine-readable benchmark results (fig4 speedups)"
        " to PATH for BENCH_*.json perf tracking",
    )


@pytest.fixture(scope="session")
def json_path(request):
    """Target path for machine-readable results (None when not requested)."""
    return request.config.getoption("--json")


@pytest.fixture(scope="session")
def all_runs():
    """Simulations of all five kernels on mips/legup/cgpa-p1(/p2)."""
    return run_all_kernels()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir, name: str, text: str) -> None:
    """Print a report and archive it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def emit_json(results_dir, json_path, figure: str, payload: dict,
              kernel: str | None = None) -> None:
    """Persist a bench payload as a ``bench`` run envelope.

    The measured numbers stay under the record's ``payload`` key; the
    envelope adds schema version, run id, timestamp and the config hash
    the obs query layer filters on.  Two copies are written:

    * ``json_path`` (when ``--json`` was passed) — the ``BENCH_*.json``
      perf-tracking form CI archives;
    * ``results_dir`` as an artifact-store root — one content-addressed
      envelope per run plus the append-only ``envelopes.jsonl`` journal,
      so ``python -m repro.harness obs query benchmarks/results`` sees
      bench trends alongside every other subsystem's runs (both are
      scratch output, not committed).
    """
    from repro.obs.emit import EnvelopeWriter, bench_envelope

    envelope = bench_envelope(figure, payload, kernel=kernel)
    EnvelopeWriter(results_dir).write(envelope)
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(envelope.to_dict(), fh, indent=2, sort_keys=True)
