"""Figure 4: loop speedups over the MIPS soft core.

Regenerates the bar chart's two series (LegUp and CGPA, normalised to the
MIPS core) plus the geomeans.  Shape targets from the paper: LegUp ~1.85x
geomean, CGPA ~6.0x geomean over MIPS and 3.3x (3.0x-3.8x) over LegUp.
The benchmarked quantity is one full CGPA hardware simulation (em3d).

Pass ``--json <path>`` to also write the speedup series as JSON, so the
perf trajectory across PRs is machine-readable (BENCH_*.json tracking).
"""

from conftest import emit, emit_json

from repro.harness import figure4, format_figure4, run_backend
from repro.kernels import EM3D


def test_figure4_speedups(benchmark, all_runs, results_dir, json_path):
    benchmark.pedantic(
        lambda: run_backend(EM3D, "cgpa-p1"), rounds=1, iterations=1
    )
    data = figure4(all_runs)
    emit(results_dir, "fig4_speedup", format_figure4(data))
    emit_json(results_dir, json_path, "fig4_speedup", {
        "kernels": [
            {
                "kernel": r.kernel,
                "legup_speedup": r.legup_speedup,
                "cgpa_speedup": r.cgpa_speedup,
                "paper_legup": r.paper_legup,
                "paper_cgpa": r.paper_cgpa,
                "mips_cycles": all_runs[r.kernel].results["mips"].cycles,
                "legup_cycles": all_runs[r.kernel].results["legup"].cycles,
                "cgpa_cycles": all_runs[r.kernel].results["cgpa-p1"].cycles,
            }
            for r in data.rows
        ],
        "geomean_legup": data.geomean_legup,
        "geomean_cgpa": data.geomean_cgpa,
        "geomean_cgpa_over_legup": data.geomean_cgpa_over_legup,
    })

    # Shape assertions: who wins, by roughly what factor.
    for row in data.rows:
        assert row.cgpa_speedup > row.legup_speedup, row.kernel
        assert row.cgpa_speedup / row.legup_speedup > 2.0, row.kernel
    assert 1.2 < data.geomean_legup < 2.6        # paper: 1.85x
    assert 4.0 < data.geomean_cgpa < 9.0         # paper: 6.0x
    assert 2.5 < data.geomean_cgpa_over_legup < 4.6  # paper: 3.3x
