"""Simulator wall-clock: specialized closure engine vs the event engine.

The specialized engine compiles each worker's FSM schedule into
generated Python closures (per-state dispatch resolved at build time,
operand slots pre-indexed, pure compute runs batched into one tick), so
the hot path stops walking ``Instruction`` objects.  The contract is
bit-identical ``SimReport``\\ s against the event engine (pinned by
``tests/test_specialized_engine.py``); this benchmark measures what the
specialization buys: simulation-only wall-clock (compilation, workload
setup and closure generation excluded) for every kernel under the
paper-default memory system.

Acceptance bar: identical reports everywhere, and >= 2x wall-clock
speedup over the event engine on at least 6 of the 9 kernels (the
second-wave workloads are small, so a couple may hover just under 2x
from fixed per-run overheads).  Pass ``--json <path>`` for
BENCH_sim_specialize.json perf tracking.
"""

import time

from conftest import emit, emit_json

from repro.frontend import compile_c
from repro.harness.runner import setup_workload
from repro.hw import AcceleratorSystem, DirectMappedCache
from repro.kernels import ALL_KERNELS
from repro.pipeline import ReplicationPolicy, cgpa_compile
from repro.transforms import optimize_module

#: Kernels on which the specialized engine must at least double the
#: event engine's simulation rate.
REQUIRED_2X_KERNELS = 6

#: Timed runs per (kernel, engine); the minimum is reported, so one
#: scheduler hiccup cannot fail the acceptance bar.
ROUNDS = 2


def _compile(spec):
    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    return cgpa_compile(
        module, spec.accel_function, shapes=spec.shapes_for(module),
        policy=ReplicationPolicy.P1, n_workers=4, fifo_depth=16,
    )


def _timed_run(spec, compiled, engine):
    """Simulate once; returns (sim-only seconds, SimReport)."""
    memory, globals_, args = setup_workload(compiled.module, spec)
    system = AcceleratorSystem(
        compiled.module, memory,
        channels=compiled.result.channels,
        cache=DirectMappedCache(ports=8),
        global_addresses=globals_,
        engine=engine,
    )
    start = time.perf_counter()
    sim = system.run(spec.measure_entry, args)
    return time.perf_counter() - start, sim


def _best_of(spec, compiled, engine):
    """min-of-ROUNDS timing (first round also warms the closure caches)."""
    runs = [_timed_run(spec, compiled, engine) for _ in range(ROUNDS)]
    return min(seconds for seconds, _ in runs), runs[0][1]


def test_sim_specialize(benchmark, results_dir, json_path):
    compiled = {spec.name: _compile(spec) for spec in ALL_KERNELS}
    rows = []
    for spec in ALL_KERNELS:
        event_s, event = _best_of(spec, compiled[spec.name], "event")
        special_s, special = _best_of(
            spec, compiled[spec.name], "specialized"
        )
        # Bit-identity first: a fast engine that drifts is worthless.
        assert special.cycles == event.cycles, spec.name
        assert special.return_value == event.return_value, spec.name
        assert special.worker_stats == event.worker_stats, spec.name
        assert special.stall_breakdown == event.stall_breakdown, spec.name
        rows.append({
            "kernel": spec.name,
            "cycles": event.cycles,
            "event_s": event_s,
            "specialized_s": special_s,
            "speedup": event_s / special_s,
        })

    # The tracked quantity: one specialized ks simulation.
    ks = next(s for s in ALL_KERNELS if s.name == "ks")
    benchmark.pedantic(
        lambda: _timed_run(ks, compiled["ks"], "specialized"),
        rounds=1, iterations=1,
    )

    lines = [
        "Simulator wall-clock: specialized closures vs event engine (sim only)",
        "",
        f"{'kernel':<14s} {'cycles':>10s} {'event':>9s} "
        f"{'specialized':>12s} {'speedup':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row['kernel']:<14s} {row['cycles']:>10d} "
            f"{row['event_s']:>8.3f}s {row['specialized_s']:>11.3f}s "
            f"{row['speedup']:>7.2f}x"
        )
    at_2x = [r for r in rows if r["speedup"] >= 2.0]
    lines.append("")
    lines.append(
        f">=2x on {len(at_2x)}/{len(rows)} kernels "
        f"(acceptance: {REQUIRED_2X_KERNELS})"
    )
    emit(results_dir, "sim_specialize", "\n".join(lines))

    emit_json(results_dir, json_path, "sim_specialize", {
        "rows": rows,
        "kernels_at_2x": len(at_2x),
        "required_at_2x": REQUIRED_2X_KERNELS,
    })

    # Acceptance bar: the closure compilation pays for itself broadly,
    # not on one cherry-picked workload.
    assert len(at_2x) >= REQUIRED_2X_KERNELS, rows
