"""Per-kernel accelerator scorecard over the full nine-kernel registry.

One paper-scale run of every registered kernel (the Table 2 five plus
the second wave) on the soft core, the LegUp-style baseline and the
CGPA P1 pipeline.  For each kernel the scorecard records cycles, ALUTs,
energy and the speedups over both baselines, and journals one ``bench``
run envelope per kernel into ``benchmarks/results`` — so
``python -m repro.harness obs query benchmarks/results --kind bench``
tracks per-kernel trends, and ``--json`` captures the aggregate for
BENCH_kernels.json perf tracking.

Unlike ``bench_fig4_speedup`` (which reproduces the paper's figure over
the paper's five kernels), this sweep is the second wave's home: the
irregular workloads have no published numbers, so the tracked claim is
directional — the pipeline must never lose to the LegUp baseline.
"""

from conftest import emit, emit_json

from repro.harness import geomean, run_kernel
from repro.kernels import ALL_KERNELS, PAPER_KERNELS


def test_kernel_scorecard(benchmark, results_dir, json_path):
    runs = {}

    def run_all():
        for spec in ALL_KERNELS:
            runs[spec.name] = run_kernel(spec, ("mips", "legup", "cgpa-p1"))
        return runs

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    paper_names = {spec.name for spec in PAPER_KERNELS}
    rows = []
    for spec in ALL_KERNELS:
        run = runs[spec.name]
        p1 = run.results["cgpa-p1"]
        rows.append({
            "kernel": spec.name,
            "tier": "paper" if spec.name in paper_names else "second-wave",
            "signature": p1.signature,
            "cycles": p1.cycles,
            "aluts": p1.aluts,
            "energy_uj": p1.energy_uj,
            "speedup_vs_mips": run.speedup("cgpa-p1"),
            "speedup_vs_legup": run.speedup("cgpa-p1", baseline="legup"),
            "area_vs_legup": p1.aluts / run.results["legup"].aluts,
        })
        # One envelope per kernel: the obs spine sees each workload's
        # trend line individually.
        emit_json(results_dir, None, "kernel_scorecard", rows[-1],
                  kernel=spec.name)

    lines = [
        "Per-kernel scorecard: CGPA P1 at paper scale (all nine kernels)",
        "",
        f"{'kernel':<14s} {'tier':<12s} {'stages':<7s} {'cycles':>9s} "
        f"{'ALUTs':>7s} {'energy':>9s} {'vs mips':>8s} {'vs legup':>9s}",
    ]
    for row in rows:
        lines.append(
            f"{row['kernel']:<14s} {row['tier']:<12s} "
            f"{row['signature']:<7s} {row['cycles']:>9d} "
            f"{row['aluts']:>7d} {row['energy_uj']:>7.1f}uJ "
            f"{row['speedup_vs_mips']:>7.2f}x "
            f"{row['speedup_vs_legup']:>8.2f}x"
        )
    lines.append("")
    lines.append(
        f"geomean vs mips : "
        f"{geomean([r['speedup_vs_mips'] for r in rows]):.2f}x"
    )
    lines.append(
        f"geomean vs legup: "
        f"{geomean([r['speedup_vs_legup'] for r in rows]):.2f}x"
    )
    emit(results_dir, "kernel_scorecard", "\n".join(lines))

    emit_json(results_dir, json_path, "kernel_scorecard", {
        "rows": rows,
        "geomean_vs_mips": geomean([r["speedup_vs_mips"] for r in rows]),
        "geomean_vs_legup": geomean([r["speedup_vs_legup"] for r in rows]),
    })

    # Directional acceptance: the pipeline never loses to either
    # baseline, on any kernel, paper or second wave.
    for row in rows:
        assert row["speedup_vs_mips"] > 1.0, row
        assert row["speedup_vs_legup"] > 1.0, row
