"""Appendix B.1: scalability with the parallel-worker count.

The paper fixes 4 workers (platform limit) but argues the exploitable
parallelism is larger; this sweep shows throughput scaling for em3d with
1..8 workers, with the sequential stage eventually limiting per Amdahl.
"""

from conftest import emit

from repro.harness import format_scalability, scalability
from repro.kernels import EM3D


def test_scalability_workers(benchmark, results_dir):
    points = benchmark.pedantic(
        lambda: scalability(EM3D, (1, 2, 4, 8)), rounds=1, iterations=1
    )
    emit(results_dir, "scalability", format_scalability(points))

    by_workers = {p.n_workers: p for p in points}
    # More workers never hurt on this kernel...
    assert by_workers[2].cycles < by_workers[1].cycles
    assert by_workers[4].cycles < by_workers[2].cycles
    # ...with meaningful scaling up to the paper's 4 workers.
    assert by_workers[4].speedup_vs_one > 2.0
    # Diminishing returns beyond (sequential stage + memory system).
    gain_2_to_4 = by_workers[2].cycles / by_workers[4].cycles
    gain_4_to_8 = by_workers[4].cycles / by_workers[8].cycles
    assert gain_4_to_8 < gain_2_to_4 + 0.25
