"""Chaos recovery: what crashes cost and what checkpoints save.

Two measurements against the fault-tolerance layer:

* **crash recovery** — the same fault-resilience sweep twice on a
  2-process fleet: clean, then with a ``kill-worker`` chaos plan that
  SIGKILLs a pool worker mid-task.  The supervised retry + pool respawn
  must recover to a byte-identical report; the tracked number is the
  recovery overhead (chaos wall / clean wall).
* **resume replay** — the same sweep twice against one checkpoint
  store: cold (every plan computed), then ``resume=True`` with a fresh
  store handle (every plan replayed from its checkpoint).  The tracked
  number is the replay speedup (cold wall / resumed wall), with the
  resumed report byte-identical to the cold one.

Both chaos events and checkpoints are deterministic, so the recovery
and replay paths are as reproducible as the clean path.  Pass ``--json
<path>`` for BENCH_chaos.json tracking.
"""

import json
import time

import pytest

from conftest import emit, emit_json

from repro.fleet import chaos
from repro.faults.sweep import resilience_sweep
from repro.kernels import KERNELS_BY_NAME
from repro.service.store import ArtifactStore

KERNEL = "ks"
N_PLANS = 6
SEED = 20140601  # DAC'14


def _sweep(**kwargs) -> tuple[float, str]:
    """One resilience sweep; returns (wall_s, canonical report JSON)."""
    spec = KERNELS_BY_NAME[KERNEL]
    start = time.perf_counter()
    report = resilience_sweep(
        spec, n_plans=N_PLANS, seed=SEED, processes=2, **kwargs
    )
    wall_s = time.perf_counter() - start
    return wall_s, json.dumps(report.to_dict(), sort_keys=True)


def test_chaos_recovery_and_resume(results_dir, json_path, tmp_path,
                                   monkeypatch):
    clean_wall, clean_json = _sweep()

    # -- crash recovery: SIGKILL one pool worker mid-sweep ----------------
    plan_path = tmp_path / "plan.json"
    chaos.write_plan(
        str(plan_path), [{"kind": "kill-worker", "task_index": 0}]
    )
    monkeypatch.setattr(chaos, "_PLAN_CACHE", None)
    monkeypatch.setenv(chaos.ENV_VAR, str(plan_path))
    chaos_wall, chaos_json = _sweep()
    monkeypatch.delenv(chaos.ENV_VAR)
    monkeypatch.setattr(chaos, "_PLAN_CACHE", None)
    assert (plan_path.parent / "plan.json.markers" / "ev0").exists(), (
        "chaos kill-worker event never fired"
    )
    assert chaos_json == clean_json, (
        "report diverged after worker crash + supervised retry"
    )

    # -- resume replay: checkpointed sweep, then a cold-reader resume -----
    ckpt_root = tmp_path / "ckpt"
    cold_wall, cold_json = _sweep(store=ArtifactStore(ckpt_root))
    resumed_wall, resumed_json = _sweep(
        store=ArtifactStore(ckpt_root), resume=True
    )
    assert resumed_json == cold_json, "resumed report diverged"
    assert cold_json == clean_json, "checkpointing perturbed the report"

    recovery_overhead = chaos_wall / clean_wall
    replay_speedup = cold_wall / resumed_wall
    lines = [
        f"chaos recovery + resume replay ({KERNEL}, {N_PLANS} plans, "
        f"2 processes)",
        "",
        f"{'run':<22s} {'wall':>8s}",
        f"{'clean':<22s} {clean_wall:>7.2f}s",
        f"{'kill-worker chaos':<22s} {chaos_wall:>7.2f}s "
        f"({recovery_overhead:.2f}x clean; byte-identical)",
        f"{'cold + checkpoints':<22s} {cold_wall:>7.2f}s",
        f"{'resumed':<22s} {resumed_wall:>7.2f}s "
        f"({replay_speedup:.1f}x faster; byte-identical)",
    ]
    emit(results_dir, "chaos_recovery", "\n".join(lines))

    emit_json(results_dir, json_path, "chaos_recovery", {
        "kernel": KERNEL,
        "plans": N_PLANS,
        "processes": 2,
        "clean_wall_s": clean_wall,
        "chaos_wall_s": chaos_wall,
        "recovery_overhead": recovery_overhead,
        "cold_wall_s": cold_wall,
        "resumed_wall_s": resumed_wall,
        "replay_speedup": replay_speedup,
        "byte_identical": True,
    }, kernel=KERNEL)

    # Replaying checkpoints must actually be cheaper than recomputing.
    if resumed_wall >= cold_wall:
        pytest.fail(
            f"resume replay ({resumed_wall:.2f}s) not faster than the "
            f"cold sweep ({cold_wall:.2f}s)"
        )
