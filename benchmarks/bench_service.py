"""Service load: mixed workload throughput, latency, and cache warmth.

Boots a real :func:`repro.service.app.start_service` instance (ephemeral
port, tmp store, 4 workers) and drives a 200-request mixed workload —
compile, simulate, and dse jobs over three kernels — from 8 concurrent
client threads, twice:

* **pass 1 (cold)** — only coalescing and the filling store dedupe the
  repeats; every unique request executes exactly once;
* **pass 2 (warm)** — the identical workload again; the acceptance bar
  is >= 95% of submissions served straight from the artifact store
  (in practice 100%: nothing executes twice).

Every unique artifact the service returns must be byte-identical to a
direct in-process :func:`repro.service.jobs.execute` run — the service
adds transport and scheduling, never semantics.  Pass ``--json <path>``
for BENCH_service.json tracking.
"""

import json
import random
import statistics
import threading
import time

from conftest import emit, emit_json

from repro.service import JobRequest, ServiceClient
from repro.service.app import ServiceConfig, start_service
from repro.service.jobs import execute

KERNELS = ["ks", "em3d", "Hash-indexing"]
N_REQUESTS = 200
N_CLIENTS = 8
SEED = 20140601  # DAC'14


def _unique_requests() -> list[JobRequest]:
    """The 18 distinct jobs the workload is drawn from."""
    requests = []
    for kernel in KERNELS:
        for n_workers in (1, 2, 4):
            requests.append(
                JobRequest.make("compile", kernel, {"n_workers": n_workers})
            )
        for n_workers in (2, 4):
            requests.append(
                JobRequest.make("simulate", kernel, {"n_workers": n_workers})
            )
        requests.append(
            JobRequest.make(
                "dse",
                kernel,
                {"strategy": "grid", "policies": ["p1"],
                 "n_workers": [1, 2], "fifo_depths": [4]},
            )
        )
    return requests


def _workload(unique: list[JobRequest]) -> list[JobRequest]:
    """200 requests: every unique job at least once, the rest repeats."""
    rng = random.Random(SEED)
    workload = list(unique)
    workload += [rng.choice(unique) for _ in range(N_REQUESTS - len(unique))]
    rng.shuffle(workload)
    return workload


def _drive(host, port, workload) -> tuple[float, list[float]]:
    """Fan the workload over N_CLIENTS threads; returns (wall_s, latencies)."""
    shards = [workload[i::N_CLIENTS] for i in range(N_CLIENTS)]
    latencies: list[float] = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def client_main(index: int, shard: list[JobRequest]) -> None:
        try:
            with ServiceClient(host, port, client_id=f"bench-{index}") as c:
                mine = []
                for request in shard:
                    start = time.perf_counter()
                    c.run(request, timeout=600, poll_s=0.02)
                    mine.append(time.perf_counter() - start)
                with lock:
                    latencies.extend(mine)
        except BaseException as exc:  # pragma: no cover - failure path
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=client_main, args=(i, shard))
        for i, shard in enumerate(shards)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - start
    if errors:
        raise errors[0]
    assert len(latencies) == len(workload)
    return wall_s, latencies


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def test_service_load(benchmark, results_dir, json_path, tmp_path):
    unique = _unique_requests()
    workload = _workload(unique)
    assert len(workload) == N_REQUESTS
    assert len({r.key for r in unique}) == len(unique)

    config = ServiceConfig(
        port=0, workers=4, store_root=str(tmp_path / "store"),
        rate_capacity=256, rate_refill_per_s=128,
    )
    with start_service(config) as handle:
        with ServiceClient(handle.host, handle.port) as probe:
            cold_wall, cold_lat = _drive(handle.host, handle.port, workload)
            cold_stats = probe.stats()

            warm_wall, warm_lat = _drive(handle.host, handle.port, workload)
            warm_stats = probe.stats()

            # Every artifact the service handed out is byte-identical to
            # a direct in-process execution of the same request.
            for request in unique:
                served = probe.artifact(request.key)
                direct = execute(request)
                assert json.dumps(served, sort_keys=True) == json.dumps(
                    direct, sort_keys=True
                ), f"service artifact diverged for {request.kind}/{request.kernel}"

        # The tracked quantity: one fully-warm request round trip.
        with ServiceClient(handle.host, handle.port) as timed:
            benchmark.pedantic(
                lambda: timed.run(unique[0]), rounds=1, iterations=1
            )

    # Nothing executed twice, cold pass included.
    queue_cold = cold_stats["queue"]
    assert queue_cold["executed"] == len(unique)
    assert queue_cold["failed"] == 0

    # Warm pass: every submission answered from the store (bar: >= 95%).
    submitted = warm_stats["queue"]["submitted"] - queue_cold["submitted"]
    cached = warm_stats["queue"]["cached"] - queue_cold["cached"]
    warm_served = cached / submitted
    assert submitted == N_REQUESTS
    assert warm_served >= 0.95, f"warm pass only {warm_served:.0%} store-served"
    assert warm_stats["queue"]["executed"] == queue_cold["executed"]

    store = warm_stats["store"]
    hit_rate = store["hit_rate"]
    lines = [
        "Service load (200-request mixed workload, 8 clients, 4 workers)",
        f"  kernels: {', '.join(KERNELS)}; "
        f"{len(unique)} unique jobs (compile/simulate/dse)",
        "",
        f"{'pass':<6s} {'wall':>7s} {'req/s':>7s} {'p50':>8s} {'p99':>8s}",
        f"{'cold':<6s} {cold_wall:>6.2f}s {N_REQUESTS / cold_wall:>7.1f} "
        f"{1e3 * _percentile(cold_lat, 0.50):>6.1f}ms "
        f"{1e3 * _percentile(cold_lat, 0.99):>6.1f}ms",
        f"{'warm':<6s} {warm_wall:>6.2f}s {N_REQUESTS / warm_wall:>7.1f} "
        f"{1e3 * _percentile(warm_lat, 0.50):>6.1f}ms "
        f"{1e3 * _percentile(warm_lat, 0.99):>6.1f}ms",
        "",
        f"executions: {queue_cold['executed']} "
        f"(of {2 * N_REQUESTS} submissions; nothing ran twice)",
        f"coalesced in flight: {queue_cold['coalesced']}",
        f"warm pass store-served: {warm_served:.0%}",
        f"store hit rate overall: {hit_rate:.0%} "
        f"({store['warm_hits']} warm / {store['cold_hits']} cold hits)",
    ]
    emit(results_dir, "service_load", "\n".join(lines))

    emit_json(results_dir, json_path, "service_load", {
        "kernels": KERNELS,
        "requests_per_pass": N_REQUESTS,
        "clients": N_CLIENTS,
        "unique_jobs": len(unique),
        "cold": {
            "wall_s": cold_wall,
            "throughput_rps": N_REQUESTS / cold_wall,
            "p50_ms": 1e3 * _percentile(cold_lat, 0.50),
            "p99_ms": 1e3 * _percentile(cold_lat, 0.99),
        },
        "warm": {
            "wall_s": warm_wall,
            "throughput_rps": N_REQUESTS / warm_wall,
            "p50_ms": 1e3 * _percentile(warm_lat, 0.50),
            "p99_ms": 1e3 * _percentile(warm_lat, 0.99),
        },
        "executed": queue_cold["executed"],
        "coalesced": queue_cold["coalesced"],
        "warm_served_ratio": warm_served,
        "store_hit_rate": hit_rate,
    })
