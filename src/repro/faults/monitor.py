"""Conservation-invariant monitoring for the accelerator simulator.

The simulator's correctness story leans on conservation laws: every FIFO
value pushed is popped, still queued, or flushed at a join; every worker
cycle lands in exactly one telemetry category; progress counters and
invocation counts only grow.  :class:`InvariantMonitor` checks those
laws every ``interval`` cycles (and once at end of run) and raises a
structured :class:`~repro.errors.InvariantViolationError` instead of
letting a corrupt simulator state produce silently wrong results.

Checks are read-only, so attaching a monitor never changes the simulated
history — both engines stay bit-identical with or without it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvariantViolationError

#: Default check cadence in cycles.
DEFAULT_INTERVAL = 4096


@dataclass(frozen=True)
class InvariantViolation:
    """One failed conservation check."""

    check: str
    subject: str
    expected: object
    actual: object
    cycle: int

    def describe(self) -> str:
        return (
            f"[cycle {self.cycle}] {self.check} violated for {self.subject}: "
            f"expected {self.expected}, got {self.actual}"
        )


class InvariantMonitor:
    """Periodic conservation checker attached to one accelerator system.

    The monitor holds the only cross-check state (previous progress and
    invocation readings for the monotonicity checks);
    ``AcceleratorSystem.run`` calls :meth:`start_run` so a reused system
    starts every run from a clean slate.
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.interval = interval
        self.checks_run = 0
        self._last_cycle = -1
        self._last_invocations = 0
        self._last_progress: dict[int, int] = {}

    def start_run(self) -> None:
        self.checks_run = 0
        self._last_cycle = -1
        self._last_invocations = 0
        self._last_progress.clear()

    # -- checking -----------------------------------------------------------

    def check(self, system, cycle: int, final: bool = False) -> None:
        """Verify every invariant against ``system`` after ``cycle`` cycles.

        Raises :class:`InvariantViolationError` listing *all* failed
        checks (not just the first), so a diagnosis shows the whole
        blast radius of a corrupted state.
        """
        violations: list[InvariantViolation] = []
        self._check_fifos(system, cycle, violations)
        self._check_workers(system, cycle, violations)
        self._check_monotone(system, cycle, violations)
        self.checks_run += 1
        if violations:
            lines = [
                f"{len(violations)} invariant violation(s) at cycle {cycle}:"
            ] + [f"  - {v.describe()}" for v in violations]
            raise InvariantViolationError("\n".join(lines), violations)

    def _check_fifos(self, system, cycle, violations) -> None:
        total_pushes = total_pops = 0
        for fifo in system.fifos.values():
            stats = fifo.stats
            total_pushes += stats.pushes
            total_pops += stats.pops
            occupancy = sum(len(q) for q in fifo.queues)
            # Value conservation: in == out + queued + flushed-at-join.
            expected = stats.pops + occupancy + stats.flushed
            if stats.pushes != expected:
                violations.append(InvariantViolation(
                    "fifo value conservation (pushes == pops + occupancy + flushed)",
                    fifo.name, expected, stats.pushes, cycle,
                ))
            for index, queue in enumerate(fifo.queues):
                if len(queue) > fifo.channel.depth:
                    violations.append(InvariantViolation(
                        "fifo occupancy bound (len(queue) <= depth)",
                        f"{fifo.name} queue {index}",
                        f"<= {fifo.channel.depth}", len(queue), cycle,
                    ))
            if stats.max_occupancy > fifo.channel.depth:
                violations.append(InvariantViolation(
                    "fifo max-occupancy bound",
                    fifo.name, f"<= {fifo.channel.depth}",
                    stats.max_occupancy, cycle,
                ))
            for name in ("pushes", "pops", "full_stall_cycles",
                         "empty_stall_cycles", "flushed"):
                value = getattr(stats, name)
                if value < 0:
                    violations.append(InvariantViolation(
                        "non-negative counter", f"{fifo.name}.{name}",
                        ">= 0", value, cycle,
                    ))
        # Token conservation across the worker/FIFO boundary.
        worker_pushes = sum(w.stats.fifo_pushes for w in system._workers)
        worker_pops = sum(w.stats.fifo_pops for w in system._workers)
        if worker_pushes != total_pushes:
            violations.append(InvariantViolation(
                "token conservation (worker pushes == fifo pushes)",
                "system", total_pushes, worker_pushes, cycle,
            ))
        if worker_pops != total_pops:
            violations.append(InvariantViolation(
                "token conservation (worker pops == fifo pops)",
                "system", total_pops, worker_pops, cycle,
            ))

    def _check_workers(self, system, cycle, violations) -> None:
        event_engine = system._scheduler is not None
        for worker in system._workers:
            stats = worker.stats
            # Cycle conservation against telemetry attribution: every
            # attributed cycle lands in exactly one category, and the
            # categories sum to the cycles attributed so far (the whole
            # clock under lockstep; up to ``synced_until`` under the
            # event engine, which batch-attributes skipped stall spans
            # only when the worker next wakes).
            expected = worker.synced_until if event_engine else cycle
            if stats.total_cycles != expected:
                violations.append(InvariantViolation(
                    "cycle conservation (sum of categories == attributed cycles)",
                    worker.name, expected, stats.total_cycles, cycle,
                ))
            for name, value in stats.breakdown().items():
                if value < 0:
                    violations.append(InvariantViolation(
                        "non-negative cycle category",
                        f"{worker.name}.{name}", ">= 0", value, cycle,
                    ))

    def _check_monotone(self, system, cycle, violations) -> None:
        if cycle < self._last_cycle:
            violations.append(InvariantViolation(
                "monotone clock", "system", f">= {self._last_cycle}",
                cycle, cycle,
            ))
        self._last_cycle = cycle
        if system.invocations < self._last_invocations:
            violations.append(InvariantViolation(
                "monotone invocation count", "system",
                f">= {self._last_invocations}", system.invocations, cycle,
            ))
        self._last_invocations = system.invocations
        for worker in system._workers:
            last = self._last_progress.get(id(worker))
            if last is not None and worker.progress < last:
                violations.append(InvariantViolation(
                    "monotone progress", worker.name, f">= {last}",
                    worker.progress, cycle,
                ))
            self._last_progress[id(worker)] = worker.progress
