"""Deterministic, seeded fault plans and their runtime injector.

A :class:`FaultPlan` is pure data: a seeded schedule of adversarial
events drawn from the taxonomy below.  A :class:`FaultInjector` applies
one plan to one simulation via the hooks the hardware models expose
(:mod:`repro.hw.cache`, :mod:`repro.hw.fifo`, :mod:`repro.hw.worker`).
Everything is deterministic given the seed, and — because both simulator
engines replay the exact same cycle-level history — a plan perturbs the
event-driven and lockstep engines bit-identically.

Fault taxonomy:

* :class:`MemLatencyFault` — every cache access issued inside the window
  takes ``extra`` additional cycles (DRAM pressure, row-buffer misses).
* :class:`CachePortStallFault` — the cache crossbar degrades to a single
  port for the window (arbitration storms).
* :class:`FifoBackpressureFault` — pushes to one FIFO buffer stall for
  the window, as if the downstream consumer wedged its dequeue side.
* :class:`WorkerHangFault` — one worker freezes permanently at its first
  progress-capable cycle at or after ``at_cycle`` (an FSM wedge).  The
  trigger waits for a cycle at which the worker *would* have advanced,
  so stall attribution up to the hang stays identical in both engines.
* :class:`FifoCorruptionFault` — the ``nth_push``-th value pushed
  through one FIFO buffer is bit-flipped (single-event upset on a BRAM).

Timing-only faults (the first three) must never change results — the
pipeline absorbs them with stall cycles.  Hangs must be caught by the
watchdog, corruption by end-to-end validation; the resilience sweep
(:mod:`repro.faults.sweep`) measures exactly that.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterable

#: Plan classes the generator knows how to draw.
PLAN_KINDS = ("timing", "hang", "corruption")


@dataclass(frozen=True)
class MemLatencyFault:
    """Cache accesses in ``[start, start+duration)`` take ``extra`` more cycles."""

    start: int
    duration: int
    extra: int

    kind = "mem_latency"
    timing_only = True


@dataclass(frozen=True)
class CachePortStallFault:
    """The cache crossbar serves one port in ``[start, start+duration)``."""

    start: int
    duration: int

    kind = "cache_port_stall"
    timing_only = True


@dataclass(frozen=True)
class FifoBackpressureFault:
    """Pushes to FIFO buffer #``channel_index`` stall in the window."""

    channel_index: int
    start: int
    duration: int

    kind = "fifo_backpressure"
    timing_only = True


@dataclass(frozen=True)
class WorkerHangFault:
    """Worker with ``seq == worker_seq`` freezes from ``at_cycle`` on."""

    worker_seq: int
    at_cycle: int

    kind = "worker_hang"
    timing_only = False


@dataclass(frozen=True)
class FifoCorruptionFault:
    """The ``nth_push``-th value through buffer #``channel_index`` is flipped."""

    channel_index: int
    nth_push: int
    xor_mask: int

    kind = "fifo_corruption"
    timing_only = False


_FAULT_TYPES = {
    cls.kind: cls
    for cls in (
        MemLatencyFault,
        CachePortStallFault,
        FifoBackpressureFault,
        WorkerHangFault,
        FifoCorruptionFault,
    )
}


@dataclass(frozen=True)
class PlanContext:
    """What the generator knows about the target system (from a fault-free
    baseline run), so drawn faults actually land inside the execution.

    ``fifo_pushes`` is the per-buffer push count of the baseline run, in
    the system's buffer order; a corruption fault drawn against it is
    guaranteed to fire.  ``n_workers`` counts every worker the baseline
    forked (including the top/wrapper worker, seq 0).
    """

    horizon: int
    n_workers: int = 1
    fifo_pushes: tuple[int, ...] = ()

    @property
    def n_fifos(self) -> int:
        return len(self.fifo_pushes)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of faults for one simulation run."""

    seed: int
    kind: str
    faults: tuple = ()

    @property
    def timing_only(self) -> bool:
        """True when the plan can only cost cycles, never correctness."""
        return all(f.timing_only for f in self.faults)

    def by_kind(self, kind: str) -> list:
        return [f for f in self.faults if f.kind == kind]

    def describe(self) -> str:
        if not self.faults:
            return "empty plan"
        return ", ".join(
            f"{f.kind}({', '.join(f'{k}={v}' for k, v in sorted(vars(f).items()))})"
            for f in self.faults
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kind": self.kind,
            "faults": [
                {"kind": f.kind, **vars(f)} for f in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        faults = []
        for entry in data["faults"]:
            entry = dict(entry)
            fault_cls = _FAULT_TYPES[entry.pop("kind")]
            faults.append(fault_cls(**entry))
        return cls(seed=data["seed"], kind=data["kind"], faults=tuple(faults))

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(cls, seed: int, kind: str, ctx: PlanContext) -> "FaultPlan":
        """Draw one plan of ``kind`` for a system described by ``ctx``.

        Deterministic: the same ``(seed, kind, ctx)`` always yields the
        same plan, independent of engine, platform, or hash seed.
        """
        if kind not in PLAN_KINDS:
            raise ValueError(f"unknown plan kind {kind!r}; expected {PLAN_KINDS}")
        rng = random.Random(seed)
        horizon = max(ctx.horizon, 16)
        faults: list = list(_draw_timing(rng, horizon, ctx))
        if kind == "hang" and ctx.n_workers > 1:
            # Prefer pipeline workers (seq >= 1): hanging one wedges its
            # FIFO neighbours, which is the scenario the watchdog must
            # name a worker *and* a FIFO for.
            seq = rng.randrange(1, ctx.n_workers)
            # Early-to-middle of the run: late draws can miss workers
            # that retire before the hang arms (reported as untriggered).
            at = rng.randrange(horizon // 8, max(horizon // 2, horizon // 8 + 1))
            faults.append(WorkerHangFault(worker_seq=seq, at_cycle=at))
        elif kind == "corruption" and ctx.n_fifos:
            candidates = [i for i, n in enumerate(ctx.fifo_pushes) if n > 0]
            if candidates:
                index = rng.choice(candidates)
                nth = rng.randrange(ctx.fifo_pushes[index])
                mask = rng.randrange(1, 1 << 20)
                faults.append(
                    FifoCorruptionFault(
                        channel_index=index, nth_push=nth, xor_mask=mask
                    )
                )
        return cls(seed=seed, kind=kind, faults=tuple(faults))


def _draw_timing(
    rng: random.Random, horizon: int, ctx: PlanContext
) -> Iterable:
    """1-3 latency windows, 0-2 port storms, 0-2 back-pressure bursts."""
    for _ in range(rng.randint(1, 3)):
        start = rng.randrange(horizon)
        yield MemLatencyFault(
            start=start,
            duration=rng.randint(1, max(horizon // 4, 1)),
            extra=rng.randint(1, 64),
        )
    for _ in range(rng.randint(0, 2)):
        yield CachePortStallFault(
            start=rng.randrange(horizon),
            duration=rng.randint(1, max(horizon // 8, 1)),
        )
    if ctx.n_fifos:
        for _ in range(rng.randint(0, 2)):
            yield FifoBackpressureFault(
                channel_index=rng.randrange(ctx.n_fifos),
                start=rng.randrange(horizon),
                duration=rng.randint(1, max(horizon // 8, 1)),
            )


# -- runtime injection ---------------------------------------------------------


class NullInjector:
    """Zero-overhead default: every hook is a no-op.

    The hardware models guard each hook behind ``injector.enabled`` (a
    plain attribute read), mirroring the telemetry ``NULL_SINK`` pattern,
    so a fault-free simulation pays one boolean check per site.
    """

    enabled = False

    def attach(self, system) -> None:
        pass

    def reset(self) -> None:
        pass

    def mem_extra(self, cycle: int) -> int:
        return 0

    def port_limited(self, cycle: int) -> bool:
        return False

    def fifo_blocked_until(self, fifo, cycle: int) -> int:
        return 0

    def note_backpressure_block(self, fifo, cycle: int) -> None:
        pass

    def corrupt_value(self, fifo, value):
        return value

    def hang_pending(self, worker, cycle: int) -> bool:
        return False

    def hang_triggered(self, worker) -> None:
        pass


#: Shared do-nothing injector; instrumented objects default to this.
NULL_INJECTOR = NullInjector()


class FaultInjector:
    """Applies one :class:`FaultPlan` to one simulation run.

    Holds the only mutable state of the fault layer (per-buffer push
    counters, the set of faults that actually fired);
    ``AcceleratorSystem.run`` resets and re-attaches it at the start of
    every run, so a reused system replays the plan identically.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._mem_windows = [
            (f.start, f.start + f.duration, f.extra, f)
            for f in plan.by_kind("mem_latency")
        ]
        self._port_windows = [
            (f.start, f.start + f.duration, f)
            for f in plan.by_kind("cache_port_stall")
        ]
        self._hangs = {f.worker_seq: f for f in plan.by_kind("worker_hang")}
        #: Resolved at attach time (channel_index -> concrete buffer).
        self._bp_by_channel: dict[int, list] = {}
        self._corruption_by_channel: dict[int, FifoCorruptionFault] = {}
        self._push_counts: dict[int, int] = {}
        #: Faults that observably fired during the current run.
        self.triggered: set = set()

    def attach(self, system) -> None:
        """Resolve channel indices against the system's buffer list."""
        self._bp_by_channel.clear()
        self._corruption_by_channel.clear()
        fifos = list(system.fifos.values())
        if not fifos:
            return
        for fault in self.plan.by_kind("fifo_backpressure"):
            channel_id = fifos[fault.channel_index % len(fifos)].channel.channel_id
            self._bp_by_channel.setdefault(channel_id, []).append(
                (fault.start, fault.start + fault.duration, fault)
            )
        for fault in self.plan.by_kind("fifo_corruption"):
            channel_id = fifos[fault.channel_index % len(fifos)].channel.channel_id
            self._corruption_by_channel[channel_id] = fault

    def reset(self) -> None:
        self._push_counts.clear()
        self.triggered.clear()

    # -- hooks (called from repro.hw) ---------------------------------------

    def mem_extra(self, cycle: int) -> int:
        extra = 0
        for start, end, amount, fault in self._mem_windows:
            if start <= cycle < end:
                extra += amount
                self.triggered.add(fault)
        return extra

    def port_limited(self, cycle: int) -> bool:
        for start, end, fault in self._port_windows:
            if start <= cycle < end:
                self.triggered.add(fault)
                return True
        return False

    def fifo_blocked_until(self, fifo, cycle: int) -> int:
        """Cycle at which injected back-pressure on ``fifo`` clears (0 = free).

        Deliberately side-effect free: the lockstep engine re-evaluates a
        blocked push every cycle while the event engine sleeps through
        the stall, so recording ``triggered`` here would diverge between
        them.  :meth:`note_backpressure_block` records it instead, at the
        block-transition tick both engines execute.
        """
        until = 0
        for start, end, _fault in self._bp_by_channel.get(
            fifo.channel.channel_id, ()
        ):
            if start <= cycle < end:
                until = max(until, end)
        return until

    def note_backpressure_block(self, fifo, cycle: int) -> None:
        """Record that an injected window blocked a push at ``cycle``."""
        for start, end, fault in self._bp_by_channel.get(
            fifo.channel.channel_id, ()
        ):
            if start <= cycle < end:
                self.triggered.add(fault)

    def corrupt_value(self, fifo, value):
        """Count one push event on ``fifo``; flip the value if scheduled."""
        fault = self._corruption_by_channel.get(fifo.channel.channel_id)
        if fault is None:
            return value
        count = self._push_counts.get(fifo.channel.channel_id, 0)
        self._push_counts[fifo.channel.channel_id] = count + 1
        if count != fault.nth_push:
            return value
        self.triggered.add(fault)
        return flip_value(value, fault.xor_mask)

    def hang_pending(self, worker, cycle: int) -> bool:
        fault = self._hangs.get(worker.seq)
        return fault is not None and cycle >= fault.at_cycle

    def hang_triggered(self, worker) -> None:
        self.triggered.add(self._hangs[worker.seq])


def flip_value(value, mask: int):
    """Deterministically bit-flip a simulated value.

    Integers are XORed with the mask.  Floats have mantissa bits of
    their IEEE-754 representation flipped (exponent and sign untouched,
    so the result stays finite and comparable).
    """
    if isinstance(value, bool):  # bools are ints; keep them boolean
        return not value
    if isinstance(value, int):
        return value ^ (mask or 1)
    bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
    # Shift the 20-bit mask into the mantissa's mid bits (26..45): large
    # enough to matter (relative error up to ~2^-7), but exponent and
    # sign stay untouched so the result remains finite and comparable.
    bits ^= ((mask or 1) & 0xFFFFF) << 26
    return struct.unpack("<d", struct.pack("<Q", bits))[0]
