"""Resilience sweep: inject seeded fault plans, verify graceful degradation.

For one kernel this module runs a fault-free baseline, derives a
:class:`~repro.faults.plan.PlanContext` from it, then replays the kernel
under ``n_plans`` seeded plans of each class
(:data:`~repro.faults.plan.PLAN_KINDS`):

* **timing** plans (latency / port / back-pressure faults) must leave
  the liveouts bit-identical to the interpreter oracle — the pipeline's
  FIFO decoupling absorbs them as stall cycles (the paper's Section 2.2
  claim, tested adversarially);
* **hang** plans must end in a :class:`~repro.errors.DeadlockError`
  whose watchdog diagnosis names the hung worker (detection);
* **corruption** plans are detected when the end-to-end validation (or
  the watchdog, when the flipped value derails control flow) catches
  them; silently masked flips are reported as such.

Everything is deterministic given ``(kernel, seed, n_plans)``, and the
report text is byte-identical across the simulator engines — the sweep
doubles as a differential test of the failure paths.

Plans are independent, so the sweep fans them out over the shared
:class:`~repro.fleet.FleetExecutor` (``processes``/``fleet``): plan
records come back in index order and the serial path runs the same
:func:`_run_plan_task`, so the report is byte-identical at any pool
size.  Each pool process compiles the sweep configuration once
(:func:`_harness_for`) and stamps out interned workload images per run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..errors import (
    CgpaError,
    CycleBudgetExceeded,
    DeadlockError,
    InvariantViolationError,
    SimulationError,
)
from ..fleet import FleetExecutor, interned_workload
from ..frontend import compile_c
from ..hw import AcceleratorSystem, DirectMappedCache
from ..interp import Interpreter
from ..kernels import KernelSpec
from ..pipeline import ReplicationPolicy, cgpa_compile
from ..transforms import optimize_module
from .monitor import InvariantMonitor
from .plan import PLAN_KINDS, FaultInjector, FaultPlan, PlanContext

#: Budget multiplier over the fault-free run: generous enough that any
#: timing fault the generator can draw still finishes, small enough that
#: a runaway run fails fast with CycleBudgetExceeded.
BUDGET_FACTOR = 64


@dataclass
class FaultRunRecord:
    """Outcome of one fault-injected simulation."""

    index: int
    kind: str
    plan: FaultPlan
    #: correct | corrupted-output | deadlock | timeout | invariant-violation
    outcome: str = "correct"
    cycles: int | None = None
    slowdown: float | None = None
    detected: bool = False
    triggered: bool = False
    diagnosis: str | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "plan": self.plan.to_dict(),
            "outcome": self.outcome,
            "cycles": self.cycles,
            "slowdown": self.slowdown,
            "detected": self.detected,
            "triggered": self.triggered,
            "diagnosis": self.diagnosis,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRunRecord":
        known = {f.name for f in dataclasses.fields(cls)}
        kept = {k: v for k, v in data.items() if k in known}
        kept["plan"] = FaultPlan.from_dict(kept["plan"])
        return cls(**kept)


@dataclass
class ResilienceReport:
    """Aggregated outcome of one resilience sweep."""

    kernel: str
    seed: int
    n_plans: int
    baseline_cycles: int
    oracle_checksum: float
    oracle_return: float | int | None = None
    records: list[FaultRunRecord] = field(default_factory=list)
    #: Plans answered from sweep checkpoints instead of re-running
    #: (``resume=True``).  Provenance, not content: excluded from
    #: :meth:`to_dict` and comparison so a resumed report stays
    #: byte-identical to an uninterrupted one.
    replayed: int = field(default=0, compare=False)

    def by_kind(self, kind: str) -> list[FaultRunRecord]:
        return [r for r in self.records if r.kind == kind]

    # -- aggregate counters -------------------------------------------------

    @property
    def timing_correct(self) -> int:
        return sum(1 for r in self.by_kind("timing") if r.outcome == "correct")

    @property
    def hangs_diagnosed(self) -> int:
        return sum(1 for r in self.by_kind("hang") if r.detected)

    @property
    def corruptions_triggered(self) -> int:
        return sum(1 for r in self.by_kind("corruption") if r.triggered)

    @property
    def corruptions_detected(self) -> int:
        return sum(1 for r in self.by_kind("corruption") if r.detected)

    def format(self) -> str:
        """Deterministic human-readable report (engine-independent)."""
        lines = [
            f"Resilience sweep: {self.kernel} "
            f"({self.n_plans} plans/class, seed {self.seed})",
            f"  fault-free baseline: {self.baseline_cycles} cycles, "
            f"oracle checksum {self.oracle_checksum}",
            "",
            f"  timing faults     : {self.timing_correct}/"
            f"{len(self.by_kind('timing'))} plans liveout-correct "
            "(graceful degradation)",
            f"  worker hangs      : {self.hangs_diagnosed}/"
            f"{len(self.by_kind('hang'))} diagnosed by the watchdog",
            f"  value corruption  : {self.corruptions_detected}/"
            f"{self.corruptions_triggered} triggered flips detected "
            f"({self.corruptions_triggered - self.corruptions_detected} "
            "silently masked)",
            "",
        ]
        header = f"  {'#':>3} {'class':<10} {'outcome':<19} {'cycles':>9} {'slowdown':>9}  detail"
        lines.append(header)
        for r in self.records:
            cycles = "-" if r.cycles is None else str(r.cycles)
            slowdown = "-" if r.slowdown is None else f"{r.slowdown:.2f}x"
            detail = ""
            if r.diagnosis:
                detail = r.diagnosis.splitlines()[0]
            elif r.kind != "timing" and not r.triggered:
                detail = "(fault never triggered)"
            lines.append(
                f"  {r.index:>3} {r.kind:<10} {r.outcome:<19} "
                f"{cycles:>9} {slowdown:>9}  {detail}".rstrip()
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready report form.

        .. deprecated::
            As a *standalone* report format.  This dict is now the
            ``payload`` of a ``faults`` :class:`~repro.obs.RunEnvelope`
            (see :func:`repro.obs.emit.faults_envelope`); the legacy
            artifact mirrors keep exactly this shape for compatibility.
        """
        return {
            "kernel": self.kernel,
            "seed": self.seed,
            "n_plans": self.n_plans,
            "baseline_cycles": self.baseline_cycles,
            "oracle_checksum": self.oracle_checksum,
            "oracle_return": self.oracle_return,
            "timing_correct": self.timing_correct,
            "hangs_diagnosed": self.hangs_diagnosed,
            "corruptions_triggered": self.corruptions_triggered,
            "corruptions_detected": self.corruptions_detected,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceReport":
        """Rebuild a report from :meth:`to_dict` output (or a ``faults``
        envelope payload).  The aggregate counters in the dict are
        derived state — they come back from the records, so
        :meth:`format` regenerates the original text byte-identically."""
        return cls(
            kernel=data["kernel"],
            seed=data["seed"],
            n_plans=data["n_plans"],
            baseline_cycles=data["baseline_cycles"],
            oracle_checksum=data["oracle_checksum"],
            oracle_return=data.get("oracle_return"),
            records=[
                FaultRunRecord.from_dict(r) for r in data.get("records", [])
            ],
        )


def plan_seeds(seed: int, n: int) -> list[int]:
    """The derived per-plan seeds for a sweep (deterministic, collision-free
    across the master-seed space by construction of :mod:`random`)."""
    import random

    rng = random.Random(seed)
    return [rng.randrange(1 << 32) for _ in range(n)]


class _SweepHarness:
    """Compiled state for one sweep configuration, built once per process.

    Holds the untransformed oracle module, the pipelined compilation, and
    the interpreter-oracle liveouts.  The oracle runs the *untransformed*
    module: cgpa_compile rewrites the accelerated function with
    fork/join/FIFO ops the functional interpreter does not execute.
    """

    def __init__(
        self,
        spec: KernelSpec,
        engine: str,
        n_workers: int,
        fifo_depth: int,
    ) -> None:
        self.spec = spec
        self.engine = engine
        plain = compile_c(spec.source, spec.name)
        optimize_module(plain)
        module = compile_c(spec.source, spec.name)
        optimize_module(module)
        self.compiled = cgpa_compile(
            module,
            spec.accel_function,
            shapes=spec.shapes_for(module),
            policy=ReplicationPolicy.P1,
            n_workers=n_workers,
            fifo_depth=fifo_depth,
        )
        # Interpreter oracle: the same workload run purely functionally.
        # Liveouts = the final memory state (the kernel's checksum) plus
        # the kernel's return value — kernels like ks report their result
        # only through the latter, so corruption detection must compare
        # both.
        memory, globals_, args = interned_workload(plain, spec)
        interp = Interpreter(plain, memory, global_addresses=globals_)
        self.oracle_return = interp.call(spec.measure_entry, args)
        self.oracle = float(interp.call(spec.check_function, []))

    def fresh_system(self, injector=None, monitor=None, budget=None):
        memory, globals_, args = interned_workload(
            self.compiled.module, self.spec
        )
        system = AcceleratorSystem(
            self.compiled.module,
            memory,
            channels=self.compiled.result.channels,
            cache=DirectMappedCache(ports=8),
            global_addresses=globals_,
            max_cycles=budget if budget is not None else 500_000_000,
            engine=self.engine,
            injector=injector,
            monitor=monitor,
        )
        return system, memory, globals_, args

    def checksum(self, memory, globals_) -> float:
        interp = Interpreter(
            self.compiled.module, memory, global_addresses=globals_
        )
        return float(interp.call(self.spec.check_function, []))

    def liveouts_match(self, sim, memory, globals_) -> bool:
        if self.checksum(memory, globals_) != self.oracle:
            return False
        return (
            sim.return_value is None
            or sim.return_value == self.oracle_return
        )


#: Per-process harness memo: one compilation per sweep configuration, no
#: matter how many plan tasks land on the process.
_HARNESS_MEMO: dict = {}

#: Harnesses kept per process before the memo is cleared.
_HARNESS_MEMO_ENTRIES = 8


def _harness_for(
    spec: KernelSpec, engine: str, n_workers: int, fifo_depth: int
) -> _SweepHarness:
    key = (spec.name, spec.source, engine, n_workers, fifo_depth)
    harness = _HARNESS_MEMO.get(key)
    if harness is None:
        if len(_HARNESS_MEMO) >= _HARNESS_MEMO_ENTRIES:
            _HARNESS_MEMO.clear()
        harness = _HARNESS_MEMO[key] = _SweepHarness(
            spec, engine, n_workers, fifo_depth
        )
    return harness


def _run_plan_task(task) -> FaultRunRecord:
    """Fleet task: run one fault plan against a fresh system.

    Takes plain picklable data; the per-process harness memo supplies the
    compiled modules and oracle liveouts.
    """
    (spec, engine, n_workers, fifo_depth, index, plan,
     baseline_cycles, budget, monitor_interval) = task
    harness = _harness_for(spec, engine, n_workers, fifo_depth)
    return _run_one(
        index, plan, harness.fresh_system, harness.liveouts_match,
        baseline_cycles, budget,
        monitor_interval=monitor_interval,
        entry=spec.measure_entry,
    )


def _checkpoint_key(
    spec: KernelSpec,
    engine: str,
    n_workers: int,
    fifo_depth: int,
    seed: int,
    n_plans: int,
    max_cycles: int | None,
    monitor_interval: int | None,
    index: int,
) -> str:
    """Content address of one plan's checkpoint record.

    Every knob that changes the plan or its simulation participates —
    including the engine, so event and lockstep sweeps sharing one store
    (CI does this) never replay each other's records.
    """
    from ..cost import COST_MODEL_VERSION
    from ..service.store import content_key

    return content_key({
        "kind": "faults-plan",
        "cost_model": COST_MODEL_VERSION,
        "kernel": spec.name,
        "source": spec.source,
        "setup_args": list(spec.setup_args),
        "engine": engine,
        "n_workers": n_workers,
        "fifo_depth": fifo_depth,
        "seed": seed,
        "n_plans": n_plans,
        "max_cycles": max_cycles,
        "monitor_interval": monitor_interval,
        "index": index,
    })


def resilience_sweep(
    spec: KernelSpec,
    n_plans: int = 8,
    seed: int = 0,
    engine: str = "event",
    n_workers: int = 4,
    fifo_depth: int = 16,
    max_cycles: int | None = None,
    monitor_interval: int | None = None,
    processes: int = 1,
    fleet: FleetExecutor | None = None,
    store=None,
    resume: bool = False,
    envelopes=None,
) -> ResilienceReport:
    """Run the full resilience sweep for one kernel.

    ``processes``/``fleet`` fan the per-plan runs out over the shared
    fleet executor; the report is byte-identical at any pool size.

    ``store`` (an :class:`~repro.service.ArtifactStore`) checkpoints
    every finished plan record the moment it lands; ``resume=True``
    replays checkpointed plans from the store instead of re-running them
    (``report.replayed`` counts them), so a SIGKILLed sweep restarted
    with the same arguments converges to a byte-identical report.
    ``envelopes`` journals the owned fleet's supervision events (and the
    resume event) as ``fleet`` run envelopes.
    """
    harness = _harness_for(spec, engine, n_workers, fifo_depth)

    # Fault-free hardware baseline (also the plan generator's context).
    system, memory, globals_, args = harness.fresh_system()
    baseline = system.run(spec.measure_entry, args)
    if not harness.liveouts_match(baseline, memory, globals_):
        raise SimulationError(
            f"{spec.name}: fault-free hardware run disagrees with the "
            f"interpreter oracle; refusing to measure resilience"
        )
    ctx = PlanContext(
        horizon=baseline.cycles,
        n_workers=len(baseline.worker_stats),
        fifo_pushes=tuple(
            stats.pushes for stats in baseline.fifo_stats.values()
        ),
    )
    budget = max_cycles or baseline.cycles * BUDGET_FACTOR + 10_000

    report = ResilienceReport(
        kernel=spec.name,
        seed=seed,
        n_plans=n_plans,
        baseline_cycles=baseline.cycles,
        oracle_checksum=harness.oracle,
        oracle_return=harness.oracle_return,
    )
    seeds = plan_seeds(seed, n_plans * len(PLAN_KINDS))
    tasks = []
    index = 0
    for kind in PLAN_KINDS:
        for _ in range(n_plans):
            plan = FaultPlan.generate(seeds[index], kind, ctx)
            tasks.append((
                spec, engine, n_workers, fifo_depth, index, plan,
                baseline.cycles, budget, monitor_interval,
            ))
            index += 1

    ckpt_keys = [
        _checkpoint_key(
            spec, engine, n_workers, fifo_depth, seed, n_plans,
            max_cycles, monitor_interval, i,
        )
        for i in range(len(tasks))
    ] if store is not None else []
    slots: list[FaultRunRecord | None] = [None] * len(tasks)
    if store is not None and resume:
        for i, key in enumerate(ckpt_keys):
            stored = store.get(key)
            if stored is not None:
                slots[i] = FaultRunRecord.from_dict(stored)
    report.replayed = sum(1 for r in slots if r is not None)
    pending = [tasks[i] for i, r in enumerate(slots) if r is None]

    def persist(_pos: int, record: FaultRunRecord) -> None:
        # Checkpoint each record the moment its plan finishes, so a
        # killed sweep loses at most the in-flight plans.
        slots[record.index] = record
        if store is not None:
            store.put(ckpt_keys[record.index], record.to_dict())

    owned = fleet is None
    if owned:
        fleet = FleetExecutor(
            processes, envelopes=envelopes,
            context={"subsystem": "faults", "kernel": spec.name},
        )
    try:
        if report.replayed:
            fleet.record_event(
                "resume", attempt=report.replayed,
                detail=(
                    f"replayed {report.replayed}/{len(tasks)} plan "
                    f"checkpoint(s); running {len(pending)}"
                ),
            )
        if pending:
            fleet.map(_run_plan_task, pending, on_result=persist)
    finally:
        if owned:
            fleet.close()
    assert all(r is not None for r in slots)
    report.records.extend(slots)  # type: ignore[arg-type]
    return report


def _run_one(
    index: int,
    plan: FaultPlan,
    fresh_system,
    liveouts_match,
    baseline_cycles: int,
    budget: int,
    monitor_interval: int | None,
    entry: str,
) -> FaultRunRecord:
    injector = FaultInjector(plan)
    monitor = InvariantMonitor(
        interval=monitor_interval
    ) if monitor_interval else InvariantMonitor()
    system, memory, globals_, args = fresh_system(
        injector=injector, monitor=monitor, budget=budget
    )
    record = FaultRunRecord(index=index, kind=plan.kind, plan=plan)
    try:
        sim = system.run(entry, args)
    except DeadlockError as exc:
        record.outcome = "deadlock"
        record.diagnosis = str(exc)
        diagnosis = exc.diagnosis
        hung = [f for f in injector.triggered if f.kind == "worker_hang"]
        record.detected = bool(
            hung and diagnosis is not None and diagnosis.root_hang is not None
        ) or (plan.kind == "corruption" and _corruption_fired(injector))
    except CycleBudgetExceeded as exc:
        record.outcome = "timeout"
        record.diagnosis = str(exc)
        record.detected = plan.kind != "timing" and _fault_fired(injector)
    except InvariantViolationError as exc:
        record.outcome = "invariant-violation"
        record.diagnosis = str(exc)
        record.detected = _fault_fired(injector)
    except CgpaError as exc:
        # Fail-stop crash (e.g. a corrupted pointer hit unmapped memory):
        # noisy, but detected by construction.
        record.outcome = "crash"
        record.diagnosis = str(exc).splitlines()[0]
        record.detected = _fault_fired(injector)
    else:
        record.cycles = sim.cycles
        record.slowdown = sim.cycles / baseline_cycles
        if liveouts_match(sim, memory, globals_):
            record.outcome = "correct"
        else:
            record.outcome = "corrupted-output"
            record.detected = True  # end-to-end validation caught it
    record.triggered = _fault_fired(injector)
    return record


def _fault_fired(injector: FaultInjector) -> bool:
    """Did any non-timing fault of the plan observably fire?"""
    if injector.plan.timing_only:
        return any(injector.triggered)
    return any(not f.timing_only for f in injector.triggered)


def _corruption_fired(injector: FaultInjector) -> bool:
    return any(f.kind == "fifo_corruption" for f in injector.triggered)
