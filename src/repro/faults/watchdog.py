"""Watchdog: structured deadlock / budget diagnosis for the simulator.

Both simulator engines used to die with a bare string ("hardware
deadlock at cycle N").  The watchdog replaces that with a wait-for-graph
analysis over the live workers:

* every blocked worker becomes a node, annotated with the FIFO operation
  it is stuck on and a depth/occupancy snapshot of that buffer;
* edges follow the hardware's wake rules — a producer blocked on a full
  buffer waits on that buffer's consumers, a consumer blocked on an
  empty buffer waits on its producers, a ``parallel_join`` waits on its
  loop group (producer/consumer sets are recovered statically from the
  ``produce``/``consume`` instructions of each worker's function);
* a cycle in that graph is reported as the suspected deadlock cycle; a
  hung worker (injected fault or wedged FSM — blocked on nothing while
  everything waits on it transitively) is reported as the root cause.

The same diagnosis is computed from either engine at the same cycle, so
the two remain byte-identical even in how they fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CycleBudgetExceeded, DeadlockError
from ..ir.instructions import Call, Consume, Produce, ProduceBroadcast
from ..telemetry.events import CycleCategory

#: Wait categories with no self-resolving wake: only another worker's
#: action (or nothing, ever) unblocks them.
BLOCKING_CATEGORIES = (
    CycleCategory.FIFO_FULL,
    CycleCategory.FIFO_EMPTY,
    CycleCategory.JOIN,
)


@dataclass
class BlockedWorker:
    """One node of the wait-for graph: a worker that cannot progress."""

    name: str
    seq: int
    reason: str  # "produce", "produce-broadcast", "consume", "join", "hung"
    fifo: str | None = None
    queue: int | None = None  # None for broadcast (needs space everywhere)
    occupancy: tuple[int, ...] = ()
    depth: int | None = None
    loop_id: int | None = None
    hung: bool = False

    def describe(self) -> str:
        if self.hung:
            return f"{self.name} hung (FSM frozen, waits on nothing)"
        if self.reason == "join":
            return f"{self.name} blocked in parallel_join on loop {self.loop_id}"
        where = f"queue {self.queue}" if self.queue is not None else "all queues"
        occ = "/".join(str(n) for n in self.occupancy)
        op = "push to" if self.reason.startswith("produce") else "pop from"
        return (
            f"{self.name} blocked on {op} {self.fifo} "
            f"({where}, occupancy [{occ}] of depth {self.depth})"
        )


@dataclass
class DeadlockDiagnosis:
    """Structured wait-for-graph report carried on :class:`DeadlockError`."""

    cycle: int
    blocked: list[BlockedWorker] = field(default_factory=list)
    #: worker names forming a mutual-wait cycle, in discovery order
    #: (edge i -> i+1, last wraps to first); empty when none was found.
    suspected_cycle: list[str] = field(default_factory=list)
    #: name of a hung worker everything else transitively waits on.
    root_hang: str | None = None

    def worker(self, name: str) -> BlockedWorker | None:
        for entry in self.blocked:
            if entry.name == name:
                return entry
        return None

    def format(self) -> str:
        """Render the full report; the first line keeps the legacy shape
        (``hardware deadlock at cycle N: ...``) for string-matching
        callers."""
        summary = ", ".join(
            f"{w.name} ({'hung' if w.hung else w.reason}"
            + (f" {w.fifo}" if w.fifo else "")
            + ")"
            for w in self.blocked
        ) or "no live workers"
        lines = [
            f"hardware deadlock at cycle {self.cycle}: no runnable worker "
            f"and no pending event; blocked: {summary}"
        ]
        for entry in self.blocked:
            lines.append(f"  - {entry.describe()}")
        if self.root_hang is not None:
            lines.append(f"  root cause: worker {self.root_hang} is hung")
        if self.suspected_cycle:
            lines.append(
                "  suspected cycle: " + " -> ".join(self.suspected_cycle)
                + f" -> {self.suspected_cycle[0]}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "blocked": [
                {
                    "name": w.name,
                    "reason": "hung" if w.hung else w.reason,
                    "fifo": w.fifo,
                    "queue": w.queue,
                    "occupancy": list(w.occupancy),
                    "depth": w.depth,
                }
                for w in self.blocked
            ],
            "suspected_cycle": list(self.suspected_cycle),
            "root_hang": self.root_hang,
        }


def _channel_io(worker) -> tuple[set[int], set[int]]:
    """Channel ids this worker's code can push to / pop from.

    Walks the worker's current call stack plus every function reachable
    through ``call`` instructions (the static task body), so the graph
    edges do not depend on where exactly each FSM stopped.
    """
    produces: set[int] = set()
    consumes: set[int] = set()
    seen: set[int] = set()
    stack = [frame.function for frame in worker._frames]
    while stack:
        function = stack.pop()
        if id(function) in seen or function.is_declaration:
            continue
        seen.add(id(function))
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, (Produce, ProduceBroadcast)):
                    produces.add(inst.channel.channel_id)
                elif isinstance(inst, Consume):
                    consumes.add(inst.channel.channel_id)
                elif isinstance(inst, Call):
                    stack.append(inst.callee)
    return produces, consumes


def _find_cycle(edges: dict[str, list[str]]) -> list[str]:
    """First cycle in a tiny digraph (deterministic DFS order)."""
    visiting: list[str] = []
    visited: set[str] = set()

    def dfs(node: str) -> list[str]:
        if node in visiting:
            return visiting[visiting.index(node):]
        if node in visited:
            return []
        visiting.append(node)
        for succ in edges.get(node, ()):
            found = dfs(succ)
            if found:
                return found
        visiting.pop()
        visited.add(node)
        return []

    for node in sorted(edges):
        found = dfs(node)
        if found:
            return found
    return []


class Watchdog:
    """Builds typed, diagnosable failures for a stuck accelerator system."""

    def diagnose(self, system, cycle: int) -> DeadlockDiagnosis:
        """Snapshot the wait-for graph of ``system`` at ``cycle``."""
        blocked: list[BlockedWorker] = []
        live = [w for w in system._workers if not w.done]
        for worker in live:
            if worker.hung:
                blocked.append(
                    BlockedWorker(worker.name, worker.seq, "hung", hung=True)
                )
                continue
            category = worker.last_category
            if category is CycleCategory.JOIN:
                blocked.append(
                    BlockedWorker(
                        worker.name, worker.seq, "join",
                        loop_id=worker._blocked_loop,
                    )
                )
                continue
            fifo = worker._blocked_fifo
            if fifo is None or category not in (
                CycleCategory.FIFO_FULL, CycleCategory.FIFO_EMPTY
            ):
                # Shouldn't happen at a genuine deadlock; keep the report
                # total instead of crashing inside the error path.
                blocked.append(
                    BlockedWorker(worker.name, worker.seq, category.value)
                )
                continue
            reason = "consume"
            if category is CycleCategory.FIFO_FULL:
                reason = (
                    "produce" if worker._blocked_index is not None
                    else "produce-broadcast"
                )
            blocked.append(
                BlockedWorker(
                    worker.name,
                    worker.seq,
                    reason,
                    fifo=fifo.name,
                    queue=worker._blocked_index,
                    occupancy=tuple(len(q) for q in fifo.queues),
                    depth=fifo.channel.depth,
                )
            )

        edges = self._wait_edges(system, live, blocked)
        cycle_names = _find_cycle(edges)
        root_hang = None
        for entry in blocked:
            if entry.hung:
                root_hang = entry.name
                break
        return DeadlockDiagnosis(
            cycle=cycle,
            blocked=blocked,
            suspected_cycle=cycle_names,
            root_hang=root_hang,
        )

    def _wait_edges(
        self, system, live, blocked: list[BlockedWorker]
    ) -> dict[str, list[str]]:
        """worker name -> names of workers whose action could unblock it."""
        io = {worker.name: _channel_io(worker) for worker in live}
        by_name = {worker.name: worker for worker in live}
        channel_of_fifo = {
            fifo.name: fifo.channel.channel_id
            for fifo in system.fifos.values()
        }
        edges: dict[str, list[str]] = {}
        for entry in blocked:
            targets: list[str] = []
            if entry.hung:
                edges[entry.name] = []
                continue
            if entry.reason == "join":
                group = system._loop_groups.get(entry.loop_id, [])
                targets = [w.name for w in group if not w.done]
            elif entry.fifo is not None:
                channel_id = channel_of_fifo.get(entry.fifo)
                # Full buffer: space comes from a consumer's pop.
                # Empty buffer: data comes from a producer's push.
                want_consumers = entry.reason.startswith("produce")
                for name, (produces, consumes) in io.items():
                    if name == entry.name:
                        continue
                    relevant = consumes if want_consumers else produces
                    if channel_id in relevant and name in by_name:
                        targets.append(name)
            edges[entry.name] = targets
        return edges

    # -- typed failures -----------------------------------------------------

    def deadlock(self, system, cycle: int) -> DeadlockError:
        diagnosis = self.diagnose(system, cycle)
        return DeadlockError(diagnosis.format(), diagnosis=diagnosis)

    def budget_exceeded(self, system, cycle: int) -> CycleBudgetExceeded:
        return CycleBudgetExceeded(system.max_cycles, cycle=cycle)


#: Shared stateless instance used by both engines.
WATCHDOG = Watchdog()
