"""Deterministic fault injection, invariant monitoring, and watchdog
diagnosis for the accelerator simulator.

Three cooperating pieces:

* :mod:`repro.faults.plan` — seeded :class:`FaultPlan` schedules
  (latency, port stalls, FIFO back-pressure, worker hangs, value
  corruption) and the :class:`FaultInjector` that applies one plan
  through the hardware models' injection hooks;
* :mod:`repro.faults.monitor` — :class:`InvariantMonitor`, periodic
  conservation checks that raise a structured report instead of letting
  a corrupt state produce silently wrong results;
* :mod:`repro.faults.watchdog` — :class:`Watchdog` wait-for-graph
  deadlock diagnosis, carried on the typed exceptions
  :class:`~repro.errors.DeadlockError` /
  :class:`~repro.errors.CycleBudgetExceeded`.

The resilience sweep lives in :mod:`repro.faults.sweep` (imported
explicitly, not re-exported here: it depends on the harness, which
depends on the hardware models, which depend on this package).
"""

from .monitor import DEFAULT_INTERVAL, InvariantMonitor, InvariantViolation
from .plan import (
    NULL_INJECTOR,
    PLAN_KINDS,
    CachePortStallFault,
    FaultInjector,
    FaultPlan,
    FifoBackpressureFault,
    FifoCorruptionFault,
    MemLatencyFault,
    NullInjector,
    PlanContext,
    WorkerHangFault,
    flip_value,
)
from .watchdog import (
    WATCHDOG,
    BlockedWorker,
    DeadlockDiagnosis,
    Watchdog,
)

__all__ = [
    "FaultPlan", "PlanContext", "FaultInjector", "NullInjector",
    "NULL_INJECTOR", "PLAN_KINDS",
    "MemLatencyFault", "CachePortStallFault", "FifoBackpressureFault",
    "WorkerHangFault", "FifoCorruptionFault", "flip_value",
    "InvariantMonitor", "InvariantViolation", "DEFAULT_INTERVAL",
    "Watchdog", "WATCHDOG", "DeadlockDiagnosis", "BlockedWorker",
]
