"""SSA construction: promote scalar ``alloca`` slots to registers.

Standard algorithm: place phi nodes at the iterated dominance frontier of
every store, then rename along a dominator-tree walk.  After this pass the
frontend's load/store-per-variable code becomes proper SSA, which is what
the PDG and the pipeline transform operate on (register dependences become
visible def-use edges instead of memory traffic).

Loads that can execute before any store see a zero of the slot's type —
deterministic stand-in for C's undefined uninitialised locals.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.types import FloatType, IntType, PointerType
from ..ir.values import Constant, Value
from ..analysis.dominators import DominatorTree, dominator_tree


def promote_allocas(function: Function, domtree: DominatorTree | None = None) -> int:
    """Run mem2reg on ``function``; returns the number of promoted slots."""
    domtree = domtree or dominator_tree(function)
    allocas = _promotable_allocas(function)
    if not allocas:
        return 0

    frontier = domtree.dominance_frontier()

    # 1. Phi placement at the iterated dominance frontier of each store.
    phi_owner: dict[int, Alloca] = {}  # id(phi) -> alloca it merges
    for alloca in allocas:
        def_blocks = {
            id(user.parent): user.parent
            for user in alloca.users
            if isinstance(user, Store) and user.parent is not None
        }
        placed: set[int] = set()
        work = list(def_blocks.values())
        while work:
            block = work.pop()
            for front in frontier.get(id(block), []):
                if id(front) in placed:
                    continue
                placed.add(id(front))
                phi = Phi(alloca.allocated_type, alloca.name)
                front.insert(0, phi)
                phi_owner[id(phi)] = alloca
                if id(front) not in def_blocks:
                    def_blocks[id(front)] = front
                    work.append(front)

    # 2. Renaming along the dominator tree.
    alloca_ids = {id(a) for a in allocas}
    current: dict[int, Value] = {}

    def default_value(alloca: Alloca) -> Value:
        t = alloca.allocated_type
        if isinstance(t, FloatType):
            return Constant(t, 0.0)
        return Constant(t, 0)

    def rename(block: BasicBlock, incoming: dict[int, Value]) -> None:
        local = dict(incoming)
        for inst in list(block.instructions):
            if isinstance(inst, Phi) and id(inst) in phi_owner:
                local[id(phi_owner[id(inst)])] = inst
            elif isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                alloca = inst.pointer
                value = local.get(id(alloca))
                if value is None:
                    value = default_value(alloca)  # type: ignore[arg-type]
                inst.replace_all_uses_with(value)
                inst.erase()
            elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                local[id(inst.pointer)] = inst.value
                inst.erase()
        # Fill phi arms in successors.
        for succ in block.successors():
            for phi in succ.phis():
                owner = phi_owner.get(id(phi))
                if owner is None:
                    continue
                value = local.get(id(owner))
                if value is None:
                    value = default_value(owner)
                phi.add_incoming(value, block)
        for child in domtree.children(block):
            rename(child, local)

    rename(function.entry, current)

    # 3. Remove the dead slots and prune degenerate phis.
    for alloca in allocas:
        if not alloca.users:
            alloca.erase()
    _prune_trivial_phis(function, set(phi_owner))
    return len(allocas)


def _promotable_allocas(function: Function) -> list[Alloca]:
    """Scalar slots whose address never escapes (only direct load/store)."""
    result = []
    for inst in function.entry.instructions:
        if not isinstance(inst, Alloca):
            continue
        if not isinstance(inst.allocated_type, (IntType, FloatType, PointerType)):
            continue
        promotable = True
        for user in inst.users:
            if isinstance(user, Load) and user.pointer is inst:
                continue
            if isinstance(user, Store) and user.pointer is inst and user.value is not inst:
                continue
            promotable = False
            break
        if promotable:
            result.append(inst)
    return result


def _prune_trivial_phis(function: Function, placed: set[int]) -> None:
    """Remove phis whose arms are all the same value (or self-references)."""
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                if id(phi) not in placed:
                    continue
                distinct = {
                    id(v) for v in phi.operands if v is not phi
                }
                values = [v for v in phi.operands if v is not phi]
                if len(distinct) == 1:
                    phi.replace_all_uses_with(values[0])
                    phi.erase()
                    changed = True
                elif not phi.users:
                    phi.erase()
                    changed = True
