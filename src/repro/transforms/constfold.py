"""Constant folding and algebraic simplification.

Shares its arithmetic semantics with the interpreter
(:data:`repro.ir.instructions.INT_BINOP_FUNCS` etc.) so folding can never
change observable behaviour.
"""

from __future__ import annotations

from ..interp.memory import round_f32, to_unsigned, wrap_int
from ..ir.function import Function
from ..ir.instructions import (
    FCMP_FUNCS,
    FLOAT_BINOP_FUNCS,
    ICMP_FUNCS,
    INT_BINOP_FUNCS,
    BinaryOp,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    Select,
)
from ..ir.types import FloatType, IntType
from ..ir.values import Constant, Value


def fold_constants(function: Function) -> int:
    """Fold instructions whose operands are constants; returns fold count."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                replacement = _fold(inst)
                if replacement is not None:
                    inst.replace_all_uses_with(replacement)
                    if not inst.users:
                        inst.erase()
                    folded += 1
                    changed = True
    return folded


def _fold(inst: Instruction) -> Value | None:
    if isinstance(inst, BinaryOp):
        return _fold_binop(inst)
    if isinstance(inst, ICmp) and _both_const(inst):
        a, b = (op.value for op in inst.operands)
        if inst.pred.startswith("u"):
            bits = inst.operands[0].type.bits  # type: ignore[union-attr]
            a, b = to_unsigned(int(a), bits), to_unsigned(int(b), bits)
        return Constant(inst.type, int(ICMP_FUNCS[inst.pred](a, b)))
    if isinstance(inst, FCmp) and _both_const(inst):
        a, b = (op.value for op in inst.operands)
        return Constant(inst.type, int(FCMP_FUNCS[inst.pred](a, b)))
    if isinstance(inst, Cast) and isinstance(inst.value, Constant):
        return _fold_cast(inst)
    if isinstance(inst, Select) and isinstance(inst.operands[0], Constant):
        return inst.operands[1] if inst.operands[0].value else inst.operands[2]
    return None


def _both_const(inst: Instruction) -> bool:
    return all(isinstance(op, Constant) for op in inst.operands)


def _fold_binop(inst: BinaryOp) -> Value | None:
    lhs, rhs = inst.lhs, inst.rhs
    op = inst.opcode
    if isinstance(lhs, Constant) and isinstance(rhs, Constant):
        if op in FLOAT_BINOP_FUNCS:
            if op == "fdiv" and rhs.value == 0.0:
                return None
            result = FLOAT_BINOP_FUNCS[op](lhs.value, rhs.value)
            if isinstance(inst.type, FloatType) and inst.type.bits == 32:
                result = round_f32(result)
            return Constant(inst.type, result)
        bits = inst.type.bits  # type: ignore[union-attr]
        a, b = int(lhs.value), int(rhs.value)
        if op in ("udiv", "urem", "lshr"):
            a, b = to_unsigned(a, bits), to_unsigned(b, bits)
        if op in ("sdiv", "srem", "udiv", "urem") and b == 0:
            return None  # leave the trap in place
        return Constant(inst.type, wrap_int(INT_BINOP_FUNCS[op](a, b), bits))
    # Algebraic identities with one constant operand.
    return _fold_identity(inst)


def _fold_identity(inst: BinaryOp) -> Value | None:
    lhs, rhs = inst.lhs, inst.rhs
    op = inst.opcode
    if isinstance(rhs, Constant):
        v = rhs.value
        if op in ("add", "sub", "or", "xor", "shl", "ashr", "lshr") and v == 0:
            return lhs
        if op in ("mul",) and v == 1:
            return lhs
        if op in ("sdiv", "udiv") and v == 1:
            return lhs
        if op == "mul" and v == 0:
            return Constant(inst.type, 0)
        if op == "and" and v == 0:
            return Constant(inst.type, 0)
        if op == "fadd" and v == 0.0:
            return lhs
        if op == "fmul" and v == 1.0:
            return lhs
    if isinstance(lhs, Constant):
        v = lhs.value
        if op in ("add", "or", "xor") and v == 0:
            return rhs
        if op == "mul" and v == 1:
            return rhs
        if op == "mul" and v == 0:
            return Constant(inst.type, 0)
        if op == "and" and v == 0:
            return Constant(inst.type, 0)
    return None


def _fold_cast(inst: Cast) -> Value | None:
    value = inst.value.value  # type: ignore[union-attr]
    op = inst.opcode
    target = inst.type
    if op == "trunc":
        return Constant(target, wrap_int(int(value), target.bits))  # type: ignore[union-attr]
    if op == "zext":
        return Constant(target, to_unsigned(int(value), inst.value.type.bits))  # type: ignore[union-attr]
    if op == "sext":
        return Constant(target, int(value))
    if op == "sitofp":
        result = float(value)
        if isinstance(target, FloatType) and target.bits == 32:
            result = round_f32(result)
        return Constant(target, result)
    if op == "fptosi":
        return Constant(target, wrap_int(int(value), target.bits))  # type: ignore[union-attr]
    if op == "fpext":
        return Constant(target, float(value))
    if op == "fptrunc":
        return Constant(target, round_f32(float(value)))
    if op in ("bitcast", "inttoptr", "ptrtoint"):
        return Constant(target, value)
    return None
