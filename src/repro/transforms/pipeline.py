"""The standard optimization pipeline run before CGPA's analyses.

Mirrors the paper's "a set of common optimization passes such as dead code
elimination, strength reduction, and scalar optimizations are applied
before generating the actual pipeline" (Section 3.3).
"""

from __future__ import annotations

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.function import Function
from ..ir.module import Module
from ..ir.verifier import verify_function
from .constfold import fold_constants
from .dce import eliminate_dead_code
from .mem2reg import promote_allocas
from .simplify_cfg import simplify_cfg


def optimize_function(function: Function, verify: bool = True) -> None:
    """mem2reg + folding + DCE + CFG cleanup, to a fixed point."""
    remove_unreachable_blocks(function)
    simplify_cfg(function)
    promote_allocas(function)
    for _ in range(4):
        changed = 0
        changed += fold_constants(function)
        changed += eliminate_dead_code(function)
        changed += simplify_cfg(function)
        if not changed:
            break
    if verify:
        verify_function(function)


def optimize_module(module: Module, verify: bool = True) -> None:
    """Run the standard optimization pipeline on every defined function."""

    for function in module.functions.values():
        if not function.is_declaration:
            optimize_function(function, verify=verify)
