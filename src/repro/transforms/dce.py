"""Aggressive dead-code elimination (mark and sweep).

Roots are instructions whose effects are observable: terminators, stores,
calls and CGPA primitives.  Everything else is live only if a live
instruction (transitively) uses it.  Mark-and-sweep removes *webs* of dead
code — in particular the mutually-referencing phi cycles that SSA
construction can leave behind when a variable is dead across iterations.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Call, Instruction
from ..ir.values import Value


def eliminate_dead_code(function: Function) -> int:
    """Remove instructions not reachable from observable roots."""
    live: set[int] = set()
    work: list[Instruction] = []

    for block in function.blocks:
        for inst in block.instructions:
            if inst.is_terminator or inst.has_side_effects or isinstance(inst, Call):
                live.add(id(inst))
                work.append(inst)

    while work:
        inst = work.pop()
        for op in inst.operands:
            if isinstance(op, Instruction) and id(op) not in live:
                live.add(id(op))
                work.append(op)

    removed = 0
    for block in function.blocks:
        for inst in reversed(list(block.instructions)):
            if id(inst) in live:
                continue
            # Break use cycles among dead instructions before erasing.
            inst.drop_operands()
            removed += 1
    for block in function.blocks:
        for inst in reversed(list(block.instructions)):
            if id(inst) not in live:
                for user in list(inst.users):
                    user.drop_operands()
                block.remove(inst)
                inst.drop_operands()
    return removed
