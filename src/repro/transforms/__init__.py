"""Scalar IR transforms: SSA construction, folding, DCE, CFG cleanup."""

from .constfold import fold_constants
from .dce import eliminate_dead_code
from .mem2reg import promote_allocas
from .pipeline import optimize_function, optimize_module
from .simplify_cfg import simplify_cfg

__all__ = [
    "promote_allocas", "eliminate_dead_code", "fold_constants",
    "simplify_cfg", "optimize_function", "optimize_module",
]
