"""CFG simplification: fold constant branches, thread empty blocks, merge
straight-line chains, drop unreachable blocks.

The frontend generates many single-jump blocks (dead blocks after
``return``, empty merge blocks); cleaning them up keeps the PDG small and
the generated FSMs free of empty states.
"""

from __future__ import annotations

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import CondBranch, Jump, Phi
from ..ir.values import Constant


def simplify_cfg(function: Function) -> int:
    """Run simplifications to a fixed point; returns a change count."""
    total = 0
    changed = True
    while changed:
        changed = False
        changed |= _fold_constant_branches(function) > 0
        changed |= remove_unreachable_blocks(function) > 0
        changed |= _skip_empty_blocks(function) > 0
        changed |= _merge_chains(function) > 0
        if changed:
            total += 1
    return total


def _fold_constant_branches(function: Function) -> int:
    count = 0
    for block in function.blocks:
        term = block.terminator
        if not isinstance(term, CondBranch):
            continue
        if isinstance(term.cond, Constant):
            taken = term.if_true if term.cond.value else term.if_false
            skipped = term.if_false if term.cond.value else term.if_true
            if skipped is not taken:
                for phi in skipped.phis():
                    phi.remove_incoming(block)
            term.erase()
            block.append(Jump(taken))
            count += 1
        elif term.if_true is term.if_false:
            target = term.if_true
            term.erase()
            block.append(Jump(target))
            count += 1
    return count


def _skip_empty_blocks(function: Function) -> int:
    """Rewire branches around blocks that only jump elsewhere."""
    count = 0
    for block in list(function.blocks):
        if block is function.entry:
            continue
        if len(block.instructions) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Jump):
            continue
        target = term.target
        if target is block:
            continue
        # A phi in the target distinguishing this block from our preds
        # blocks the rewrite unless every pred contributes the same value.
        preds = block.predecessors()
        if not preds:
            continue
        if target.phis():
            if not _can_retarget_phis(block, preds, target):
                continue
            for phi in target.phis():
                value = phi.incoming_for(block)
                phi.remove_incoming(block)
                for pred in preds:
                    phi.add_incoming(value, pred)
        for pred in preds:
            pred.terminator.replace_operand(block, target)  # type: ignore[union-attr]
        term.erase()
        function.remove_block(block)
        count += 1
    return count


def _can_retarget_phis(
    block: BasicBlock, preds: list[BasicBlock], target: BasicBlock
) -> bool:
    for pred in preds:
        for succ in pred.successors():
            if succ is target:
                # pred already reaches target directly; retargeting would
                # create a duplicate edge with ambiguous phi arms.
                return False
    return True


def _merge_chains(function: Function) -> int:
    """Merge ``a -> b`` when a jumps only to b and b has no other preds."""
    count = 0
    changed = True
    while changed:
        changed = False
        for block in list(function.blocks):
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            succ = term.target
            if succ is function.entry or succ is block:
                continue
            preds = succ.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            if succ.phis():
                for phi in list(succ.phis()):
                    phi.replace_all_uses_with(phi.incoming_for(block))
                    phi.erase()
            term.erase()
            for inst in list(succ.instructions):
                succ.remove(inst)
                block.instructions.append(inst)
                inst.parent = block
            # Successor blocks' phis must now name `block` as their pred.
            for far in block.successors():
                for phi in far.phis():
                    phi.replace_incoming_block(succ, block)
            function.remove_block(succ)
            succ.replace_all_uses_with(block)
            changed = True
            count += 1
    return count
