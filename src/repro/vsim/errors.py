"""Error types for the Verilog subset simulator."""

from __future__ import annotations

from ..errors import CgpaError


class VsimError(CgpaError):
    """Base class for all vsim errors."""


class VsimParseError(VsimError):
    """Source text is outside the emitter's Verilog subset."""


class VsimElabError(VsimError):
    """Hierarchy elaboration failed (unknown module, bad connection, ...)."""


class VsimRuntimeError(VsimError):
    """Simulation-time failure (combinational loop, unknown signal, ...)."""
