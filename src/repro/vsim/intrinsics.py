"""Bit-exact simulation models for the emitter's operator cores.

The emitter maps floating-point IR operations onto vendor-IP operator
cores, written as function calls (``fp_add_64(a, b)``) in the generated
Verilog.  vsim evaluates them here with IEEE-754 semantics via
``struct`` round-trips, matching the functional interpreter bit for bit:
64-bit ops compute in double precision; 32-bit ops compute in double and
round through an f32 pack, exactly like the interpreter's ``round_f32``.

Signed integer arguments (``fp_from_int_*``) are passed as Python ints
already sign-decoded by the expression compiler.
"""

from __future__ import annotations

import struct

from .errors import VsimRuntimeError

_M32 = (1 << 32) - 1
_M64 = (1 << 64) - 1


def _bits_of_f64(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _f64_of_bits(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _M64))[0]


def _bits_of_f32(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _f32_of_bits(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & _M32))[0]


def _arith64(op):
    def fn(a: int, b: int) -> int:
        x, y = _f64_of_bits(a), _f64_of_bits(b)
        try:
            return _bits_of_f64(op(x, y))
        except ZeroDivisionError as exc:
            raise VsimRuntimeError("fp core: division by zero") from exc

    return fn


def _arith32(op):
    def fn(a: int, b: int) -> int:
        x, y = _f32_of_bits(a), _f32_of_bits(b)
        try:
            return _bits_of_f32(op(x, y))
        except ZeroDivisionError as exc:
            raise VsimRuntimeError("fp core: division by zero") from exc

    return fn


def _cmp64(op):
    return lambda a, b: int(op(_f64_of_bits(a), _f64_of_bits(b)))


def _cmp32(op):
    return lambda a, b: int(op(_f32_of_bits(a), _f32_of_bits(b)))


#: Ordered comparisons, matching the IR's fcmp predicate names.
_CMP_OPS = {
    "oeq": lambda x, y: x == y,
    "one": lambda x, y: x != y,
    "olt": lambda x, y: x < y,
    "ole": lambda x, y: x <= y,
    "ogt": lambda x, y: x > y,
    "oge": lambda x, y: x >= y,
}

#: name -> (function, result width in bits)
INTRINSICS: dict[str, tuple[object, int]] = {
    "fp_add_64": (_arith64(lambda x, y: x + y), 64),
    "fp_sub_64": (_arith64(lambda x, y: x - y), 64),
    "fp_mul_64": (_arith64(lambda x, y: x * y), 64),
    "fp_div_64": (_arith64(lambda x, y: x / y), 64),
    "fp_add_32": (_arith32(lambda x, y: x + y), 32),
    "fp_sub_32": (_arith32(lambda x, y: x - y), 32),
    "fp_mul_32": (_arith32(lambda x, y: x * y), 32),
    "fp_div_32": (_arith32(lambda x, y: x / y), 32),
    # int -> float: the argument is a signed integer.
    "fp_from_int_64": (lambda v: _bits_of_f64(float(v)), 64),
    "fp_from_int_32": (lambda v: _bits_of_f32(float(v)), 32),
    # float -> int: C truncation toward zero, 64-bit two's complement.
    "fp_to_int_64": (lambda b: int(_f64_of_bits(b)) & _M64, 64),
    "fp_to_int_32": (lambda b: int(_f32_of_bits(b)) & _M64, 64),
    "fp_ext_32_64": (lambda b: _bits_of_f64(_f32_of_bits(b)), 64),
    "fp_trunc_64_32": (lambda b: _bits_of_f32(_f64_of_bits(b)), 32),
}
for _pred, _op in _CMP_OPS.items():
    INTRINSICS[f"fp_cmp_{_pred}_64"] = (_cmp64(_op), 1)
    INTRINSICS[f"fp_cmp_{_pred}_32"] = (_cmp32(_op), 1)
