"""Pure-Python simulator for the emitter's synthesizable Verilog subset.

``repro.rtl.verilog`` emits a small, regular Verilog dialect: module/port
declarations, ``reg``/``wire`` nets with constant widths, continuous
assigns, single-clock ``always @(posedge clk)`` blocks with nonblocking
assignments, ``case``-based FSMs, and arithmetic/compare/mux expressions.
This package closes the emit→execute loop for that subset without any
external toolchain:

* :mod:`repro.vsim.parser` — tokenizer + recursive-descent parser for the
  subset grammar (``VsimParseError`` on anything outside it).
* :mod:`repro.vsim.elaborate` — flattens a module hierarchy (parameter
  substitution, dotted instance prefixes) into a :class:`Design` of
  two-state signals, topologically ordered combinational assigns and
  compiled sequential blocks.
* :mod:`repro.vsim.sim` — :class:`Simulation`: ``poke``/``peek``/``step``
  cycle-level execution with nonblocking-assignment semantics.
* :mod:`repro.vsim.intrinsics` — bit-exact IEEE-754 models for the
  ``fp_*`` vendor-IP cores the emitter instantiates as function calls.
* :mod:`repro.vsim.lint` — structural checks (undeclared identifiers,
  width mismatches, FSM case coverage, multiply-driven nets).
* :mod:`repro.vsim.cosim` — differential co-simulation of every emitted
  worker module against the :mod:`repro.interp` oracle.
"""

from .elaborate import Design, elaborate
from .errors import VsimElabError, VsimError, VsimParseError, VsimRuntimeError
from .lint import lint_verilog
from .parser import parse_verilog
from .sim import Simulation

__all__ = [
    "Design",
    "Simulation",
    "VsimElabError",
    "VsimError",
    "VsimParseError",
    "VsimRuntimeError",
    "elaborate",
    "lint_verilog",
    "parse_verilog",
]
