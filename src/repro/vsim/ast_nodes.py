"""AST node types for the emitter's Verilog subset.

Plain dataclasses — the parser builds these, the elaborator compiles them
into closures.  Every node keeps the source line it came from so lint and
elaboration errors point back into the emitted text.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass
class Num(Expr):
    """A literal: ``64'hdeadbeef``, ``4'd3``, ``17``.

    ``width`` is ``None`` for unsized literals (treated as 32-bit).
    """

    value: int
    width: int | None = None


@dataclass
class Ref(Expr):
    """A plain identifier reference."""

    name: str


@dataclass
class Unary(Expr):
    op: str  # ! ~ - +
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]


@dataclass
class Select(Expr):
    """Constant part-select ``base[msb:lsb]`` or bit-select ``base[idx]``.

    The emitter only produces constant selects; dynamic indexing is
    outside the subset.
    """

    base: Expr
    msb: Expr = None  # type: ignore[assignment]
    lsb: Expr | None = None


@dataclass
class Concat(Expr):
    parts: list[Expr] = field(default_factory=list)


@dataclass
class Repeat(Expr):
    """Replication ``{count{value}}`` (count must be constant)."""

    count: Expr
    value: Expr = None  # type: ignore[assignment]


@dataclass
class SignedCast(Expr):
    """``$signed(expr)`` — marks the operand signed, width unchanged."""

    operand: Expr


@dataclass
class FuncCall(Expr):
    """Call to an ``fp_*`` vendor-IP simulation model."""

    name: str
    args: list[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements (inside always blocks)
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class NonBlocking(Stmt):
    """``target <= rhs;`` — the only assignment form inside always."""

    target: str
    rhs: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr
    then: list[Stmt] = field(default_factory=list)
    other: list[Stmt] = field(default_factory=list)


@dataclass
class CaseItem:
    labels: list[Expr]  # empty == default
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Case(Stmt):
    subject: Expr
    items: list[CaseItem] = field(default_factory=list)


# --------------------------------------------------------------------------
# Module-level declarations
# --------------------------------------------------------------------------


@dataclass
class NetDecl:
    """``input wire [31:0] name`` / ``reg [3:0] name`` / ``wire name``."""

    direction: str | None  # "input" | "output" | None (internal)
    kind: str  # "reg" | "wire"
    msb: Expr | None  # None == 1-bit scalar
    lsb: Expr | None
    name: str
    line: int = 0


@dataclass
class ParamDecl:
    name: str
    value: Expr
    local: bool  # localparam vs parameter
    line: int = 0


@dataclass
class ContAssign:
    target: str
    rhs: Expr
    line: int = 0


@dataclass
class AlwaysBlock:
    clock: str  # the posedge signal name
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Connection:
    port: str
    expr: Expr | None  # None == unconnected ``.port()``
    line: int = 0


@dataclass
class Instance:
    module: str
    name: str
    param_overrides: list[tuple[str, Expr]] = field(default_factory=list)
    connections: list[Connection] = field(default_factory=list)
    line: int = 0


@dataclass
class ModuleAst:
    name: str
    ports: list[NetDecl] = field(default_factory=list)
    params: list[ParamDecl] = field(default_factory=list)
    nets: list[NetDecl] = field(default_factory=list)
    assigns: list[ContAssign] = field(default_factory=list)
    always: list[AlwaysBlock] = field(default_factory=list)
    instances: list[Instance] = field(default_factory=list)
    line: int = 0
