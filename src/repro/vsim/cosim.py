"""Differential co-simulation: emitted Verilog vs the interpreter oracle.

Closes the emit→execute loop for the RTL backend.  A kernel is compiled
with the normal CGPA pipeline, then executed twice:

1. **Oracle** — the transformed module runs under the functional
   interpreter with a :class:`~repro.interp.RecordingChannelIO` and a
   :class:`RecordingForkHandler`, which log, per fork/join *round* and
   per worker instance, the memory image at round entry/exit, every
   channel push/pop (in order, with values) and every live-out write.
2. **RTL** — for each recorded round, every worker instance's emitted
   Verilog module (plus its transitive callees) is elaborated in
   :mod:`repro.vsim` and driven cycle by cycle against a shared byte
   memory, bounded FIFO queues and a mirrored live-out register file —
   the same environment the generated testbench models.

The diff then asserts, bit for bit: final live-out registers, the final
memory image, per-instance push/pop sequences (order, select and
payload) and leftover queue tokens.  Cycle counts are *not* compared —
vsim's environment serves memory in a fixed two-cycle handshake, not the
cache model of :mod:`repro.hw`.

Contract notes:

* Each round's RTL run starts from the oracle's round-entry memory
  image and queue state, so rounds are checked independently (a diff in
  round *k* cannot corrupt round *k+1*'s verdict).
* The RTL dataflow is closed: consumers pop the bit patterns producers
  pushed, not oracle values — the oracle only provides the *expected*
  sequences.
* ``alloca`` scratchpads are unsupported in cosim (the interpreter
  heap-allocates them); no kernel task uses one, and a task that does
  raises before simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import CgpaError
from ..frontend import compile_c
from ..interp import (
    BROADCAST_INDEX,
    Interpreter,
    Memory,
    RecordingChannelIO,
    to_unsigned,
)
from ..ir import I32
from ..ir.function import Function
from ..ir.instructions import Alloca, Produce, ProduceBroadcast, StoreLiveout
from ..kernels import KARGS_GLOBAL, KERNELS_BY_NAME, KernelSpec
from ..pipeline import ReplicationPolicy, cgpa_compile
from ..pipeline.cosim import FunctionalForkHandler
from ..pipeline.transform import TaskInfo
from ..rtl.testbench import generate_testbench
from ..rtl.verilog import (
    _collect_aux_signals,
    _float_bits,
    _sanitize,
    _width,
    generate_verilog_hierarchy,
)
from ..transforms import optimize_module
from .elaborate import elaborate
from .errors import VsimRuntimeError
from .sim import Simulation

#: Scaled-down workloads for co-simulation: vsim executes every clock
#: edge in Python, so paper-scale inputs (thousands of iterations) are
#: needlessly slow for a bit-exactness check.  Keyed by kernel name.
SMOKE_SETUP_ARGS: dict[str, list[int]] = {
    "ks": [8, 8],
    "em3d": [16, 8, 3],
    "1D-Gaussblur": [4, 24],
    "Hash-indexing": [48, 16],
    "K-means": [12, 3, 4],
    "bfs": [1, 14, 2],
    "hash-join": [1, 12, 10, 4],
    "spmv": [1, 6, 8, 2],
    "top-k": [1, 12, 4],
}

_BROADCAST_SEL = 0xF


def value_to_bits(value: int | float, width: int) -> int:
    """The bit pattern a ``width``-bit datapath register holds for ``value``."""
    if isinstance(value, float):
        return _float_bits(value, 64 if width == 64 else 32)
    return to_unsigned(int(value), width)


# --------------------------------------------------------------------------
# Oracle recording
# --------------------------------------------------------------------------


@dataclass
class TaskRun:
    """One forked worker instance within a round."""

    tag: str
    task: Function
    args: list[int | float]
    worker_id: int


@dataclass
class RoundRecord:
    """Everything the oracle observed for one fork/join round."""

    loop_id: int
    runs: list[TaskRun]
    start_mem: Memory
    queue_start: dict[tuple[int, int], tuple]
    liveouts_start: dict[int, int | float]
    end_mem: Memory | None = None
    queue_end: dict[tuple[int, int], tuple] = field(default_factory=dict)
    push_log: list = field(default_factory=list)
    pop_log: list = field(default_factory=list)
    liveout_log: list = field(default_factory=list)


class RecordingForkHandler(FunctionalForkHandler):
    """A fork handler that records per-round, per-instance traces.

    Requires its ``channel_io`` to be a :class:`RecordingChannelIO`;
    each machine's ``step`` is wrapped to stamp the IO's ``current_tag``
    so every logged push/pop/live-out is attributed to the instance that
    performed it.
    """

    def __init__(self, module, memory, global_addresses, channel_io) -> None:
        if not isinstance(channel_io, RecordingChannelIO):
            raise CgpaError("RecordingForkHandler needs a RecordingChannelIO")
        super().__init__(module, memory, global_addresses, channel_io)
        self._run_meta: dict[int, list[TaskRun]] = {}
        self.rounds: list[RoundRecord] = []

    def fork(self, inst, livein_values) -> None:
        super().fork(inst, livein_values)
        machine = self._pending[inst.loop_id][-1]
        info = inst.task.task_info
        worker_id = inst.worker_id if inst.worker_id is not None else 0
        args = list(livein_values)
        if isinstance(info, TaskInfo) and info.is_parallel:
            args.append(worker_id)
        tag = f"{inst.task.name}@w{worker_id}"
        io = self.channel_io
        orig_step = machine.step

        def tagged_step(_orig=orig_step, _tag=tag, _io=io):
            _io.current_tag = _tag
            return _orig()

        machine.step = tagged_step
        self._run_meta.setdefault(inst.loop_id, []).append(
            TaskRun(tag, inst.task, args, worker_id)
        )

    def join(self, loop_id: int) -> None:
        io = self.channel_io
        record = RoundRecord(
            loop_id=loop_id,
            runs=self._run_meta.pop(loop_id, []),
            start_mem=self.memory.clone(),
            queue_start=io.queue_snapshot(),
            liveouts_start=dict(io.liveouts),
        )
        marks = (len(io.push_log), len(io.pop_log), len(io.liveout_log))
        try:
            super().join(loop_id)
        finally:
            io.current_tag = "parent"
        record.end_mem = self.memory.clone()
        record.queue_end = io.queue_snapshot()
        record.push_log = io.push_log[marks[0]:]
        record.pop_log = io.pop_log[marks[1]:]
        record.liveout_log = io.liveout_log[marks[2]:]
        self.rounds.append(record)


# --------------------------------------------------------------------------
# RTL environment
# --------------------------------------------------------------------------


class _RoundShared:
    """State shared by every RTL instance of one round."""

    def __init__(
        self,
        memory: Memory,
        n_channels: dict[int, int],
        fifo_depth: int,
        liveouts: dict[int, int],
    ) -> None:
        self.memory = memory
        self.n_channels = n_channels
        self.fifo_depth = fifo_depth
        self.liveouts = liveouts
        # Deques: popping the head of a deep queue was O(n) per token.
        self.queues: dict[tuple[int, int], deque[int]] = {}

    def queue(self, cid: int, idx: int) -> deque[int]:
        return self.queues.setdefault((cid, idx), deque())


class _RtlInstance:
    """Drives one worker module against the shared round environment."""

    def __init__(self, run: TaskRun, design, shared: _RoundShared) -> None:
        self.run = run
        self.tag = run.tag
        self.aux = _collect_aux_signals(run.task)
        self.shared = shared
        self.sim = Simulation(design)
        self.push_seen: list[tuple[int, int, int]] = []
        self.pop_seen: list[tuple[int, int, int]] = []
        self.finish_cycle: int | None = None
        self._pending_mem: tuple[int, int, int] | None = None
        self._pending_push: tuple[int, int, int] | None = None
        self._pending_pop: tuple[int, int] | None = None
        for arg, value in zip(run.task.args, run.args):
            self.sim.poke(
                f"arg_{_sanitize(arg.name)}",
                value_to_bits(value, _width(arg.type)),
            )
        # The live-out register file is global in hardware; seed this
        # module's slice (stores keep their own copy, inputs mirror).
        for lid in self.aux.liveout_stores:
            self.sim.poke(f"liveout_{lid}", shared.liveouts.get(lid, 0))
        for loop_id in self.aux.join_loops:
            self.sim.poke(f"all_finished_loop{loop_id}", 1)

    @property
    def finished(self) -> bool:
        return self.sim.peek("finish") == 1

    # --------------------------------------------------------- per cycle

    def drive(self) -> None:
        """Compute environment inputs from the committed module outputs."""
        sim = self.sim
        for lid in self.aux.liveout_inputs:
            sim.poke(f"liveout_{lid}", self.shared.liveouts.get(lid, 0))
        if self.finished:
            return
        self._drive_memory(sim)
        self._drive_push(sim)
        self._drive_pop(sim)

    def _drive_memory(self, sim: Simulation) -> None:
        if sim.peek("mem_ack"):
            sim.poke("mem_ack", 0)
            return
        if not sim.peek("mem_req"):
            return
        addr = sim.peek("mem_addr")
        size = sim.peek("mem_size")
        if size == 0 or size > 8:
            raise VsimRuntimeError(
                f"{self.tag}: memory access of {size} bytes at 0x{addr:x}"
            )
        if sim.peek("mem_we"):
            data = sim.peek("mem_wdata") & ((1 << (8 * size)) - 1)
            self._pending_mem = (addr, size, data)
        else:
            raw = self.shared.memory.read_bytes(addr, size)
            sim.poke("mem_rdata", int.from_bytes(raw, "little"))
        sim.poke("mem_ack", 1)

    def _drive_push(self, sim: Simulation) -> None:
        if not sim.peek("fifo_push_valid"):
            sim.poke("fifo_push_ready", 0)
            return
        sel = sim.peek("fifo_push_sel")
        cid, idx = sel >> 4, sel & 0xF
        nch = self._channel_width_check(cid, idx, "push")
        depth = self.shared.fifo_depth
        if idx == _BROADCAST_SEL:
            ready = all(
                len(self.shared.queue(cid, i)) < depth for i in range(nch)
            )
        else:
            ready = len(self.shared.queue(cid, idx)) < depth
        sim.poke("fifo_push_ready", int(ready))
        if ready:
            self._pending_push = (cid, idx, sim.peek("fifo_push_data"))

    def _drive_pop(self, sim: Simulation) -> None:
        if not sim.peek("fifo_pop_valid"):
            sim.poke("fifo_pop_ready", 0)
            return
        sel = sim.peek("fifo_pop_sel")
        cid, idx = sel >> 4, sel & 0xF
        self._channel_width_check(cid, idx, "pop")
        queue = self.shared.queue(cid, idx)
        if queue:
            sim.poke("fifo_pop_ready", 1)
            sim.poke("fifo_pop_data", queue[0])
            self._pending_pop = (cid, idx)
        else:
            sim.poke("fifo_pop_ready", 0)

    def _channel_width_check(self, cid: int, idx: int, kind: str) -> int:
        nch = self.shared.n_channels.get(cid)
        if nch is None:
            raise VsimRuntimeError(f"{self.tag}: {kind} to unknown channel {cid}")
        if idx != _BROADCAST_SEL and idx >= nch:
            raise VsimRuntimeError(
                f"{self.tag}: {kind} index {idx} out of range for channel "
                f"{cid} ({nch} queues)"
            )
        if idx == _BROADCAST_SEL and kind == "pop":
            raise VsimRuntimeError(f"{self.tag}: pop with broadcast select")
        return nch

    def post_edge(self, cycle: int) -> None:
        """Apply the transfers that happened on this clock edge."""
        if self._pending_mem is not None:
            addr, size, data = self._pending_mem
            self.shared.memory.write_bytes(addr, data.to_bytes(size, "little"))
            self._pending_mem = None
        if self._pending_push is not None:
            cid, idx, bits = self._pending_push
            self.push_seen.append((cid, idx, bits))
            if idx == _BROADCAST_SEL:
                for i in range(self.shared.n_channels[cid]):
                    self.shared.queue(cid, i).append(bits)
            else:
                self.shared.queue(cid, idx).append(bits)
            self._pending_push = None
        if self._pending_pop is not None:
            cid, idx = self._pending_pop
            bits = self.shared.queue(cid, idx).popleft()
            self.pop_seen.append((cid, idx, bits))
            self._pending_pop = None
        for lid in self.aux.liveout_stores:
            self.shared.liveouts[lid] = self.sim.peek(f"liveout_{lid}")
        if self.finished and self.finish_cycle is None:
            self.finish_cycle = cycle


# --------------------------------------------------------------------------
# Reports
# --------------------------------------------------------------------------


@dataclass
class LiveoutDiff:
    liveout_id: int
    oracle_bits: int
    rtl_bits: int

    @property
    def ok(self) -> bool:
        return self.oracle_bits == self.rtl_bits

    def to_dict(self) -> dict:
        return {
            "liveout_id": self.liveout_id,
            "oracle_bits": self.oracle_bits,
            "rtl_bits": self.rtl_bits,
            "ok": self.ok,
        }


@dataclass
class InstanceReport:
    tag: str
    cycles: int
    liveouts: list[LiveoutDiff] = field(default_factory=list)
    traffic_diff: str | None = None  # first push/pop sequence mismatch

    @property
    def ok(self) -> bool:
        return self.traffic_diff is None and all(d.ok for d in self.liveouts)

    def to_dict(self) -> dict:
        return {
            "tag": self.tag,
            "cycles": self.cycles,
            "liveouts": [d.to_dict() for d in self.liveouts],
            "traffic_diff": self.traffic_diff,
            "ok": self.ok,
        }


@dataclass
class RoundReport:
    index: int
    loop_id: int
    instances: list[InstanceReport] = field(default_factory=list)
    memory_diff: str | None = None
    queue_diff: str | None = None

    @property
    def ok(self) -> bool:
        return (
            self.memory_diff is None
            and self.queue_diff is None
            and all(i.ok for i in self.instances)
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "loop_id": self.loop_id,
            "instances": [i.to_dict() for i in self.instances],
            "memory_diff": self.memory_diff,
            "queue_diff": self.queue_diff,
            "ok": self.ok,
        }


@dataclass
class CosimReport:
    kernel: str
    policy: str
    n_workers: int
    fifo_depth: int
    setup_args: list[int]
    oracle_result: int | float | None
    rounds: list[RoundReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rounds)

    @property
    def total_cycles(self) -> int:
        return sum(
            max((i.cycles for i in r.instances), default=0)
            for r in self.rounds
        )

    def to_dict(self) -> dict:
        """JSON verdict form (service artifact / machine-readable log)."""
        return {
            "kernel": self.kernel,
            "policy": self.policy,
            "n_workers": self.n_workers,
            "fifo_depth": self.fifo_depth,
            "setup_args": list(self.setup_args),
            "oracle_result": self.oracle_result,
            "total_cycles": self.total_cycles,
            "rounds": [r.to_dict() for r in self.rounds],
            "ok": self.ok,
        }

    def format(self) -> str:
        lines = [
            f"RTL co-simulation: {self.kernel} "
            f"(policy {self.policy}, {self.n_workers} workers, "
            f"fifo depth {self.fifo_depth}, setup args {self.setup_args})",
            f"oracle checksum: {self.oracle_result}",
        ]
        for rnd in self.rounds:
            lines.append(
                f"round {rnd.index} (loop {rnd.loop_id}): "
                f"{len(rnd.instances)} worker module(s)"
            )
            lines.append("  instance                          cycles  liveouts  traffic")
            for inst in rnd.instances:
                lv = (
                    "-" if not inst.liveouts else
                    "ok" if all(d.ok for d in inst.liveouts) else "DIFF"
                )
                tr = "ok" if inst.traffic_diff is None else "DIFF"
                lines.append(
                    f"  {inst.tag:32s}  {inst.cycles:6d}  {lv:8s}  {tr}"
                )
                for diff in inst.liveouts:
                    marker = "==" if diff.ok else "!="
                    lines.append(
                        f"      liveout[{diff.liveout_id}]  oracle "
                        f"0x{diff.oracle_bits:016x} {marker} rtl "
                        f"0x{diff.rtl_bits:016x}"
                    )
                if inst.traffic_diff:
                    lines.append(f"      traffic: {inst.traffic_diff}")
            lines.append(
                f"  memory image: "
                f"{'bit-identical' if rnd.memory_diff is None else rnd.memory_diff}"
            )
            if rnd.queue_diff:
                lines.append(f"  leftover tokens: {rnd.queue_diff}")
        verdict = (
            "OK - liveouts and memory bit-identical to the interpreter oracle"
            if self.ok else "MISMATCH - see diffs above"
        )
        lines.append(f"final: {verdict}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def run_rtl_cosim(
    spec: KernelSpec | str,
    policy: str = "p1",
    n_workers: int = 2,
    fifo_depth: int = 16,
    setup_args: list[int] | None = None,
    max_cycles: int = 500_000,
    emit_dir=None,
) -> CosimReport:
    """Co-simulate every worker module of a kernel against the oracle.

    ``setup_args`` overrides the kernel's workload size (defaults to the
    :data:`SMOKE_SETUP_ARGS` scale-down, falling back to the spec's
    paper-scale arguments).  ``emit_dir`` optionally writes each round's
    Verilog modules plus oracle-scripted testbenches.
    """
    if isinstance(spec, str):
        try:
            spec = KERNELS_BY_NAME[spec]
        except KeyError:
            raise CgpaError(
                f"unknown kernel {spec!r} (have: "
                f"{', '.join(sorted(KERNELS_BY_NAME))})"
            ) from None
    try:
        policy_enum = ReplicationPolicy[policy.upper()]
    except KeyError:
        raise CgpaError(f"unknown policy {policy!r} (p1/p2/none)") from None
    if policy_enum is ReplicationPolicy.P2 and not spec.supports_p2:
        raise CgpaError(f"kernel {spec.name} does not support P2")
    if setup_args is None:
        setup_args = SMOKE_SETUP_ARGS.get(spec.name, list(spec.setup_args))

    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    shapes = spec.shapes_for(module)
    compiled = cgpa_compile(
        module,
        spec.accel_function,
        shapes=shapes,
        policy=policy_enum,
        n_workers=n_workers,
        fifo_depth=fifo_depth,
    )

    # ---------------------------------------------------------- oracle run
    setup = Interpreter(compiled.module)
    setup.call(spec.setup_function, list(setup_args))
    kargs_addr = setup.global_addresses[KARGS_GLOBAL]
    args = [
        to_unsigned(setup.memory.load(kargs_addr + 4 * i, I32), 32)
        for i in range(spec.n_kernel_args)
    ]
    memory, globals_ = setup.memory, setup.global_addresses

    io = RecordingChannelIO()
    parent = Interpreter(
        compiled.module, memory, channel_io=io, global_addresses=globals_
    )
    handler = RecordingForkHandler(compiled.module, memory, globals_, io)
    parent.fork_handler = handler
    oracle_result = parent.call(spec.measure_entry, args)

    # ------------------------------------------------------------ RTL runs
    n_channels = {
        ch.channel_id: ch.n_channels for ch in compiled.result.channels
    }
    chan_width = _channel_widths(compiled.module)
    liveout_width = _liveout_widths(compiled.module)
    # Emitted modules leave global addresses as parameters ("filled at
    # integration"); fill them with the oracle's placement.
    global_params = {
        f"GLOBAL_{_sanitize(name).upper()}": addr
        for name, addr in globals_.items()
    }
    designs: dict[int, object] = {}
    report = CosimReport(
        kernel=spec.name,
        policy=policy_enum.name.lower(),
        n_workers=n_workers,
        fifo_depth=fifo_depth,
        setup_args=list(setup_args),
        oracle_result=oracle_result,
    )
    for index, record in enumerate(handler.rounds):
        report.rounds.append(
            _run_round(
                index, record, designs, n_channels, chan_width,
                liveout_width, fifo_depth, max_cycles, emit_dir,
                global_params,
            )
        )
    return report


def _run_round(
    index: int,
    record: RoundRecord,
    designs: dict,
    n_channels: dict[int, int],
    chan_width: dict[int, int],
    liveout_width: dict[int, int],
    fifo_depth: int,
    max_cycles: int,
    emit_dir,
    global_params: dict[str, int],
) -> RoundReport:
    shared = _RoundShared(
        memory=record.start_mem,
        n_channels=n_channels,
        fifo_depth=fifo_depth,
        liveouts={
            lid: value_to_bits(v, liveout_width.get(lid, 64))
            for lid, v in record.liveouts_start.items()
        },
    )
    for (cid, idx), values in record.queue_start.items():
        shared.queue(cid, idx).extend(
            value_to_bits(v, chan_width.get(cid, 64)) for v in values
        )

    instances = []
    for run in record.runs:
        key = id(run.task)
        if key not in designs:
            for inst in run.task.instructions():
                if isinstance(inst, Alloca):
                    raise VsimRuntimeError(
                        f"{run.task.name}: alloca scratchpads are not "
                        "supported in co-simulation"
                    )
            text = generate_verilog_hierarchy(run.task)
            designs[key] = (text, elaborate(text, params=global_params))
        instances.append(_RtlInstance(run, designs[key][1], shared))

    if emit_dir is not None:
        _emit_artifacts(emit_dir, index, record, designs, chan_width,
                        liveout_width)

    # Reset, then pulse start into every instance simultaneously.
    for inst in instances:
        inst.sim.poke("rst", 1)
    for inst in instances:
        inst.sim.step()
    for inst in instances:
        inst.sim.poke("rst", 0)
        inst.sim.poke("start", 1)
    for inst in instances:
        inst.sim.step()
    for inst in instances:
        inst.sim.poke("start", 0)

    cycle = 0
    while any(not inst.finished for inst in instances):
        if cycle >= max_cycles:
            stuck = [i.tag for i in instances if not i.finished]
            raise VsimRuntimeError(
                f"round {index}: cycle budget ({max_cycles}) exceeded; "
                f"unfinished: {', '.join(stuck)}"
            )
        for inst in instances:
            inst.drive()
        for inst in instances:
            inst.sim.step()
        cycle += 1
        for inst in instances:
            inst.post_edge(cycle)

    round_report = RoundReport(index=index, loop_id=record.loop_id)
    for inst in instances:
        round_report.instances.append(
            _instance_report(inst, record, chan_width, liveout_width)
        )
    round_report.memory_diff = _memory_diff(record.end_mem, shared.memory)
    round_report.queue_diff = _queue_diff(record, shared, chan_width)
    return round_report


def _instance_report(
    inst: _RtlInstance,
    record: RoundRecord,
    chan_width: dict[int, int],
    liveout_width: dict[int, int],
) -> InstanceReport:
    report = InstanceReport(tag=inst.tag, cycles=inst.finish_cycle or 0)

    expected_pushes = [
        (cid, _BROADCAST_SEL if idx == BROADCAST_INDEX else idx,
         value_to_bits(v, chan_width.get(cid, 64)))
        for tag, cid, idx, v in record.push_log
        if tag == inst.tag
    ]
    expected_pops = [
        (cid, idx, value_to_bits(v, chan_width.get(cid, 64)))
        for tag, cid, idx, v in record.pop_log
        if tag == inst.tag
    ]
    report.traffic_diff = _sequence_diff(
        "push", expected_pushes, inst.push_seen
    ) or _sequence_diff("pop", expected_pops, inst.pop_seen)

    expected_liveouts: dict[int, int | float] = {}
    for tag, lid, value in record.liveout_log:
        if tag == inst.tag:
            expected_liveouts[lid] = value
    for lid in sorted(expected_liveouts):
        report.liveouts.append(
            LiveoutDiff(
                liveout_id=lid,
                oracle_bits=value_to_bits(
                    expected_liveouts[lid], liveout_width.get(lid, 64)
                ),
                rtl_bits=inst.sim.peek(f"liveout_{lid}"),
            )
        )
    return report


def _sequence_diff(kind: str, expected: list, actual: list) -> str | None:
    for i, (exp, act) in enumerate(zip(expected, actual)):
        if exp != act:
            return (
                f"{kind} #{i}: oracle (ch {exp[0]}, idx {exp[1]}, "
                f"0x{exp[2]:016x}) != rtl (ch {act[0]}, idx {act[1]}, "
                f"0x{act[2]:016x})"
            )
    if len(expected) != len(actual):
        return (
            f"{kind} count: oracle {len(expected)} != rtl {len(actual)}"
        )
    return None


def _memory_diff(oracle: Memory, rtl: Memory) -> str | None:
    a, b = oracle.snapshot(), rtl.snapshot()
    if a == b:
        return None
    if len(a) != len(b):
        return f"image sizes differ (oracle {len(a)}, rtl {len(b)} bytes)"
    first = next(i for i in range(len(a)) if a[i] != b[i])
    count = sum(1 for x, y in zip(a, b) if x != y)
    return (
        f"{count} byte(s) differ, first at 0x{first:x} "
        f"(oracle 0x{a[first]:02x}, rtl 0x{b[first]:02x})"
    )


def _queue_diff(
    record: RoundRecord, shared: _RoundShared, chan_width: dict[int, int]
) -> str | None:
    oracle = {
        key: tuple(
            value_to_bits(v, chan_width.get(key[0], 64)) for v in values
        )
        for key, values in record.queue_end.items()
    }
    rtl = {
        key: tuple(values) for key, values in shared.queues.items() if values
    }
    if oracle == rtl:
        return None
    keys = sorted(set(oracle) | set(rtl))
    for key in keys:
        if oracle.get(key, ()) != rtl.get(key, ()):
            return (
                f"channel {key[0]} idx {key[1]}: oracle leaves "
                f"{len(oracle.get(key, ()))} token(s), rtl "
                f"{len(rtl.get(key, ()))}"
            )
    return "queue states differ"


def _channel_widths(module) -> dict[int, int]:
    widths: dict[int, int] = {}
    for function in module.functions.values():
        for inst in function.instructions():
            if isinstance(inst, (Produce, ProduceBroadcast)):
                widths.setdefault(
                    inst.channel.channel_id, _width(inst.value.type)
                )
    return widths


def _liveout_widths(module) -> dict[int, int]:
    widths: dict[int, int] = {}
    for function in module.functions.values():
        for inst in function.instructions():
            if isinstance(inst, StoreLiveout):
                widths.setdefault(inst.liveout_id, _width(inst.value.type))
    return widths


# --------------------------------------------------------------------------
# Testbench artifacts
# --------------------------------------------------------------------------


def testbench_scripts(
    record: RoundRecord,
    run: TaskRun,
    chan_width: dict[int, int],
    liveout_width: dict[int, int],
):
    """Oracle-derived testbench inputs for one instance of a round.

    Returns ``(arg_values, expected_liveouts, pop_script,
    expected_pushes)`` in the formats
    :func:`repro.rtl.testbench.generate_testbench` accepts.
    """
    arg_values = [
        value_to_bits(v, _width(a.type))
        for a, v in zip(run.task.args, run.args)
    ]
    pop_script = [
        ((cid << 4) | idx, value_to_bits(v, chan_width.get(cid, 64)))
        for tag, cid, idx, v in record.pop_log
        if tag == run.tag
    ]
    expected_pushes = [
        (
            (cid << 4)
            | (_BROADCAST_SEL if idx == BROADCAST_INDEX else idx),
            value_to_bits(v, chan_width.get(cid, 64)),
        )
        for tag, cid, idx, v in record.push_log
        if tag == run.tag
    ]
    expected_liveouts: dict[int, int] = {}
    for tag, lid, value in record.liveout_log:
        if tag == run.tag:
            expected_liveouts[lid] = value_to_bits(
                value, liveout_width.get(lid, 64)
            )
    return arg_values, expected_liveouts, pop_script, expected_pushes


def _emit_artifacts(
    emit_dir, index: int, record: RoundRecord, designs, chan_width,
    liveout_width,
) -> None:
    import os

    os.makedirs(emit_dir, exist_ok=True)
    for run in record.runs:
        text = designs[id(run.task)][0]
        base = f"round{index}_{run.tag.replace('@', '_')}"
        with open(os.path.join(emit_dir, base + ".v"), "w") as fh:
            fh.write(text)
        arg_values, liveouts, pops, pushes = testbench_scripts(
            record, run, chan_width, liveout_width
        )
        bench = generate_testbench(
            run.task,
            arg_values=arg_values,
            expected_liveouts=liveouts,
            pop_script=pops,
            expected_pushes=pushes,
        )
        with open(os.path.join(emit_dir, base + "_tb.v"), "w") as fh:
            fh.write(bench)
