"""Structural lint for emitted Verilog.

Checks the properties a synthesis front-end would reject (and a few that
it would silently mis-synthesize), per module:

* every referenced identifier is declared (ports, nets, params, or a
  known operator core),
* assignment widths are consistent: a right-hand side wider than its
  target loses bits silently in Verilog, so it is flagged (the only
  exemption is ``fp_to_int_*``, whose 64-bit two's-complement result is
  deliberately truncated to the integer width — C cast semantics),
* the FSM ``case (state)`` has unique items, covers every declared state
  localparam and carries a ``default``,
* no multiply-driven signals: a net driven by more than one continuous
  assign / instance output, or a reg assigned in more than one always
  block,
* no undriven signals that are read (wires need an assign, an instance
  output or an input-port direction; regs need an always-block driver).

Pure AST analysis — nothing is simulated, so it runs on any parseable
module even when a hierarchy is incomplete (instances of unknown modules
simply contribute no driver information for their connections).
"""

from __future__ import annotations

from .ast_nodes import (
    Binary,
    Case,
    Concat,
    Expr,
    FuncCall,
    If,
    ModuleAst,
    NonBlocking,
    Num,
    Ref,
    Repeat,
    Select,
    SignedCast,
    Stmt,
    Ternary,
    Unary,
)
from .errors import VsimParseError
from .intrinsics import INTRINSICS
from .parser import parse_verilog


def lint_verilog(source: str) -> list[str]:
    """Lint every module in ``source``; return human-readable issues."""
    modules = parse_verilog(source)
    by_name = {m.name: m for m in modules}
    issues: list[str] = []
    for mod in modules:
        issues.extend(_lint_module(mod, by_name))
    return issues


def _lint_module(mod: ModuleAst, by_name: dict[str, ModuleAst]) -> list[str]:
    issues: list[str] = []
    ctx = f"{mod.name}"

    widths: dict[str, int] = {}
    params: dict[str, int] = {}
    param_widths: dict[str, int] = {}
    for pdecl in mod.params:
        value, width = _try_const(pdecl.value, params, param_widths)
        params[pdecl.name] = 0 if value is None else value
        param_widths[pdecl.name] = width or 32

    def range_width(decl) -> int:
        if decl.msb is None:
            return 1
        msb, _ = _try_const(decl.msb, params, param_widths)
        lsb, _ = _try_const(decl.lsb, params, param_widths)
        if msb is None or lsb is None:
            return 32
        return msb - lsb + 1

    directions: dict[str, str | None] = {}
    kinds: dict[str, str] = {}
    for decl in list(mod.ports) + list(mod.nets):
        if decl.name in widths:
            issues.append(f"{ctx}: duplicate declaration of {decl.name!r}")
        widths[decl.name] = range_width(decl)
        directions[decl.name] = decl.direction
        kinds[decl.name] = decl.kind

    declared = set(widths) | set(params)

    # ------------------------------------------------------ driver census
    drivers: dict[str, list[str]] = {name: [] for name in widths}
    used: set[str] = set()

    def record_use(expr: Expr | None) -> None:
        for name in _refs(expr):
            used.add(name)
            if name not in declared:
                issues.append(f"{ctx}: undeclared identifier {name!r}")
                declared.add(name)  # report once

    for assign in mod.assigns:
        record_use(assign.rhs)
        if assign.target not in widths:
            issues.append(
                f"{ctx}: assign to undeclared net {assign.target!r}"
            )
            continue
        drivers[assign.target].append(f"assign (line {assign.line})")

    for idx, block in enumerate(mod.always):
        record_use(Ref(block.clock, line=block.line))
        block_targets: set[str] = set()
        _walk_stmts(block.body, record_use, block_targets, issues, ctx, widths)
        for target in block_targets:
            if target in drivers:
                drivers[target].append(f"always #{idx} (line {block.line})")

    for inst in mod.instances:
        child = by_name.get(inst.module)
        child_ports = (
            {p.name: p for p in child.ports} if child is not None else {}
        )
        for conn in inst.connections:
            record_use(conn.expr)
            port = child_ports.get(conn.port)
            if child is not None and port is None:
                issues.append(
                    f"{ctx}: instance {inst.name} connects unknown port "
                    f"{conn.port!r} of {inst.module}"
                )
                continue
            if (
                port is not None
                and port.direction == "output"
                and isinstance(conn.expr, Ref)
                and conn.expr.name in drivers
            ):
                drivers[conn.expr.name].append(
                    f"instance {inst.name}.{conn.port}"
                )

    for name, driver_list in drivers.items():
        if len(driver_list) > 1:
            issues.append(
                f"{ctx}: {name!r} is multiply driven ({'; '.join(driver_list)})"
            )
        if not driver_list and directions.get(name) != "input" and name in used:
            issues.append(f"{ctx}: {name!r} is read but never driven")
        if driver_list and directions.get(name) == "input":
            issues.append(f"{ctx}: input port {name!r} is driven internally")

    # ------------------------------------------------- width consistency
    def check_assign_width(target: str, rhs: Expr, line: int) -> None:
        tw = widths.get(target)
        if tw is None:
            return
        rw = _expr_width(rhs, widths, param_widths)
        if rw is None:
            return
        if isinstance(rhs, FuncCall) and rhs.name.startswith("fp_to_int_"):
            return  # 64-bit two's complement deliberately truncated
        if rw > tw:
            issues.append(
                f"{ctx} line {line}: {target!r} is {tw} bits but its "
                f"right-hand side is {rw} bits"
            )

    for assign in mod.assigns:
        check_assign_width(assign.target, assign.rhs, assign.line)
    for block in mod.always:
        for stmt, _ in _iter_stmts(block.body):
            if isinstance(stmt, NonBlocking):
                check_assign_width(stmt.target, stmt.rhs, stmt.line)

    # ------------------------------------------------- FSM case coverage
    state_params = {
        name: value
        for name, value in params.items()
        if name == "STATE_IDLE" or name.startswith("S_")
    }
    for block in mod.always:
        for stmt, _ in _iter_stmts(block.body):
            if isinstance(stmt, Case) and _is_state_case(stmt):
                issues.extend(
                    _lint_state_case(stmt, state_params, params, param_widths, ctx)
                )

    return issues


def _is_state_case(stmt: Case) -> bool:
    return isinstance(stmt.subject, Ref) and stmt.subject.name == "state"


def _lint_state_case(
    stmt: Case,
    state_params: dict[str, int],
    params: dict[str, int],
    param_widths: dict[str, int],
    ctx: str,
) -> list[str]:
    issues: list[str] = []
    seen: dict[int, int] = {}
    has_default = False
    for item in stmt.items:
        if not item.labels:
            has_default = True
            continue
        for label in item.labels:
            value, _ = _try_const(label, params, param_widths)
            if value is None:
                issues.append(
                    f"{ctx} line {item.line}: non-constant case label"
                )
                continue
            if value in seen:
                issues.append(
                    f"{ctx} line {item.line}: duplicate case item for "
                    f"state {value}"
                )
            seen[value] = item.line
    for name, value in state_params.items():
        if value not in seen:
            issues.append(f"{ctx}: FSM case does not handle state {name}")
    if not has_default:
        issues.append(f"{ctx}: FSM case has no default item")
    return issues


# --------------------------------------------------------------------------
# AST walking helpers
# --------------------------------------------------------------------------


def _refs(expr: Expr | None):
    """All identifier references in an expression."""
    if expr is None:
        return
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Ref):
            yield node.name
        elif isinstance(node, Unary):
            stack.append(node.operand)
        elif isinstance(node, Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, Ternary):
            stack.extend((node.cond, node.then, node.other))
        elif isinstance(node, Select):
            stack.append(node.base)
            stack.append(node.msb)
            if node.lsb is not None:
                stack.append(node.lsb)
        elif isinstance(node, Concat):
            stack.extend(node.parts)
        elif isinstance(node, Repeat):
            stack.extend((node.count, node.value))
        elif isinstance(node, SignedCast):
            stack.append(node.operand)
        elif isinstance(node, FuncCall):
            stack.extend(node.args)


def _iter_stmts(stmts: list[Stmt], depth: int = 0):
    for stmt in stmts:
        yield stmt, depth
        if isinstance(stmt, If):
            yield from _iter_stmts(stmt.then, depth + 1)
            yield from _iter_stmts(stmt.other, depth + 1)
        elif isinstance(stmt, Case):
            for item in stmt.items:
                yield from _iter_stmts(item.body, depth + 1)


def _walk_stmts(
    stmts: list[Stmt],
    record_use,
    targets: set[str],
    issues: list[str],
    ctx: str,
    widths: dict[str, int],
) -> None:
    for stmt, _ in _iter_stmts(stmts):
        if isinstance(stmt, NonBlocking):
            record_use(stmt.rhs)
            if stmt.target not in widths:
                issues.append(
                    f"{ctx} line {stmt.line}: nonblocking assign to "
                    f"undeclared {stmt.target!r}"
                )
            else:
                targets.add(stmt.target)
        elif isinstance(stmt, If):
            record_use(stmt.cond)
        elif isinstance(stmt, Case):
            record_use(stmt.subject)
            for item in stmt.items:
                for label in item.labels:
                    record_use(label)


# --------------------------------------------------------------------------
# Constant folding / width inference (best effort, pure AST)
# --------------------------------------------------------------------------


def _try_const(
    expr: Expr, params: dict[str, int], param_widths: dict[str, int]
) -> tuple[int | None, int | None]:
    """(value, width) if statically evaluable, else (None, width-guess)."""
    if isinstance(expr, Num):
        return expr.value, expr.width or 32
    if isinstance(expr, Ref) and expr.name in params:
        return params[expr.name], param_widths.get(expr.name, 32)
    if isinstance(expr, Binary):
        lv, lw = _try_const(expr.left, params, param_widths)
        rv, rw = _try_const(expr.right, params, param_widths)
        if lv is None or rv is None:
            return None, None
        width = max(lw or 32, rw or 32)
        try:
            value = {
                "+": lv + rv, "-": lv - rv, "*": lv * rv,
            }.get(expr.op)
        except TypeError:  # pragma: no cover - defensive
            return None, None
        if value is None:
            return None, None
        return value & ((1 << width) - 1), width
    return None, None


def _expr_width(
    expr: Expr, widths: dict[str, int], param_widths: dict[str, int]
) -> int | None:
    """Self-determined width of an expression, or None if unknown."""
    w = lambda e: _expr_width(e, widths, param_widths)
    if isinstance(expr, Num):
        return expr.width or 32
    if isinstance(expr, Ref):
        if expr.name in widths:
            return widths[expr.name]
        return param_widths.get(expr.name)
    if isinstance(expr, SignedCast):
        return w(expr.operand)
    if isinstance(expr, Unary):
        return 1 if expr.op == "!" else w(expr.operand)
    if isinstance(expr, Binary):
        if expr.op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
            return 1
        if expr.op in ("<<", ">>", ">>>"):
            return w(expr.left)
        lw, rw = w(expr.left), w(expr.right)
        if lw is None or rw is None:
            return None
        return max(lw, rw)
    if isinstance(expr, Ternary):
        tw, ow = w(expr.then), w(expr.other)
        if tw is None or ow is None:
            return None
        return max(tw, ow)
    if isinstance(expr, Select):
        msb, _ = _try_const(expr.msb, {}, {})
        if expr.lsb is None:
            return 1 if msb is not None else None
        lsb, _ = _try_const(expr.lsb, {}, {})
        if msb is None or lsb is None:
            return None
        return msb - lsb + 1
    if isinstance(expr, Concat):
        total = 0
        for part in expr.parts:
            pw = w(part)
            if pw is None:
                return None
            total += pw
        return total
    if isinstance(expr, Repeat):
        count, _ = _try_const(expr.count, {}, {})
        vw = w(expr.value)
        if count is None or vw is None:
            return None
        return count * vw
    if isinstance(expr, FuncCall):
        entry = INTRINSICS.get(expr.name)
        return entry[1] if entry else None
    return None
