"""Recursive-descent parser for the emitter's Verilog subset.

Grammar (exactly what :mod:`repro.rtl.verilog` produces):

* ANSI-style module headers with ``input``/``output`` ``wire``/``reg``
  ports, optional constant ``[msb:lsb]`` ranges.
* ``parameter`` / ``localparam`` declarations with constant values.
* internal ``reg`` / ``wire`` declarations.
* ``assign name = expr;`` continuous assignments.
* ``always @(posedge clk)`` blocks containing ``begin/end``, ``if/else``,
  ``case/endcase`` and nonblocking assignments ``name <= expr;``.
* module instances with optional ``#(.PARAM(expr))`` overrides and named
  port connections (``.port(expr)`` or unconnected ``.port()``).
* expressions: literals, identifiers, unary/binary/ternary operators,
  constant part-selects, concatenation, replication, ``$signed`` and
  ``fp_*`` operator-core calls.

Anything else raises :class:`VsimParseError` — the point of the subset
simulator is to *reject* Verilog we never emit rather than guess at its
semantics.
"""

from __future__ import annotations

from .ast_nodes import (
    AlwaysBlock,
    Binary,
    Case,
    CaseItem,
    Concat,
    Connection,
    ContAssign,
    Expr,
    FuncCall,
    If,
    Instance,
    ModuleAst,
    NetDecl,
    NonBlocking,
    Num,
    ParamDecl,
    Ref,
    Repeat,
    Select,
    SignedCast,
    Stmt,
    Ternary,
    Unary,
)
from .errors import VsimParseError
from .lexer import Token, tokenize

#: Binary operators by precedence level, weakest first.  ``?:`` and the
#: unary operators are handled structurally.
_BINARY_LEVELS: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>", ">>>"),
    ("+", "-"),
    ("*", "/", "%"),
]
_UNARY_OPS = ("!", "~", "-", "+")


def parse_verilog(source: str) -> list[ModuleAst]:
    """Parse Verilog source into a list of module ASTs."""
    return _Parser(tokenize(source)).parse_sources()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------ plumbing

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _check(self, text: str) -> bool:
        return self._tok.text == text

    def _accept(self, text: str) -> bool:
        if self._tok.text == text:
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        tok = self._tok
        if tok.text != text:
            raise VsimParseError(
                f"line {tok.line}: expected {text!r}, got {tok.text!r}"
            )
        return self._advance()

    def _expect_id(self) -> Token:
        tok = self._tok
        if tok.kind != "id":
            raise VsimParseError(
                f"line {tok.line}: expected identifier, got {tok.text!r}"
            )
        return self._advance()

    # ------------------------------------------------------------- modules

    def parse_sources(self) -> list[ModuleAst]:
        modules = []
        while self._tok.kind != "eof":
            modules.append(self._parse_module())
        return modules

    def _parse_module(self) -> ModuleAst:
        start = self._expect("module")
        name = self._expect_id().text
        mod = ModuleAst(name=name, line=start.line)
        if self._accept("#"):  # module header parameter list
            self._expect("(")
            while not self._accept(")"):
                self._expect("parameter")
                pname = self._expect_id().text
                self._expect("=")
                mod.params.append(
                    ParamDecl(pname, self._parse_expr(), local=False)
                )
                self._accept(",")
        self._expect("(")
        while not self._accept(")"):
            mod.ports.append(self._parse_port_decl())
            self._accept(",")
        self._expect(";")
        while not self._accept("endmodule"):
            self._parse_module_item(mod)
        return mod

    def _parse_port_decl(self) -> NetDecl:
        tok = self._tok
        direction = tok.text
        if direction not in ("input", "output"):
            raise VsimParseError(
                f"line {tok.line}: expected port direction, got {tok.text!r}"
            )
        self._advance()
        kind_tok = self._tok
        if kind_tok.text in ("wire", "reg"):
            kind = self._advance().text
        else:
            kind = "wire"
        msb, lsb = self._parse_range()
        name = self._expect_id().text
        return NetDecl(direction, kind, msb, lsb, name, line=tok.line)

    def _parse_range(self) -> tuple[Expr | None, Expr | None]:
        if not self._accept("["):
            return None, None
        msb = self._parse_expr()
        self._expect(":")
        lsb = self._parse_expr()
        self._expect("]")
        return msb, lsb

    def _parse_module_item(self, mod: ModuleAst) -> None:
        tok = self._tok
        if tok.kind == "eof":
            raise VsimParseError(f"line {tok.line}: missing endmodule")
        if tok.text in ("parameter", "localparam"):
            local = tok.text == "localparam"
            self._advance()
            name = self._expect_id().text
            self._expect("=")
            value = self._parse_expr()
            self._expect(";")
            mod.params.append(ParamDecl(name, value, local, line=tok.line))
            return
        if tok.text in ("reg", "wire"):
            kind = self._advance().text
            msb, lsb = self._parse_range()
            name = self._expect_id().text
            if self._check("["):  # memory array: outside the subset
                raise VsimParseError(
                    f"line {tok.line}: memory arrays are outside the vsim subset"
                )
            self._expect(";")
            mod.nets.append(NetDecl(None, kind, msb, lsb, name, line=tok.line))
            return
        if tok.text == "assign":
            self._advance()
            target = self._expect_id().text
            self._expect("=")
            rhs = self._parse_expr()
            self._expect(";")
            mod.assigns.append(ContAssign(target, rhs, line=tok.line))
            return
        if tok.text == "always":
            self._advance()
            self._expect("@")
            self._expect("(")
            self._expect("posedge")
            clock = self._expect_id().text
            self._expect(")")
            body = self._parse_stmt_block()
            mod.always.append(AlwaysBlock(clock, body, line=tok.line))
            return
        if tok.kind == "id":
            mod.instances.append(self._parse_instance())
            return
        raise VsimParseError(
            f"line {tok.line}: unexpected module item {tok.text!r}"
        )

    def _parse_instance(self) -> Instance:
        tok = self._tok
        module = self._expect_id().text
        inst = Instance(module=module, name="", line=tok.line)
        if self._accept("#"):
            self._expect("(")
            while not self._accept(")"):
                self._expect(".")
                pname = self._expect_id().text
                self._expect("(")
                inst.param_overrides.append((pname, self._parse_expr()))
                self._expect(")")
                self._accept(",")
        inst.name = self._expect_id().text
        self._expect("(")
        while not self._accept(")"):
            dot = self._expect(".")
            port = self._expect_id().text
            self._expect("(")
            expr = None if self._check(")") else self._parse_expr()
            self._expect(")")
            inst.connections.append(Connection(port, expr, line=dot.line))
            self._accept(",")
        self._expect(";")
        return inst

    # ---------------------------------------------------------- statements

    def _parse_stmt_block(self) -> list[Stmt]:
        """A single statement, or a begin/end list."""
        if self._accept("begin"):
            stmts = []
            while not self._accept("end"):
                stmts.append(self._parse_stmt())
            return stmts
        return [self._parse_stmt()]

    def _parse_stmt(self) -> Stmt:
        tok = self._tok
        if tok.text == "if":
            self._advance()
            self._expect("(")
            cond = self._parse_expr()
            self._expect(")")
            then = self._parse_stmt_block()
            other = self._parse_stmt_block() if self._accept("else") else []
            return If(cond, then, other, line=tok.line)
        if tok.text == "case":
            self._advance()
            self._expect("(")
            subject = self._parse_expr()
            self._expect(")")
            items = []
            while not self._accept("endcase"):
                items.append(self._parse_case_item())
            return Case(subject, items, line=tok.line)
        if tok.kind == "id":
            target = self._advance().text
            op_tok = self._tok
            if op_tok.text != "<=":
                raise VsimParseError(
                    f"line {op_tok.line}: only nonblocking assignment is in "
                    f"the subset (got {op_tok.text!r})"
                )
            self._advance()
            rhs = self._parse_expr()
            self._expect(";")
            return NonBlocking(target, rhs, line=tok.line)
        raise VsimParseError(
            f"line {tok.line}: unexpected statement {tok.text!r}"
        )

    def _parse_case_item(self) -> CaseItem:
        tok = self._tok
        if self._accept("default"):
            self._accept(":")
            return CaseItem([], self._parse_stmt_block(), line=tok.line)
        labels = [self._parse_expr()]
        while self._accept(","):
            labels.append(self._parse_expr())
        self._expect(":")
        return CaseItem(labels, self._parse_stmt_block(), line=tok.line)

    # --------------------------------------------------------- expressions

    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            then = self._parse_ternary()
            self._expect(":")
            other = self._parse_ternary()
            return Ternary(cond, then, other, line=cond.line)
        return cond

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self._tok.kind == "punct" and self._tok.text in ops:
            op = self._advance().text
            right = self._parse_binary(level + 1)
            left = Binary(op, left, right, line=left.line)
        return left

    def _parse_unary(self) -> Expr:
        tok = self._tok
        if tok.kind == "punct" and tok.text in _UNARY_OPS:
            self._advance()
            return Unary(tok.text, self._parse_unary(), line=tok.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._accept("["):
            msb = self._parse_expr()
            lsb = None
            if self._accept(":"):
                lsb = self._parse_expr()
            self._expect("]")
            expr = Select(expr, msb, lsb, line=expr.line)
        return expr

    def _parse_primary(self) -> Expr:
        tok = self._tok
        if tok.kind == "num":
            self._advance()
            return Num(tok.value, tok.width, line=tok.line)
        if tok.text == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if tok.text == "{":
            return self._parse_concat()
        if tok.text == "$signed":
            self._advance()
            self._expect("(")
            operand = self._parse_expr()
            self._expect(")")
            return SignedCast(operand, line=tok.line)
        if tok.kind == "id":
            self._advance()
            if self._check("("):  # operator-core call
                self._advance()
                args = []
                while not self._accept(")"):
                    args.append(self._parse_expr())
                    self._accept(",")
                return FuncCall(tok.text, args, line=tok.line)
            return Ref(tok.text, line=tok.line)
        raise VsimParseError(
            f"line {tok.line}: unexpected token {tok.text!r} in expression"
        )

    def _parse_concat(self) -> Expr:
        open_tok = self._expect("{")
        first = self._parse_expr()
        if self._check("{"):  # replication: {count{value}}
            self._advance()
            value = self._parse_expr()
            self._expect("}")
            self._expect("}")
            return Repeat(first, value, line=open_tok.line)
        parts = [first]
        while self._accept(","):
            parts.append(self._parse_expr())
        self._expect("}")
        return Concat(parts, line=open_tok.line)
