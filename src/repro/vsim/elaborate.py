"""Elaboration: flatten a module hierarchy into an executable design.

Takes parsed module ASTs and produces a :class:`Design`:

* every net of every instance becomes a flat two-state signal named with
  its dotted instance path (``u_core.mem_req``),
* parameters are substituted with their (override-resolved) constant
  values,
* continuous assigns — including the implicit ones created by instance
  port connections — are compiled to closures and topologically sorted,
* each ``always @(posedge ...)`` block is compiled to a closure that
  reads pre-edge state and writes a nonblocking-assignment buffer.

Width semantics follow self-determined Verilog sizing for the subset the
emitter produces: binary arithmetic/bitwise results take the wider
operand width, comparisons are 1 bit, shifts take the left operand's
width, concatenations/part-selects are unsigned, and ``$signed`` marks
an operand for signed extension/comparison/division.  Assignment-context
widening (extending operands to the LHS width *before* an operation) is
deliberately not modelled; the emitter never relies on it, and
:mod:`repro.vsim.lint` rejects modules that would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .ast_nodes import (
    AlwaysBlock,
    Binary,
    Case,
    Concat,
    Expr,
    FuncCall,
    If,
    Instance,
    ModuleAst,
    NetDecl,
    NonBlocking,
    Num,
    Ref,
    Repeat,
    Select,
    SignedCast,
    Stmt,
    Ternary,
    Unary,
)
from .errors import VsimElabError
from .intrinsics import INTRINSICS
from .parser import parse_verilog


def _mask(width: int) -> int:
    return (1 << width) - 1


def _to_signed(value: int, width: int) -> int:
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def _extend(value: int, from_width: int, to_width: int, signed: bool) -> int:
    if to_width <= from_width:
        return value
    if signed:
        return _to_signed(value, from_width) & _mask(to_width)
    return value


@dataclass(frozen=True)
class CExpr:
    """A compiled expression: evaluator + static type facts."""

    fn: Callable[[dict], int]
    width: int
    signed: bool
    deps: frozenset[str]


@dataclass
class Signal:
    name: str
    width: int
    kind: str  # "reg" | "wire"
    direction: str | None = None  # input/output for ports, None internal


@dataclass
class Design:
    """A flattened, compiled module hierarchy ready to simulate."""

    top: str
    signals: dict[str, Signal] = field(default_factory=dict)
    #: (target, expr) in topological order.
    comb: list[tuple[str, CExpr]] = field(default_factory=list)
    #: one closure per always block: fn(state, nba_buffer)
    seq: list[Callable[[dict, dict], None]] = field(default_factory=list)


def elaborate(
    source: str,
    top: str | None = None,
    params: dict[str, int] | None = None,
) -> Design:
    """Parse ``source`` and flatten the ``top`` module (default: first)."""
    modules = parse_verilog(source)
    if not modules:
        raise VsimElabError("no modules in source")
    by_name = {m.name: m for m in modules}
    top_mod = by_name[top] if top else modules[0]
    if top and top not in by_name:
        raise VsimElabError(f"unknown top module {top!r}")
    design = Design(top=top_mod.name)
    raw_comb: list[tuple[str, CExpr, int]] = []
    _instantiate(top_mod, "", params or {}, by_name, design, raw_comb)
    design.comb = _topo_sort(raw_comb, design)
    return design


# --------------------------------------------------------------------------
# Instance flattening
# --------------------------------------------------------------------------


class _Scope:
    """Name resolution for one module instance."""

    def __init__(self, module: ModuleAst, prefix: str) -> None:
        self.module = module
        self.prefix = prefix
        self.params: dict[str, tuple[int, int]] = {}  # name -> (value, width)
        self.locals: dict[str, Signal] = {}  # local name -> signal

    def resolve(self, name: str, line: int) -> Signal:
        sig = self.locals.get(name)
        if sig is None:
            raise VsimElabError(
                f"{self.module.name} line {line}: undeclared identifier {name!r}"
            )
        return sig


def _instantiate(
    mod: ModuleAst,
    prefix: str,
    overrides: dict[str, int],
    by_name: dict[str, ModuleAst],
    design: Design,
    raw_comb: list[tuple[str, CExpr, int]],
    parent_scope: _Scope | None = None,
    connections: list | None = None,
) -> _Scope:
    scope = _Scope(mod, prefix)

    for pdecl in mod.params:
        value = _const_eval(pdecl.value, scope, pdecl.line)
        width = pdecl.value.width if isinstance(pdecl.value, Num) else None
        if not pdecl.local and pdecl.name in overrides:
            value = overrides[pdecl.name]
        scope.params[pdecl.name] = (value, width or 32)

    for decl in list(mod.ports) + list(mod.nets):
        width = _decl_width(decl, scope)
        gname = prefix + decl.name
        if gname in design.signals:
            raise VsimElabError(
                f"{mod.name} line {decl.line}: duplicate declaration "
                f"of {decl.name!r}"
            )
        sig = Signal(gname, width, decl.kind, decl.direction)
        design.signals[gname] = sig
        scope.locals[decl.name] = sig

    # Port connections become implicit continuous assigns.
    for conn in connections or []:
        port = next((p for p in mod.ports if p.name == conn.port), None)
        if port is None:
            raise VsimElabError(
                f"{mod.name}: instance connects unknown port {conn.port!r}"
            )
        if conn.expr is None:
            continue  # unconnected: inputs read 0, outputs dangle
        if port.direction == "input":
            cexpr = _compile_expr(conn.expr, parent_scope)
            raw_comb.append((prefix + port.name, cexpr, conn.line))
        else:
            if not isinstance(conn.expr, Ref):
                raise VsimElabError(
                    f"{mod.name}: output port {conn.port!r} must connect "
                    "to a plain net"
                )
            target = parent_scope.resolve(conn.expr.name, conn.line)
            cexpr = _compile_expr(Ref(port.name, line=conn.line), scope)
            raw_comb.append((target.name, cexpr, conn.line))

    for assign in mod.assigns:
        target = scope.resolve(assign.target, assign.line)
        raw_comb.append(
            (target.name, _compile_expr(assign.rhs, scope), assign.line)
        )

    for block in mod.always:
        design.seq.append(_compile_always(block, scope))

    for inst in mod.instances:
        child = by_name.get(inst.module)
        if child is None:
            raise VsimElabError(
                f"{mod.name}: instance of unknown module {inst.module!r}"
            )
        child_overrides = {
            pname: _const_eval(pexpr, scope, inst.line)
            for pname, pexpr in inst.param_overrides
        }
        _instantiate(
            child,
            prefix + inst.name + ".",
            child_overrides,
            by_name,
            design,
            raw_comb,
            parent_scope=scope,
            connections=inst.connections,
        )
    return scope


def _decl_width(decl: NetDecl, scope: _Scope) -> int:
    if decl.msb is None:
        return 1
    msb = _const_eval(decl.msb, scope, decl.line)
    lsb = _const_eval(decl.lsb, scope, decl.line)
    if msb < lsb:
        raise VsimElabError(
            f"{scope.module.name} line {decl.line}: reversed range on "
            f"{decl.name!r}"
        )
    return msb - lsb + 1


def _topo_sort(
    raw: list[tuple[str, CExpr, int]], design: Design
) -> list[tuple[str, CExpr]]:
    """Order continuous assigns so dependencies evaluate first."""
    drivers: dict[str, tuple[str, CExpr, int]] = {}
    for target, cexpr, line in raw:
        if target in drivers:
            raise VsimElabError(f"multiply-driven net {target!r}")
        sig = design.signals[target]
        if sig.kind == "reg" and sig.direction is None:
            raise VsimElabError(
                f"continuous assignment to reg {target!r}"
            )
        drivers[target] = (target, cexpr, line)

    order: list[tuple[str, CExpr]] = []
    visiting: set[str] = set()
    done: set[str] = set()

    def visit(target: str) -> None:
        if target in done:
            return
        if target in visiting:
            raise VsimElabError(f"combinational loop through {target!r}")
        visiting.add(target)
        _, cexpr, _ = drivers[target]
        for dep in cexpr.deps:
            if dep in drivers:
                visit(dep)
        visiting.discard(target)
        done.add(target)
        order.append((target, cexpr))

    for target in drivers:
        visit(target)
    return order


# --------------------------------------------------------------------------
# Expression compilation
# --------------------------------------------------------------------------


def _const_eval(expr: Expr, scope: _Scope, line: int) -> int:
    cexpr = _compile_expr(expr, scope)
    if cexpr.deps:
        raise VsimElabError(
            f"{scope.module.name} line {line}: expression must be constant"
        )
    return cexpr.fn({})


def _compile_expr(expr: Expr, scope: _Scope) -> CExpr:
    if isinstance(expr, Num):
        width = expr.width or 32
        value = expr.value & _mask(width)
        return CExpr(lambda s: value, width, False, frozenset())

    if isinstance(expr, Ref):
        if expr.name in scope.params:
            value, width = scope.params[expr.name]
            masked = value & _mask(width)
            return CExpr(lambda s: masked, width, False, frozenset())
        sig = scope.resolve(expr.name, expr.line)
        name = sig.name
        return CExpr(
            lambda s: s[name], sig.width, False, frozenset((name,))
        )

    if isinstance(expr, SignedCast):
        inner = _compile_expr(expr.operand, scope)
        return CExpr(inner.fn, inner.width, True, inner.deps)

    if isinstance(expr, Unary):
        return _compile_unary(expr, scope)

    if isinstance(expr, Binary):
        return _compile_binary(expr, scope)

    if isinstance(expr, Ternary):
        cond = _compile_expr(expr.cond, scope)
        then = _compile_expr(expr.then, scope)
        other = _compile_expr(expr.other, scope)
        width = max(then.width, other.width)
        tf, of = then.fn, other.fn
        tw, ow = then.width, other.width
        ts, os_ = then.signed, other.signed
        cf = cond.fn

        def fn(s):
            if cf(s):
                return _extend(tf(s), tw, width, ts)
            return _extend(of(s), ow, width, os_)

        return CExpr(
            fn, width, then.signed and other.signed,
            cond.deps | then.deps | other.deps,
        )

    if isinstance(expr, Select):
        base = _compile_expr(expr.base, scope)
        msb = _const_eval(expr.msb, scope, expr.line)
        lsb = msb if expr.lsb is None else _const_eval(expr.lsb, scope, expr.line)
        if msb < lsb or msb >= base.width:
            raise VsimElabError(
                f"{scope.module.name} line {expr.line}: part-select "
                f"[{msb}:{lsb}] out of range for width {base.width}"
            )
        width = msb - lsb + 1
        bf = base.fn
        sel_mask = _mask(width)
        return CExpr(
            lambda s: (bf(s) >> lsb) & sel_mask, width, False, base.deps
        )

    if isinstance(expr, Concat):
        parts = [_compile_expr(p, scope) for p in expr.parts]
        width = sum(p.width for p in parts)
        deps = frozenset().union(*(p.deps for p in parts))

        def fn(s):
            out = 0
            for part in parts:
                out = (out << part.width) | part.fn(s)
            return out

        return CExpr(fn, width, False, deps)

    if isinstance(expr, Repeat):
        count = _const_eval(expr.count, scope, expr.line)
        value = _compile_expr(expr.value, scope)
        width = count * value.width
        vf, vw = value.fn, value.width

        def fn(s):
            v = vf(s)
            out = 0
            for _ in range(count):
                out = (out << vw) | v
            return out

        return CExpr(fn, width, False, value.deps)

    if isinstance(expr, FuncCall):
        entry = INTRINSICS.get(expr.name)
        if entry is None:
            raise VsimElabError(
                f"{scope.module.name} line {expr.line}: unknown operator "
                f"core {expr.name!r}"
            )
        core, width = entry
        args = [_compile_expr(a, scope) for a in expr.args]
        deps = frozenset().union(*(a.deps for a in args)) if args else frozenset()

        def fn(s):
            values = [
                _to_signed(a.fn(s), a.width) if a.signed else a.fn(s)
                for a in args
            ]
            return core(*values) & _mask(width)

        return CExpr(fn, width, False, deps)

    raise VsimElabError(f"unsupported expression node {type(expr).__name__}")


def _compile_unary(expr: Unary, scope: _Scope) -> CExpr:
    inner = _compile_expr(expr.operand, scope)
    f, w = inner.fn, inner.width
    if expr.op == "!":
        return CExpr(lambda s: int(f(s) == 0), 1, False, inner.deps)
    if expr.op == "~":
        m = _mask(w)
        return CExpr(lambda s: ~f(s) & m, w, inner.signed, inner.deps)
    if expr.op == "-":
        m = _mask(w)
        return CExpr(lambda s: -f(s) & m, w, inner.signed, inner.deps)
    if expr.op == "+":
        return inner
    raise VsimElabError(f"unsupported unary operator {expr.op!r}")


def _compile_binary(expr: Binary, scope: _Scope) -> CExpr:
    left = _compile_expr(expr.left, scope)
    right = _compile_expr(expr.right, scope)
    op = expr.op
    deps = left.deps | right.deps
    lf, rf = left.fn, right.fn
    lw, rw = left.width, right.width

    if op in ("&&", "||"):
        if op == "&&":
            return CExpr(
                lambda s: int(bool(lf(s)) and bool(rf(s))), 1, False, deps
            )
        return CExpr(
            lambda s: int(bool(lf(s)) or bool(rf(s))), 1, False, deps
        )

    if op in ("<<", ">>", ">>>"):
        m = _mask(lw)
        signed = left.signed and op == ">>>"
        if op == "<<":
            def fn(s):
                shift = rf(s)
                return 0 if shift >= lw else (lf(s) << shift) & m
        elif op == ">>":
            def fn(s):
                return lf(s) >> rf(s)
        else:  # >>>
            if left.signed:
                def fn(s):
                    return (_to_signed(lf(s), lw) >> rf(s)) & m
            else:
                def fn(s):
                    return lf(s) >> rf(s)
        return CExpr(fn, lw, signed, deps)

    # Remaining operators extend both operands to the common width.
    width = max(lw, rw)
    signed = left.signed and right.signed
    ls, rs = left.signed, right.signed

    def lval(s):
        return _extend(lf(s), lw, width, ls)

    def rval(s):
        return _extend(rf(s), rw, width, rs)

    if op in ("==", "!=", "<", "<=", ">", ">="):
        if signed:
            def decode(v):
                return _to_signed(v, width)
        else:
            def decode(v):
                return v
        cmp_fn = {
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }[op]
        return CExpr(
            lambda s: int(cmp_fn(decode(lval(s)), decode(rval(s)))),
            1, False, deps,
        )

    m = _mask(width)
    if op == "+":
        fn = lambda s: (lval(s) + rval(s)) & m
    elif op == "-":
        fn = lambda s: (lval(s) - rval(s)) & m
    elif op == "*":
        fn = lambda s: (lval(s) * rval(s)) & m
    elif op == "&":
        fn = lambda s: lval(s) & rval(s)
    elif op == "|":
        fn = lambda s: lval(s) | rval(s)
    elif op == "^":
        fn = lambda s: lval(s) ^ rval(s)
    elif op in ("/", "%"):
        rem = op == "%"

        def fn(s):
            a, b = lval(s), rval(s)
            if b == 0:
                from .errors import VsimRuntimeError

                raise VsimRuntimeError("division by zero")
            if signed:
                sa, sb = _to_signed(a, width), _to_signed(b, width)
                q = abs(sa) // abs(sb)
                if (sa < 0) != (sb < 0):
                    q = -q
                return (q if not rem else sa - q * sb) & m
            return (a % b if rem else a // b) & m
    else:
        raise VsimElabError(f"unsupported binary operator {op!r}")
    return CExpr(fn, width, signed, deps)


# --------------------------------------------------------------------------
# Statement compilation (always blocks)
# --------------------------------------------------------------------------


def _compile_always(
    block: AlwaysBlock, scope: _Scope
) -> Callable[[dict, dict], None]:
    stmts = [_compile_stmt(s, scope) for s in block.body]

    def run(state: dict, nba: dict) -> None:
        for stmt in stmts:
            stmt(state, nba)

    return run


def _compile_stmt(
    stmt: Stmt, scope: _Scope
) -> Callable[[dict, dict], None]:
    if isinstance(stmt, NonBlocking):
        target = scope.resolve(stmt.target, stmt.line)
        rhs = _compile_expr(stmt.rhs, scope)
        name, tw = target.name, target.width
        rf, rw, rsigned = rhs.fn, rhs.width, rhs.signed
        m = _mask(tw)

        def run(state, nba):
            nba[name] = _extend(rf(state), rw, tw, rsigned) & m

        return run

    if isinstance(stmt, If):
        cond = _compile_expr(stmt.cond, scope)
        then = [_compile_stmt(s, scope) for s in stmt.then]
        other = [_compile_stmt(s, scope) for s in stmt.other]
        cf = cond.fn

        def run(state, nba):
            for s in then if cf(state) else other:
                s(state, nba)

        return run

    if isinstance(stmt, Case):
        subject = _compile_expr(stmt.subject, scope)
        sm = _mask(subject.width)
        table: dict[int, list] = {}
        default: list = []
        for item in stmt.items:
            body = [_compile_stmt(s, scope) for s in item.body]
            if not item.labels:
                default = body
                continue
            for label in item.labels:
                value = _const_eval(label, scope, item.line) & sm
                table[value] = body
        sf = subject.fn

        def run(state, nba):
            for s in table.get(sf(state) & sm, default):
                s(state, nba)

        return run

    raise VsimElabError(f"unsupported statement {type(stmt).__name__}")
