"""Cycle-level simulation of an elaborated design.

Two-state (0/1) semantics: every signal starts at 0, there is no X/Z.
One :meth:`Simulation.step` models one rising clock edge:

1. combinational assigns settle on the pre-edge state (in topological
   order, so one pass suffices — elaboration rejects loops),
2. every ``always @(posedge ...)`` block evaluates against that settled
   pre-edge state, writing into a nonblocking-assignment buffer
   (last write wins, matching NBA semantics),
3. the buffer commits, masked to each signal's width,
4. combinational assigns settle again so ``peek`` reads post-edge values.

The single-clock assumption matches the emitter: every always block is
clocked by the module's ``clk`` input, so all blocks fire on each step.
"""

from __future__ import annotations

from .elaborate import Design, _mask
from .errors import VsimRuntimeError


class Simulation:
    """Drive an elaborated :class:`Design` cycle by cycle."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self.state: dict[str, int] = {
            name: 0 for name in design.signals
        }
        self.cycle = 0
        self._settle()

    # ----------------------------------------------------------- interface

    def poke(self, name: str, value: int) -> None:
        """Drive a top-level input (or force any signal) for the next edge."""
        sig = self.design.signals.get(name)
        if sig is None:
            raise VsimRuntimeError(f"poke of unknown signal {name!r}")
        self.state[name] = value & _mask(sig.width)
        self._settle()

    def peek(self, name: str) -> int:
        try:
            return self.state[name]
        except KeyError:
            raise VsimRuntimeError(f"peek of unknown signal {name!r}") from None

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` rising edges."""
        signals = self.design.signals
        for _ in range(cycles):
            nba: dict[str, int] = {}
            for block in self.design.seq:
                block(self.state, nba)
            for name, value in nba.items():
                self.state[name] = value & _mask(signals[name].width)
            self._settle()
            self.cycle += 1

    # ------------------------------------------------------------ internal

    def _settle(self) -> None:
        state = self.state
        for target, cexpr in self.design.comb:
            state[target] = cexpr.fn(state)
