"""Tokenizer for the emitter's Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import VsimParseError

_PUNCT = (
    ">>>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "<<",
    ">>",
    "+:",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "?",
    ":",
    "=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ".",
    "#",
    "@",
)

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")
_BASE_DIGITS = {
    "d": set("0123456789_"),
    "h": set("0123456789abcdefABCDEF_"),
    "b": set("01_"),
    "o": set("01234567_"),
}


@dataclass
class Token:
    kind: str  # "id" | "num" | "punct" | "eof"
    text: str
    line: int
    value: int = 0
    width: int | None = None  # for sized number literals


def tokenize(source: str) -> list[Token]:
    """Tokenize Verilog source, skipping comments and compiler directives."""
    tokens: list[Token] = []
    i, n, line = 0, len(source), 1
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise VsimParseError(f"line {line}: unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == "`":  # compiler directive (`timescale ...) — skip the line
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == '"':  # string literal (testbench $display) — single token
            end = source.find('"', i + 1)
            if end < 0:
                raise VsimParseError(f"line {line}: unterminated string")
            tokens.append(Token("string", source[i : end + 1], line))
            i = end + 1
            continue
        if ch in _ID_START:
            j = i + 1
            while j < n and source[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", source[i:j], line))
            i = j
            continue
        if ch.isdigit() or ch == "'":
            i = _lex_number(source, i, line, tokens)
            continue
        for punct in _PUNCT:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line))
                i += len(punct)
                break
        else:
            raise VsimParseError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens


def _lex_number(source: str, i: int, line: int, tokens: list[Token]) -> int:
    """Lex ``123``, ``64'hdead_beef``, ``4'b1010``, ``'d5``."""
    n = len(source)
    j = i
    while j < n and source[j].isdigit():
        j += 1
    size_text = source[i:j]
    if j < n and source[j] == "'":
        width = int(size_text) if size_text else 32
        j += 1
        if j >= n or source[j].lower() not in _BASE_DIGITS:
            raise VsimParseError(f"line {line}: bad number base after '")
        base_ch = source[j].lower()
        digits = _BASE_DIGITS[base_ch]
        j += 1
        k = j
        while k < n and source[k] in digits:
            k += 1
        text = source[j:k].replace("_", "")
        if not text:
            raise VsimParseError(f"line {line}: empty number literal")
        base = {"d": 10, "h": 16, "b": 2, "o": 8}[base_ch]
        value = int(text, base)
        tokens.append(
            Token("num", source[i:k], line, value=value & ((1 << width) - 1), width=width)
        )
        return k
    if not size_text:
        raise VsimParseError(f"line {line}: bare ' is not a number")
    tokens.append(Token("num", size_text, line, value=int(size_text), width=None))
    return j
