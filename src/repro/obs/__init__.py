"""repro.obs — the structured run-record spine.

Every subsystem that *runs* something (simulation, DSE, fault sweeps,
RTL co-simulation, service jobs, benchmarks) historically invented its
own report shape.  This package unifies them behind one versioned,
typed **run envelope** (wide-event style): a single JSON record per run
carrying the config hash, engine, cycle count, stall breakdown,
cost-model outputs and the subsystem's verdict payload, persisted
through the content-addressed :class:`~repro.service.store.ArtifactStore`
plus an append-only ``envelopes.jsonl`` journal per store root.

Layers:

* :mod:`repro.obs.envelope` — the :class:`RunEnvelope` schema and its
  strict, forward-compatible serialisation;
* :mod:`repro.obs.emit` — the :class:`EnvelopeWriter` plus one builder
  per subsystem report shape;
* :mod:`repro.obs.query` — ingestion (journal / store / directory),
  validation, filter / group-by / aggregate, and regression diffs;
* :mod:`repro.obs.dashboard` — a dependency-free static HTML report.

CLI: ``python -m repro.harness obs query|diff|report``.
"""

from .envelope import (
    ENVELOPE_KINDS,
    SCHEMA_VERSION,
    EnvelopeError,
    RunEnvelope,
)
from .emit import (
    EnvelopeWriter,
    bench_envelope,
    cosim_envelope,
    eval_envelope,
    faults_envelope,
    fleet_envelope,
    job_envelope,
    sim_envelope,
    sweep_envelope,
)
from .query import (
    EnvelopeSet,
    MetricDiff,
    diff_envelope_sets,
    load_envelopes,
)
from .dashboard import render_dashboard

__all__ = [
    "ENVELOPE_KINDS",
    "SCHEMA_VERSION",
    "EnvelopeError",
    "RunEnvelope",
    "EnvelopeWriter",
    "bench_envelope",
    "cosim_envelope",
    "eval_envelope",
    "faults_envelope",
    "fleet_envelope",
    "job_envelope",
    "sim_envelope",
    "sweep_envelope",
    "EnvelopeSet",
    "MetricDiff",
    "diff_envelope_sets",
    "load_envelopes",
    "render_dashboard",
]
