"""The versioned run envelope: one typed wide-event record per run.

A :class:`RunEnvelope` is the canonical machine-readable outcome of one
run of *any* subsystem — a simulation, a DSE point or sweep, a fault
sweep, an RTL co-simulation, a service job, or a benchmark.  The typed
fields carry everything cross-subsystem queries need (kind, kernel,
engine, config hash, cycles, stall breakdown, cost-model outputs,
verdicts); the full legacy report dict rides along as ``payload`` so no
information the per-subsystem shapes carried is lost, and ``extra`` is a
free-form annex for emitter-specific context.

Serialisation contract:

* :meth:`RunEnvelope.to_dict` emits every typed field with
  deterministically ordered mappings; ``from_dict(to_dict(e))`` rebuilds
  an equal envelope and ``to_dict(from_dict(d))`` returns ``d``
  bit-exactly for any dict this schema version wrote.
* :meth:`RunEnvelope.from_dict` tolerates *unknown keys* (dropped, like
  :meth:`repro.dse.evaluate.EvalResult.from_dict`) so records written by
  a same-major, later reader still load; but a record declaring a
  **newer schema version** fails with a typed, actionable
  :class:`EnvelopeError` — silently misreading a future schema is worse
  than refusing it.

The config hash reuses the service content-key discipline
(:attr:`repro.service.contracts.JobRequest.key` /
:func:`repro.service.store.content_key`): everything that determines the
run participates, so two envelopes with equal ``config_hash`` describe
re-runs of the same work and are directly comparable.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field, fields
from datetime import datetime, timezone

from ..errors import CgpaError

#: Current envelope schema version.  Bump on any change to the typed
#: field set or field semantics; readers refuse records from the future.
SCHEMA_VERSION = 1

#: Valid ``RunEnvelope.kind`` values, in documentation order.
ENVELOPE_KINDS = (
    "sim",          # one accelerator simulation (harness run / trace)
    "dse-eval",     # one design-point evaluation
    "dse-sweep",    # one full design-space sweep
    "faults",       # one resilience sweep
    "cosim",        # one RTL co-simulation
    "service-job",  # one executed service job (references its artifact)
    "bench",        # one benchmark figure
    "fleet",        # one supervision event (crash/retry/timeout/respawn/resume)
)

#: Fixed UTC timestamp format (lexicographic order == chronological).
_TS_FORMAT = "%Y-%m-%dT%H:%M:%S.%fZ"


class EnvelopeError(CgpaError):
    """A record that cannot be read as a :class:`RunEnvelope`.

    Raised with an actionable message: what was wrong, and (for version
    mismatches) what the reader supports versus what the record claims.
    """


def utc_timestamp() -> str:
    """Now, in the fixed envelope timestamp format."""
    return datetime.now(timezone.utc).strftime(_TS_FORMAT)


def new_run_id(kind: str) -> str:
    """A unique run id; the kind prefix keeps journals human-greppable."""
    return f"{kind}-{uuid.uuid4().hex[:12]}"


def _sorted_mapping(mapping: dict) -> dict:
    """Key-sorted shallow copy (one level of nesting sorted too)."""
    out = {}
    for key in sorted(mapping):
        value = mapping[key]
        out[key] = (
            {k: value[k] for k in sorted(value)}
            if isinstance(value, dict) else value
        )
    return out


@dataclass
class RunEnvelope:
    """One wide-event record: the outcome of one run, any subsystem.

    Optional typed fields are ``None`` (or empty) when the producing
    subsystem has no such quantity — a compile-only service job has no
    ``cycles``; a benchmark has no ``config_hash`` per design point.
    """

    kind: str
    run_id: str = ""
    timestamp: str = ""
    schema_version: int = SCHEMA_VERSION
    #: Kernel name, when the run targets a single kernel.
    kernel: str | None = None
    #: Simulator engine (event / lockstep / specialized), when meaningful.
    engine: str | None = None
    #: Content hash of everything determining the run (JobRequest.key
    #: discipline); equal hashes ⇒ re-runs of identical work.
    config_hash: str | None = None
    #: Run status / verdict summary: "ok", "deadlock", "failed", ...
    status: str | None = None
    #: Simulated cycle count (total, or the headline figure).
    cycles: int | None = None
    #: Aggregate stall cycles by telemetry category (summed over workers).
    stall_cycles: dict[str, int] = field(default_factory=dict)
    #: Cost-model outputs, when the run scored a design.
    total_aluts: int | None = None
    energy_uj: float | None = None
    power_mw: float | None = None
    cost_model_version: int | None = None
    #: Subsystem verdict counters (faults: diagnosed/detected counts;
    #: cosim: rounds/instances ok; dse: status counts).
    verdicts: dict = field(default_factory=dict)
    #: The full legacy report dict (deprecated as a standalone format;
    #: canonical here) — enough to regenerate the old report byte-exactly.
    payload: dict = field(default_factory=dict)
    #: Free-form emitter annex (CLI flags, hostnames, notes).
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.run_id:
            self.run_id = new_run_id(self.kind)
        if not self.timestamp:
            self.timestamp = utc_timestamp()

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`EnvelopeError` unless this envelope is schema-valid."""
        if not isinstance(self.schema_version, int) or isinstance(
            self.schema_version, bool
        ):
            raise EnvelopeError(
                f"envelope schema_version must be an int, "
                f"got {self.schema_version!r}"
            )
        if self.schema_version > SCHEMA_VERSION:
            raise EnvelopeError(
                f"envelope {self.run_id or '<unidentified>'} was written by "
                f"schema v{self.schema_version}; this reader supports up to "
                f"v{SCHEMA_VERSION} — upgrade repro (or regenerate the "
                f"journal with this version) before querying it"
            )
        if self.kind not in ENVELOPE_KINDS:
            raise EnvelopeError(
                f"envelope {self.run_id or '<unidentified>'}: unknown kind "
                f"{self.kind!r}; expected one of {list(ENVELOPE_KINDS)}"
            )
        for name in ("run_id", "timestamp"):
            if not isinstance(getattr(self, name), str) or not getattr(self, name):
                raise EnvelopeError(
                    f"envelope field {name!r} must be a non-empty string, "
                    f"got {getattr(self, name)!r}"
                )
        for name in ("kernel", "engine", "config_hash", "status"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise EnvelopeError(
                    f"envelope {self.run_id}: field {name!r} must be a "
                    f"string or null, got {value!r}"
                )
        if self.cycles is not None and (
            not isinstance(self.cycles, int) or isinstance(self.cycles, bool)
        ):
            raise EnvelopeError(
                f"envelope {self.run_id}: cycles must be an int or null, "
                f"got {self.cycles!r}"
            )
        for name in ("stall_cycles", "verdicts", "payload", "extra"):
            if not isinstance(getattr(self, name), dict):
                raise EnvelopeError(
                    f"envelope {self.run_id}: field {name!r} must be a "
                    f"mapping, got {type(getattr(self, name)).__name__}"
                )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Strict canonical dict form (deterministic mapping order)."""
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "kind": self.kind,
            "kernel": self.kernel,
            "engine": self.engine,
            "config_hash": self.config_hash,
            "status": self.status,
            "cycles": self.cycles,
            "stall_cycles": {
                k: self.stall_cycles[k] for k in sorted(self.stall_cycles)
            },
            "total_aluts": self.total_aluts,
            "energy_uj": self.energy_uj,
            "power_mw": self.power_mw,
            "cost_model_version": self.cost_model_version,
            "verdicts": _sorted_mapping(self.verdicts),
            "payload": self.payload,
            "extra": _sorted_mapping(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunEnvelope":
        """Parse and validate one envelope dict.

        Unknown keys are dropped (forward compatibility within the
        schema version); a missing or *newer* ``schema_version`` raises
        a typed :class:`EnvelopeError`.
        """
        if not isinstance(data, dict):
            raise EnvelopeError(
                f"envelope record must be a JSON object, "
                f"got {type(data).__name__}"
            )
        version = data.get("schema_version")
        if version is None:
            raise EnvelopeError(
                "record has no schema_version field; not a run envelope "
                "(legacy report dicts must be wrapped by their subsystem's "
                "emitter in repro.obs.emit)"
            )
        known = {f.name for f in fields(cls)}
        kept = {k: v for k, v in data.items() if k in known}
        if "kind" not in kept:
            raise EnvelopeError("envelope record has no kind field")
        try:
            envelope = cls(**kept)
        except TypeError as exc:
            raise EnvelopeError(f"malformed envelope record: {exc}")
        envelope.validate()
        return envelope

    # -- convenience -------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when the run finished without a failure verdict."""
        return self.status in (None, "ok", "done")

    def age_key(self) -> tuple[str, str]:
        """Sort key: (timestamp, run_id) — chronological, stable."""
        return (self.timestamp, self.run_id)

    def identity(self) -> tuple:
        """What this envelope is a run *of* (for cross-journal matching)."""
        return (self.kind, self.kernel, self.engine, self.config_hash)
