"""Dependency-free static HTML dashboard over an envelope journal.

:func:`render_dashboard` turns an :class:`~repro.obs.query.EnvelopeSet`
into one self-contained HTML page — inline CSS, a few lines of inline JS
for table sorting, inline SVG sparklines for bench trends, no external
fetches of any kind — so the file renders anywhere (CI artifact viewer,
``file://``, an air-gapped machine).

Sections, each driven purely by envelope fields:

* overview — run counts by kind, journal time range, validation errors;
* simulations — latest cycles + stall-category bars per kernel/engine;
* engine equivalence — kernels × engines cycle matrix, divergence
  flagged (the three simulator engines must agree bit-exactly);
* DSE — per-sweep status counts, frontier size and best point;
* faults — verdict counters per sweep;
* cosim — rounds/instances verdicts;
* service — job status tally;
* bench — chronological sparkline per benchmark figure.
"""

from __future__ import annotations

import html

from .query import EnvelopeSet

#: Stall-category display order and colors (matches telemetry docs).
_STALL_COLORS = (
    ("active", "#4c9f70"),
    ("mem_stall", "#d1495b"),
    ("fifo_full", "#edae49"),
    ("fifo_empty", "#00798c"),
    ("join_stall", "#9656a1"),
    ("idle", "#b8b8b8"),
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1b1b1b; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem;
     border-bottom: 1px solid #ddd; padding-bottom: .25rem; }
table { border-collapse: collapse; margin: .75rem 0; font-size: .85rem; }
th, td { border: 1px solid #ddd; padding: .3rem .6rem; text-align: left; }
th { background: #f5f5f5; cursor: pointer; user-select: none; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #2e7d32; font-weight: 600; }
.bad { color: #c62828; font-weight: 600; }
.muted { color: #777; }
.bar { display: flex; height: .9rem; min-width: 10rem;
       border-radius: 2px; overflow: hidden; }
.bar span { display: block; height: 100%; }
.legend span { display: inline-block; margin-right: .9rem;
               font-size: .8rem; }
.legend i { display: inline-block; width: .7rem; height: .7rem;
            margin-right: .3rem; border-radius: 2px; }
code { background: #f2f2f2; padding: 0 .25rem; border-radius: 3px; }
.errors { background: #fff3f3; border: 1px solid #e5b4b4;
          padding: .5rem .75rem; border-radius: 4px; }
"""

# Click a header to sort its column; numeric when every cell parses.
_JS = """
document.querySelectorAll('th').forEach(function (th) {
  th.addEventListener('click', function () {
    var table = th.closest('table');
    var index = Array.prototype.indexOf.call(th.parentNode.children, th);
    var rows = Array.prototype.slice.call(
      table.querySelectorAll('tbody tr'));
    var dir = th.dataset.dir === 'asc' ? -1 : 1;
    th.dataset.dir = dir === 1 ? 'asc' : 'desc';
    rows.sort(function (a, b) {
      var x = a.children[index].textContent.trim();
      var y = b.children[index].textContent.trim();
      var nx = parseFloat(x), ny = parseFloat(y);
      if (!isNaN(nx) && !isNaN(ny)) return dir * (nx - ny);
      return dir * x.localeCompare(y);
    });
    rows.forEach(function (row) {
      table.querySelector('tbody').appendChild(row); });
  });
});
"""


def _esc(value) -> str:
    return html.escape("-" if value is None else str(value))


def _table(headers: list[str], rows: list[list[str]], numeric=()) -> str:
    """Rows are pre-escaped HTML cell strings."""
    def cell(tag, index, content):
        cls = ' class="num"' if index in numeric else ""
        return f"<{tag}{cls}>{content}</{tag}>"

    head = "".join(cell("th", i, _esc(h)) for i, h in enumerate(headers))
    body = "".join(
        "<tr>" + "".join(cell("td", i, c) for i, c in enumerate(row)) + "</tr>"
        for row in rows
    )
    return (
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def _stall_bar(stall_cycles: dict[str, int]) -> str:
    total = sum(stall_cycles.values())
    if not total:
        return '<span class="muted">no telemetry</span>'
    parts = []
    for category, color in _STALL_COLORS:
        count = stall_cycles.get(category, 0)
        if not count:
            continue
        pct = 100 * count / total
        parts.append(
            f'<span style="width:{pct:.2f}%;background:{color}" '
            f'title="{_esc(category)}: {count} ({pct:.0f}%)"></span>'
        )
    return f'<div class="bar">{"".join(parts)}</div>'


def _stall_legend() -> str:
    items = "".join(
        f'<span><i style="background:{color}"></i>{_esc(name)}</span>'
        for name, color in _STALL_COLORS
    )
    return f'<p class="legend">{items}</p>'


def _sparkline(values: list[float], width=220, height=36) -> str:
    """Inline SVG polyline over chronological values."""
    if not values:
        return '<span class="muted">no data</span>'
    if len(values) == 1:
        values = values * 2
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 4 - (v - low) / span * (height - 8):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#00798c" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def _status_cell(env) -> str:
    cls = "ok" if env.ok else "bad"
    return f'<span class="{cls}">{_esc(env.status)}</span>'


# -- sections ---------------------------------------------------------------


def _overview_section(envelopes: EnvelopeSet) -> str:
    counts = {kind: 0 for kind in envelopes.kinds()}
    for env in envelopes:
        counts[env.kind] += 1
    rows = [[_esc(kind), str(count)] for kind, count in sorted(counts.items())]
    parts = [
        "<h2>Overview</h2>",
        f"<p>{len(envelopes)} runs from "
        f"<code>{_esc(envelopes.source)}</code>",
    ]
    if len(envelopes):
        parts.append(
            f" · {_esc(envelopes[0].timestamp)} — "
            f"{_esc(envelopes[len(envelopes) - 1].timestamp)}"
        )
    parts.append("</p>")
    if rows:
        parts.append(_table(["kind", "runs"], rows, numeric={1}))
    if envelopes.errors:
        items = "".join(f"<li>{_esc(e)}</li>" for e in envelopes.errors)
        parts.append(
            f'<div class="errors"><strong>{len(envelopes.errors)} invalid '
            f"record(s) skipped</strong><ul>{items}</ul></div>"
        )
    return "".join(parts)


def _sim_section(envelopes: EnvelopeSet) -> str:
    sims = envelopes.filter(kind="sim")
    if not len(sims):
        return ""
    rows = []
    for (kernel, engine), group in sims.group_by("kernel", "engine").items():
        env = group[len(group) - 1]
        rows.append([
            _esc(kernel),
            _esc(engine),
            _esc(env.cycles),
            _stall_bar(env.stall_cycles),
            _esc(env.total_aluts),
            _esc(None if env.energy_uj is None else f"{env.energy_uj:.3f}"),
            str(len(group)),
        ])
    return (
        "<h2>Simulations</h2>"
        + _stall_legend()
        + _table(
            ["kernel", "engine", "cycles", "stall breakdown", "ALUTs",
             "energy (uJ)", "runs"],
            rows, numeric={2, 4, 5, 6},
        )
    )


def _equivalence_section(envelopes: EnvelopeSet) -> str:
    """Kernels × engines latest-cycles matrix; engines must agree."""
    sims = envelopes.filter(kind="sim")
    engines = sims.engines()
    if len(sims) == 0 or len(engines) < 2:
        return ""
    rows = []
    for kernel in sims.kernels():
        cells = [_esc(kernel)]
        cycles = []
        for engine in engines:
            group = sims.filter(kernel=kernel, engine=engine)
            if len(group):
                value = group[len(group) - 1].cycles
                cycles.append(value)
                cells.append(_esc(value))
            else:
                cells.append('<span class="muted">-</span>')
        agree = len({c for c in cycles if c is not None}) <= 1
        cells.append(
            '<span class="ok">agree</span>' if agree
            else '<span class="bad">DIVERGE</span>'
        )
        rows.append(cells)
    return (
        "<h2>Engine equivalence</h2>"
        "<p>Latest cycle count per kernel and engine; all engines must "
        "produce bit-identical runs.</p>"
        + _table(
            ["kernel"] + engines + ["verdict"],
            rows, numeric=set(range(1, len(engines) + 1)),
        )
    )


def _dse_section(envelopes: EnvelopeSet) -> str:
    sweeps = envelopes.filter(kind="dse-sweep")
    if not len(sweeps):
        return ""
    rows = []
    for env in sweeps:
        verdicts = env.verdicts
        statuses = ", ".join(
            f"{k}={v}"
            for k, v in sorted(verdicts.get("status_counts", {}).items())
        )
        rows.append([
            _esc(env.kernel),
            _esc(env.extra.get("strategy")),
            _esc(env.engine),
            _esc(verdicts.get("n_points")),
            _esc(statuses),
            _esc(verdicts.get("frontier_size")),
            _esc(env.cycles),
            _esc(env.total_aluts),
            _esc(None if env.energy_uj is None else f"{env.energy_uj:.3f}"),
        ])
    return "<h2>Design-space sweeps</h2>" + _table(
        ["kernel", "strategy", "engine", "points", "status", "frontier",
         "best cycles", "best ALUTs", "best energy (uJ)"],
        rows, numeric={3, 5, 6, 7, 8},
    )


def _faults_section(envelopes: EnvelopeSet) -> str:
    sweeps = envelopes.filter(kind="faults")
    if not len(sweeps):
        return ""
    rows = []
    for env in sweeps:
        v = env.verdicts
        triggered = v.get("corruptions_triggered", 0)
        detected = v.get("corruptions_detected", 0)
        rows.append([
            _esc(env.kernel),
            _esc(env.engine),
            _esc(env.extra.get("seed")),
            _esc(env.extra.get("n_plans")),
            _esc(v.get("timing_correct")),
            _esc(v.get("hangs_diagnosed")),
            f"{_esc(detected)}/{_esc(triggered)}",
            _esc(env.cycles),
        ])
    return "<h2>Fault sweeps</h2>" + _table(
        ["kernel", "engine", "seed", "plans/class", "timing correct",
         "hangs diagnosed", "corruptions detected", "baseline cycles"],
        rows, numeric={2, 3, 4, 5, 7},
    )


def _cosim_section(envelopes: EnvelopeSet) -> str:
    runs = envelopes.filter(kind="cosim")
    if not len(runs):
        return ""
    rows = []
    for env in runs:
        v = env.verdicts
        rows.append([
            _esc(env.kernel),
            _esc(env.extra.get("policy")),
            _status_cell(env),
            f"{_esc(v.get('rounds_ok'))}/{_esc(v.get('rounds'))}",
            _esc(v.get("instances")),
            _esc(env.cycles),
        ])
    return "<h2>RTL co-simulation</h2>" + _table(
        ["kernel", "policy", "verdict", "rounds ok", "instances", "cycles"],
        rows, numeric={4, 5},
    )


def _service_section(envelopes: EnvelopeSet) -> str:
    jobs = envelopes.filter(kind="service-job")
    if not len(jobs):
        return ""
    tally: dict[tuple, int] = {}
    for env in jobs:
        key = (env.verdicts.get("job_kind"), env.status)
        tally[key] = tally.get(key, 0) + 1
    rows = [
        [_esc(job_kind), _esc(status), str(count)]
        for (job_kind, status), count in sorted(
            tally.items(), key=lambda item: tuple(map(str, item[0]))
        )
    ]
    return "<h2>Service jobs</h2>" + _table(
        ["job kind", "status", "count"], rows, numeric={2}
    )


def _bench_section(envelopes: EnvelopeSet) -> str:
    benches = envelopes.filter(kind="bench")
    if not len(benches):
        return ""
    figures: dict[str, list] = {}
    for env in benches:
        figures.setdefault(str(env.extra.get("figure")), []).append(env)
    rows = []
    for figure, group in sorted(figures.items()):
        metric, values = _bench_trend(group)
        rows.append([
            _esc(figure),
            str(len(group)),
            _esc(metric),
            _esc(None if not values else round(values[-1], 4)),
            _sparkline(values),
        ])
    return (
        "<h2>Benchmarks</h2>"
        "<p>Chronological trend of each figure's headline metric.</p>"
        + _table(
            ["figure", "runs", "metric", "latest", "trend"],
            rows, numeric={1, 3},
        )
    )


def _bench_trend(group) -> tuple[str | None, list[float]]:
    """The first scalar payload key shared by every run, chronologically."""
    candidates = [
        key
        for key, value in sorted(group[0].payload.items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]
    for key in candidates:
        values = [
            env.payload.get(key)
            for env in group
            if isinstance(env.payload.get(key), (int, float))
            and not isinstance(env.payload.get(key), bool)
        ]
        if len(values) == len(group):
            return key, [float(v) for v in values]
    return None, []


def render_dashboard(
    envelopes: EnvelopeSet, title: str = "CGPA run dashboard"
) -> str:
    """Render the journal as one self-contained HTML page."""
    sections = [
        _overview_section(envelopes),
        _sim_section(envelopes),
        _equivalence_section(envelopes),
        _dse_section(envelopes),
        _faults_section(envelopes),
        _cosim_section(envelopes),
        _service_section(envelopes),
        _bench_section(envelopes),
    ]
    body = "".join(section for section in sections if section)
    if len(envelopes) == 0:
        body += '<p class="muted">The journal is empty.</p>'
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f"<body><h1>{_esc(title)}</h1>\n"
        f"{body}\n"
        f"<script>{_JS}</script></body></html>\n"
    )
