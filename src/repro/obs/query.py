"""Ingestion and queries over run-envelope journals.

:func:`load_envelopes` ingests a journal (``envelopes.jsonl``), a store
root containing one, or a directory of envelope JSON files, validating
every record against the schema version.  The result is an
:class:`EnvelopeSet` — an immutable, chronologically sorted collection
with ``filter`` / ``group_by`` / ``aggregate`` combinators, plus
:func:`diff_envelope_sets` for regression diffs between two journals
(the ``harness obs diff`` backend).

:func:`render_legacy_report` regenerates the deprecated per-subsystem
text reports (DSE Pareto table, faults verdict report, stall breakdown)
byte-identically from an envelope's ``payload`` — the proof that the
envelope subsumes the old formats.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from .envelope import EnvelopeError, RunEnvelope

#: Typed metrics a query can aggregate or diff on.
METRICS = ("cycles", "total_aluts", "energy_uj", "power_mw")

#: Envelope fields usable as group-by keys.
GROUP_KEYS = ("kind", "kernel", "engine", "config_hash", "status")


def load_envelopes(
    source: str | pathlib.Path, strict: bool = False
) -> "EnvelopeSet":
    """Load every envelope under ``source``.

    ``source`` may be an ``envelopes.jsonl`` journal, a store root
    containing one, or a directory of per-run envelope JSON files.
    Records that fail validation are collected as errors (``strict=False``)
    or raised immediately as :class:`EnvelopeError` (``strict=True``).
    Non-envelope JSON files in a store (legacy artifacts, which carry no
    ``schema_version``) are skipped silently — the journal is the
    authoritative run log.
    """
    root = pathlib.Path(source)
    records: list[tuple[str, dict]] = []
    if root.is_file():
        records.extend(_read_journal(root))
    elif root.is_dir():
        journal = root / "envelopes.jsonl"
        if journal.is_file():
            records.extend(_read_journal(journal))
        else:
            for path in sorted(root.rglob("*.json")):
                try:
                    data = json.loads(path.read_text())
                except (OSError, ValueError):
                    continue
                if isinstance(data, dict) and "schema_version" in data:
                    records.append((str(path), data))
    else:
        raise EnvelopeError(
            f"no journal at {root}: expected an envelopes.jsonl file, a "
            f"store root containing one, or a directory of envelope JSON "
            f"files"
        )

    envelopes: list[RunEnvelope] = []
    errors: list[str] = []
    for origin, data in records:
        try:
            envelopes.append(RunEnvelope.from_dict(data))
        except EnvelopeError as exc:
            if strict:
                raise EnvelopeError(f"{origin}: {exc}")
            errors.append(f"{origin}: {exc}")
    envelopes.sort(key=RunEnvelope.age_key)
    return EnvelopeSet(envelopes, errors=errors, source=str(root))


def _read_journal(path: pathlib.Path) -> list[tuple[str, dict]]:
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            origin = f"{path}:{lineno}"
            try:
                records.append((origin, json.loads(line)))
            except ValueError as exc:
                records.append((origin, {"__parse_error__": str(exc)}))
    return records


class EnvelopeSet:
    """A chronologically sorted, immutable collection of envelopes."""

    def __init__(
        self,
        envelopes: list[RunEnvelope],
        errors: list[str] | None = None,
        source: str | None = None,
    ) -> None:
        self.envelopes = list(envelopes)
        self.errors = list(errors or [])
        self.source = source

    def __len__(self) -> int:
        return len(self.envelopes)

    def __iter__(self):
        return iter(self.envelopes)

    def __getitem__(self, index: int) -> RunEnvelope:
        return self.envelopes[index]

    # -- combinators -------------------------------------------------------

    def filter(
        self,
        kind: str | None = None,
        kernel: str | None = None,
        engine: str | None = None,
        config_hash: str | None = None,
        status: str | None = None,
        since: str | None = None,
        until: str | None = None,
    ) -> "EnvelopeSet":
        """Subset by typed fields and/or timestamp range.

        ``since``/``until`` are inclusive and compared in the envelope
        timestamp format; a prefix (e.g. ``2026-08-07``) matches the
        whole period it abbreviates.  A ``config_hash`` prefix matches
        too, mirroring how the store CLI accepts short keys.
        """
        kept = []
        for env in self.envelopes:
            if kind is not None and env.kind != kind:
                continue
            if kernel is not None and env.kernel != kernel:
                continue
            if engine is not None and env.engine != engine:
                continue
            if config_hash is not None and not (
                env.config_hash or ""
            ).startswith(config_hash):
                continue
            if status is not None and env.status != status:
                continue
            if since is not None and env.timestamp < since:
                continue
            if until is not None and env.timestamp[: len(until)] > until:
                continue
            kept.append(env)
        return EnvelopeSet(kept, errors=self.errors, source=self.source)

    def group_by(self, *keys: str) -> dict[tuple, "EnvelopeSet"]:
        """Partition into sub-sets keyed by the given envelope fields."""
        for key in keys:
            if key not in GROUP_KEYS:
                raise EnvelopeError(
                    f"unknown group-by key {key!r}; expected one of "
                    f"{list(GROUP_KEYS)}"
                )
        groups: dict[tuple, list[RunEnvelope]] = {}
        for env in self.envelopes:
            groups.setdefault(
                tuple(getattr(env, key) for key in keys), []
            ).append(env)
        return {
            group: EnvelopeSet(members, source=self.source)
            for group, members in sorted(
                groups.items(), key=lambda item: tuple(map(_none_low, item[0]))
            )
        }

    def aggregate(self, metric: str = "cycles") -> dict:
        """Count / min / max / mean / latest over one typed metric.

        Envelopes without the metric (``None``) are excluded from the
        statistics but still counted in ``runs``.
        """
        if metric not in METRICS:
            raise EnvelopeError(
                f"unknown metric {metric!r}; expected one of {list(METRICS)}"
            )
        values = [
            getattr(env, metric)
            for env in self.envelopes
            if getattr(env, metric) is not None
        ]
        return {
            "metric": metric,
            "runs": len(self.envelopes),
            "measured": len(values),
            "min": min(values) if values else None,
            "max": max(values) if values else None,
            "mean": sum(values) / len(values) if values else None,
            "latest": values[-1] if values else None,
        }

    def latest_by_identity(self) -> dict[tuple, RunEnvelope]:
        """The newest envelope per (kind, kernel, engine, config_hash)."""
        latest: dict[tuple, RunEnvelope] = {}
        for env in self.envelopes:  # chronological: later wins
            latest[env.identity()] = env
        return latest

    # -- introspection -----------------------------------------------------

    def kinds(self) -> list[str]:
        return sorted({env.kind for env in self.envelopes})

    def kernels(self) -> list[str]:
        return sorted(
            {env.kernel for env in self.envelopes if env.kernel is not None}
        )

    def engines(self) -> list[str]:
        return sorted(
            {env.engine for env in self.envelopes if env.engine is not None}
        )


def _none_low(value):
    """Sort key treating None as lowest (mixed-None group keys)."""
    return (value is not None, value)


@dataclass
class MetricDiff:
    """One identity's metric movement between two journals."""

    kind: str
    kernel: str | None
    engine: str | None
    config_hash: str | None
    metric: str
    base: float | int
    new: float | int
    #: Relative change, ``(new - base) / base`` (0.0 when base == 0).
    ratio: float
    #: True when the metric got *worse* beyond the threshold (all typed
    #: metrics are costs: cycles, area, energy, power — higher is worse).
    regressed: bool

    @property
    def delta(self) -> float | int:
        return self.new - self.base

    def format(self) -> str:
        where = " ".join(
            str(part)
            for part in (
                self.kind,
                self.kernel,
                self.engine,
                (self.config_hash or "")[:12] or None,
            )
            if part is not None
        )
        marker = "REGRESSED" if self.regressed else (
            "improved" if self.delta < 0 else "unchanged"
        )
        return (
            f"{where}: {self.metric} {self.base} -> {self.new} "
            f"({self.ratio:+.1%}) {marker}"
        )


def diff_envelope_sets(
    base: EnvelopeSet,
    new: EnvelopeSet,
    metric: str = "cycles",
    threshold: float = 0.0,
) -> list[MetricDiff]:
    """Compare the latest run per identity between two envelope sets.

    Returns one :class:`MetricDiff` per identity present in *both* sets
    with a measured metric, sorted with regressions first (largest ratio
    first), then by identity.  ``threshold`` is the relative slack before
    a higher value counts as a regression (0.02 = 2% tolerated).
    """
    if metric not in METRICS:
        raise EnvelopeError(
            f"unknown metric {metric!r}; expected one of {list(METRICS)}"
        )
    base_latest = base.latest_by_identity()
    new_latest = new.latest_by_identity()
    diffs: list[MetricDiff] = []
    for identity in base_latest.keys() & new_latest.keys():
        old_value = getattr(base_latest[identity], metric)
        new_value = getattr(new_latest[identity], metric)
        if old_value is None or new_value is None:
            continue
        ratio = (new_value - old_value) / old_value if old_value else 0.0
        diffs.append(
            MetricDiff(
                kind=identity[0],
                kernel=identity[1],
                engine=identity[2],
                config_hash=identity[3],
                metric=metric,
                base=old_value,
                new=new_value,
                ratio=ratio,
                regressed=ratio > threshold,
            )
        )
    diffs.sort(
        key=lambda d: (
            not d.regressed,
            -d.ratio,
            d.kind,
            d.kernel or "",
            d.engine or "",
            d.config_hash or "",
        )
    )
    return diffs


def render_legacy_report(envelope: RunEnvelope) -> str | None:
    """Regenerate the deprecated subsystem text report from an envelope.

    Byte-identical to what the legacy CLI printed for the same run:

    * ``dse-sweep`` → :func:`repro.harness.report.format_pareto`
    * ``faults``    → :meth:`repro.faults.sweep.ResilienceReport.format`
    * ``sim``       → :func:`repro.harness.report.format_stall_breakdown`

    Returns ``None`` for kinds with no text-report equivalent.  Imports
    are local: the subsystems import :mod:`repro.obs`, not the reverse.
    """
    if envelope.kind == "dse-sweep":
        from ..dse.explore import SweepResult
        from ..harness.report import format_pareto

        return format_pareto(SweepResult.from_json_dict(envelope.payload))
    if envelope.kind == "faults":
        from ..faults.sweep import ResilienceReport

        return ResilienceReport.from_dict(envelope.payload).format()
    if envelope.kind == "sim":
        from ..harness.report import format_stall_breakdown
        from ..hw.system import SimReport

        return format_stall_breakdown(
            SimReport.from_dict(envelope.payload), kernel=envelope.kernel
        )
    return None
