"""Tarjan strongly-connected components and graph condensation.

Generic over node ids (ints); the PDG feeds it instruction ids.  The
condensation DAG is what the pipeline partitioner schedules (paper
Section 3.3: "the compiler consolidates all the strongly connected
components in the PDG to create a directed acyclic graph").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable


def tarjan_scc(
    nodes: Iterable[Hashable], successors: dict[Hashable, list[Hashable]]
) -> list[list[Hashable]]:
    """SCCs in reverse topological order (classic iterative Tarjan)."""
    index_counter = 0
    index: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    result: list[list[Hashable]] = []

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[Hashable, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            children = successors.get(node, [])
            for i in range(child_index, len(children)):
                child = children[i]
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recursed:
                continue
            if lowlink[node] == index[node]:
                component: list[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


@dataclass
class Condensation:
    """The SCC DAG: component index per node plus inter-component edges."""

    components: list[list[Hashable]]
    component_of: dict[Hashable, int]
    #: (src_component, dst_component) -> True when any underlying edge is
    #: loop-carried.
    edges: dict[tuple[int, int], bool] = field(default_factory=dict)

    def successors(self, component: int) -> list[int]:
        return [d for (s, d) in self.edges if s == component]

    def predecessors(self, component: int) -> list[int]:
        return [s for (s, d) in self.edges if d == component]

    def topological_order(self) -> list[int]:
        """Component indices in topological (dependence-respecting) order."""
        indegree = {i: 0 for i in range(len(self.components))}
        for (_, dst) in self.edges:
            indegree[dst] += 1
        ready = sorted(i for i, d in indegree.items() if d == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in sorted(set(self.successors(current))):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.components):
            raise AssertionError("condensation is not acyclic")
        return order


def condense(
    nodes: Iterable[Hashable],
    edge_list: Iterable[tuple[Hashable, Hashable, bool]],
) -> Condensation:
    """Build the SCC DAG from (src, dst, carried) edges."""
    node_list = list(nodes)
    edge_list = list(edge_list)
    successors: dict[Hashable, list[Hashable]] = {}
    for src, dst, _ in edge_list:
        successors.setdefault(src, []).append(dst)
    components = tarjan_scc(node_list, successors)
    component_of = {
        node: i for i, comp in enumerate(components) for node in comp
    }
    condensation = Condensation(components, component_of)
    for src, dst, carried in edge_list:
        cs, cd = component_of[src], component_of[dst]
        if cs == cd:
            continue
        key = (cs, cd)
        condensation.edges[key] = condensation.edges.get(key, False) or carried
    return condensation
