"""Control-flow-graph utilities: orders, reachability, edge queries."""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


def reverse_postorder(function: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (dominance-friendly)."""
    visited: set[int] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(id(block))
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if id(succ) not in visited:
                    visited.add(id(succ))
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(function.entry)
    order.reverse()
    return order


def reachable_blocks(function: Function) -> set[int]:
    """ids of blocks reachable from the entry."""
    return {id(b) for b in reverse_postorder(function)}


def exit_blocks(function: Function) -> list[BasicBlock]:
    """Blocks whose terminator leaves the function (ret)."""
    return [b for b in function.blocks if not b.successors() and b.terminator is not None]


def edges(function: Function) -> list[tuple[BasicBlock, BasicBlock]]:
    """All CFG edges of the function as (src, dst) pairs."""

    out: list[tuple[BasicBlock, BasicBlock]] = []
    for block in function.blocks:
        for succ in block.successors():
            out.append((block, succ))
    return out


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry; returns how many.

    Phi nodes in surviving blocks lose the incoming arms that arrived from
    deleted blocks.
    """
    reachable = reachable_blocks(function)
    dead = [b for b in function.blocks if id(b) not in reachable]
    if not dead:
        return 0
    dead_ids = {id(b) for b in dead}
    # Drop phi arms that come from dead blocks.
    for block in function.blocks:
        if id(block) in dead_ids:
            continue
        for phi in block.phis():
            for pred in list(phi.incoming_blocks):
                if id(pred) in dead_ids:
                    phi.remove_incoming(pred)
    # Detach and delete dead blocks (their instructions may use each other,
    # so drop all operands first).
    for block in dead:
        for inst in block.instructions:
            inst.drop_operands()
    for block in dead:
        for inst in list(block.instructions):
            for user in list(inst.users):
                # All remaining users are inside other dead blocks.
                user.drop_operands()
            inst.parent = None
        block.instructions = []
        function.remove_block(block)
    return len(dead)
