"""Program dependence graph for one target loop, and SCC classification.

The PDG's nodes are the loop's instructions; edges carry a kind
(register / memory / control) and a *loop-carried* flag.  After SCC
condensation each component is classified exactly as the paper describes
(Section 3.3):

* **parallel** — contains no loop-carried dependence,
* **replicable** — has loop-carried dependences but no side effects (safe
  to execute redundantly in several workers),
* **sequential** — loop-carried dependences plus side effects.

Memory dependences are inserted in *both* directions between conflicting
accesses, which forces aliasing memory instructions into the same SCC —
the behaviour the paper relies on ("CGPA's pipeline partition design
enforces an assignment of aliasing memory instructions to the same stage
(by creating SCCs)", Appendix B.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ir.instructions import Call, Instruction, Load, Phi, Store
from ..ir.values import Value
from ..interp.profiler import Profile
from .controldep import control_dependence
from .loops import Loop
from .memdep import LoopMemoryModel
from .pointsto import PointsTo
from .shapes import RegionShapes
from .scc import Condensation, condense


class DepKind(enum.Enum):
    """PDG edge kind: register, memory, or control dependence."""

    REG = "reg"
    MEM = "mem"
    CONTROL = "control"


@dataclass(frozen=True)
class PDGEdge:
    """One directed dependence edge with its loop-carried flag."""

    src: Instruction
    dst: Instruction
    kind: DepKind
    carried: bool


class SccClass(enum.Enum):
    """The paper's SCC classification: parallel/replicable/sequential."""

    PARALLEL = "parallel"
    REPLICABLE = "replicable"
    SEQUENTIAL = "sequential"


@dataclass
class SccInfo:
    """One condensed PDG component with its classification and weight."""

    index: int
    instructions: list[Instruction]
    classification: SccClass
    weight: int  # dynamic instruction count from the profile (or static)
    has_internal_carried: bool
    has_side_effects: bool

    @property
    def is_parallel(self) -> bool:
        return self.classification is SccClass.PARALLEL

    @property
    def is_replicable(self) -> bool:
        return self.classification is SccClass.REPLICABLE

    @property
    def is_sequential(self) -> bool:
        return self.classification is SccClass.SEQUENTIAL

    @property
    def is_lightweight(self) -> bool:
        """Paper's duplication heuristic: no load / multiply / division / call."""
        return not any(inst.is_heavyweight for inst in self.instructions)


class ProgramDependenceGraph:
    """PDG of one loop plus its condensation and classification."""

    def __init__(
        self,
        loop: Loop,
        pointsto: PointsTo,
        shapes: RegionShapes | None = None,
        profile: Profile | None = None,
    ) -> None:
        self.loop = loop
        self.pointsto = pointsto
        self.shapes = shapes or RegionShapes()
        self.profile = profile
        self.memory_model = LoopMemoryModel(loop, pointsto, self.shapes)
        self.nodes: list[Instruction] = loop.instructions()
        self._node_ids = {id(n) for n in self.nodes}
        self.edges: list[PDGEdge] = []
        self._edge_keys: set[tuple[int, int, DepKind, bool]] = set()
        self._build()
        self.condensation, self.sccs = self._condense_and_classify()

    # -- construction ---------------------------------------------------------

    def _add_edge(self, src: Instruction, dst: Instruction, kind: DepKind, carried: bool) -> None:
        key = (id(src), id(dst), kind, carried)
        if key in self._edge_keys:
            return
        self._edge_keys.add(key)
        self.edges.append(PDGEdge(src, dst, kind, carried))

    def _build(self) -> None:
        self._add_register_edges()
        self._add_phi_select_edges()
        self._add_control_edges()
        self._add_memory_edges()

    def _add_register_edges(self) -> None:
        loop = self.loop
        latch_ids = {id(l) for l in loop.latches()}
        for inst in self.nodes:
            if isinstance(inst, Phi) and inst.parent is loop.header:
                for value, pred in inst.incoming():
                    if id(pred) in latch_ids and isinstance(value, Instruction):
                        if id(value) in self._node_ids:
                            self._add_edge(value, inst, DepKind.REG, carried=True)
                continue
            for op in inst.operands:
                if isinstance(op, Instruction) and id(op) in self._node_ids:
                    self._add_edge(op, inst, DepKind.REG, carried=False)

    def _add_phi_select_edges(self) -> None:
        """A phi *selects* among arms based on which predecessor ran, so it
        depends on the terminators of its incoming blocks.  Without these
        edges a replicated phi could be separated from the branch that
        steers it."""
        loop = self.loop
        latch_ids = {id(l) for l in loop.latches()}
        for inst in self.nodes:
            if not isinstance(inst, Phi):
                continue
            for _, pred in inst.incoming():
                if not loop.contains_block(pred):
                    continue
                term = pred.terminator
                if term is None or id(term) not in self._node_ids:
                    continue
                carried = inst.parent is loop.header and id(pred) in latch_ids
                self._add_edge(term, inst, DepKind.CONTROL, carried=carried)

    def _add_control_edges(self) -> None:
        loop = self.loop
        function = loop.header.parent
        assert function is not None
        cd = control_dependence(function)
        for block in loop.blocks:
            controlling = cd.get(id(block), [])
            for ctrl_block in controlling:
                if not loop.contains_block(ctrl_block):
                    continue
                branch = ctrl_block.terminator
                if branch is None:
                    continue
                for inst in block.instructions:
                    if inst is branch:
                        continue
                    self._add_edge(branch, inst, DepKind.CONTROL, carried=False)
        # Loop-carried control: whether iteration i+1 runs at all depends on
        # every exit branch of iteration i.
        for exiting in loop.exiting_blocks():
            branch = exiting.terminator
            if branch is None:
                continue
            for inst in self.nodes:
                self._add_edge(branch, inst, DepKind.CONTROL, carried=True)

    def _memory_instructions(self) -> list[Instruction]:
        result = []
        for inst in self.nodes:
            if isinstance(inst, (Load, Store)):
                result.append(inst)
            elif isinstance(inst, Call):
                if self.pointsto.call_mod(inst) or self.pointsto.call_ref(inst):
                    result.append(inst)
        return result

    def _add_memory_edges(self) -> None:
        mem = self._memory_instructions()
        for i, a in enumerate(mem):
            for b in mem[i:]:
                verdict = self.memory_model.dependence(a, b)
                if a is b:
                    if verdict.carried:
                        self._add_edge(a, a, DepKind.MEM, carried=True)
                    continue
                if verdict.intra:
                    self._add_edge(a, b, DepKind.MEM, carried=False)
                    self._add_edge(b, a, DepKind.MEM, carried=False)
                if verdict.carried:
                    self._add_edge(a, b, DepKind.MEM, carried=True)
                    self._add_edge(b, a, DepKind.MEM, carried=True)

    # -- condensation and classification --------------------------------------------

    def _condense_and_classify(self) -> tuple[Condensation, list[SccInfo]]:
        edge_tuples = [
            (id(e.src), id(e.dst), e.carried) for e in self.edges
        ]
        condensation = condense([id(n) for n in self.nodes], edge_tuples)
        by_id = {id(n): n for n in self.nodes}

        # Internal carried edges per component.
        internal_carried: set[int] = set()
        for e in self.edges:
            cs = condensation.component_of[id(e.src)]
            cd = condensation.component_of[id(e.dst)]
            if cs == cd and e.carried:
                internal_carried.add(cs)

        sccs: list[SccInfo] = []
        for index, comp in enumerate(condensation.components):
            instructions = [by_id[n] for n in comp]
            carried = index in internal_carried
            side_effects = any(
                self._blocks_replication(inst) for inst in instructions
            )
            if not carried:
                cls = SccClass.PARALLEL
            elif not side_effects:
                cls = SccClass.REPLICABLE
            else:
                cls = SccClass.SEQUENTIAL
            weight = self._weight(instructions)
            sccs.append(
                SccInfo(
                    index=index,
                    instructions=instructions,
                    classification=cls,
                    weight=weight,
                    has_internal_carried=carried,
                    has_side_effects=side_effects,
                )
            )
        return condensation, sccs

    def _blocks_replication(self, inst: Instruction) -> bool:
        """Side effects that make redundant execution unsafe.

        Branches are excluded: loop control is duplicated into every task
        anyway (control-equivalence).  Calls count as side-effecting when
        their mod set is non-empty.
        """
        if isinstance(inst, Store):
            return True
        if isinstance(inst, Call):
            return bool(self.pointsto.call_mod(inst))
        if inst.is_terminator:
            return False
        return inst.has_side_effects

    def _weight(self, instructions: list[Instruction]) -> int:
        if self.profile is None:
            return len(instructions)
        total = 0
        for inst in instructions:
            total += max(self.profile.count(inst), 0)
        return total if total else len(instructions)

    # -- queries ------------------------------------------------------------------

    def scc_of(self, inst: Instruction) -> SccInfo:
        return self.sccs[self.condensation.component_of[id(inst)]]

    def carried_edges_between(self, scc_a: SccInfo, scc_b: SccInfo) -> list[PDGEdge]:
        """Carried edges from scc_a's instructions to scc_b's."""
        a_ids = {id(i) for i in scc_a.instructions}
        b_ids = {id(i) for i in scc_b.instructions}
        return [
            e
            for e in self.edges
            if e.carried and id(e.src) in a_ids and id(e.dst) in b_ids
        ]

    def summary(self) -> dict[str, int]:
        counts = {"parallel": 0, "replicable": 0, "sequential": 0}
        for scc in self.sccs:
            counts[scc.classification.value] += 1
        return counts
