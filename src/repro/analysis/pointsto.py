"""Andersen-style points-to analysis (allocation-site abstraction).

Flow- and field-insensitive, context-insensitive, whole-module inclusion
analysis.  Abstract objects are ``malloc`` call sites, allocas and globals;
the site numbering matches the runtime numbering the interpreter records in
:class:`repro.interp.memory.Allocation`, so static and dynamic views line
up one-to-one in tests.

This is the analysis the paper leans on to prove, e.g., that the two em3d
linked lists are disjoint ("several static analysis algorithms can
determine that from and nodelist nodes are from different linked-lists and
disjoint from each other" — Section 3.3).  Functions never called inside
the module get their pointer formals bound to a distinguished *external*
object, keeping results conservative for open programs.

The analysis also derives per-function *mod/ref* summaries (which abstract
objects a call may read or write), used by the PDG builder to place call
instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..interp.interpreter import MALLOC_NAMES
from .addr import strip_constant_offsets
from ..ir.function import Function
from ..ir.instructions import (
    GEP,
    Alloca,
    Call,
    Cast,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value


@dataclass(frozen=True)
class AbstractObject:
    """One abstract memory region."""

    kind: str  # 'malloc' | 'alloca' | 'global' | 'external'
    index: int  # malloc site id / sequence number
    name: str = ""

    def __repr__(self) -> str:
        return f"<obj {self.kind}:{self.index} {self.name}>"


#: The unknown region external pointers may reference.
EXTERNAL = AbstractObject("external", -1, "external")


@dataclass
class ModRefSummary:
    """Objects a function may read (ref) or write (mod), transitively."""

    mod: frozenset[AbstractObject] = frozenset()
    ref: frozenset[AbstractObject] = frozenset()


class PointsTo:
    """Results of the inclusion-based points-to analysis."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._pts: dict[int, set[AbstractObject]] = {}
        #: Field-sensitive heap edges: (object, byte offset) -> pointees.
        #: Offset None is the "unknown field" bucket (variable-indexed
        #: stores land there; reads at any offset include it).
        self._heap: dict[tuple[AbstractObject, int | None], set[AbstractObject]] = {}
        self._site_of_call: dict[int, int] = {}
        self._global_objs: dict[str, AbstractObject] = {}
        self.modref: dict[str, ModRefSummary] = {}
        self._solve()
        self._compute_modref()

    # -- public queries ----------------------------------------------------------

    def points_to(self, value: Value) -> frozenset[AbstractObject]:
        """Abstract objects ``value`` may point to."""
        if isinstance(value, GlobalVariable):
            return frozenset({self._global_objs[value.name]})
        if isinstance(value, Constant):
            return frozenset()  # null or integer constant
        return frozenset(self._pts.get(id(value), set()))

    def may_alias(self, a: Value, b: Value) -> bool:
        """May the two pointer values reference overlapping memory?"""
        pa, pb = self.points_to(a), self.points_to(b)
        if not pa or not pb:
            # Unknown pointer (e.g. loaded integer cast): be conservative.
            return True
        if EXTERNAL in pa or EXTERNAL in pb:
            return True
        return bool(pa & pb)

    def objects_of_site(self, site: int) -> AbstractObject:
        return AbstractObject("malloc", site)

    # -- constraint generation ------------------------------------------------------

    def _pts_of(self, value: Value) -> set[AbstractObject]:
        return self._pts.setdefault(id(value), set())

    def _heap_slot(self, obj: AbstractObject, offset: int | None) -> set[AbstractObject]:
        return self._heap.setdefault((obj, offset), set())

    def _heap_read(self, obj: AbstractObject, offset: int | None) -> set[AbstractObject]:
        """Pointees a load at ``offset`` of ``obj`` may observe."""
        if offset is None:
            result: set[AbstractObject] = set()
            for (o, _), pointees in self._heap.items():
                if o == obj:
                    result |= pointees
            return result
        return self._heap_slot(obj, offset) | self._heap.get((obj, None), set())

    def _solve(self) -> None:
        module = self.module
        # Number malloc sites identically to the interpreter.
        counter = 0
        for function in module.functions.values():
            for inst in function.instructions():
                if isinstance(inst, Call) and inst.callee.name in MALLOC_NAMES:
                    self._site_of_call[id(inst)] = counter
                    counter += 1
        for i, g in enumerate(module.globals.values()):
            self._global_objs[g.name] = AbstractObject("global", i, g.name)

        called: set[str] = set()
        for function in module.functions.values():
            for inst in function.instructions():
                if isinstance(inst, Call):
                    called.add(inst.callee.name)

        copy_edges: dict[int, list[Value]] = {}  # id(dst value) <- [src values]
        loads: list[Load] = []
        stores: list[Store] = []
        calls: list[Call] = []
        rets: dict[str, list[Value]] = {}

        def add_copy(dst: Value, src: Value) -> None:
            copy_edges.setdefault(id(dst), []).append(src)

        for function in module.functions.values():
            # External entry points: pointer formals may reference anything.
            if not function.is_declaration and function.name not in called:
                for arg in function.args:
                    if arg.type.is_pointer:
                        self._pts_of(arg).add(EXTERNAL)
                        self._heap_slot(EXTERNAL, None).add(EXTERNAL)
            for inst in function.instructions():
                if isinstance(inst, Alloca):
                    self._pts_of(inst).add(
                        AbstractObject("alloca", id(inst) & 0x7FFFFFFF, inst.name)
                    )
                elif isinstance(inst, GEP):
                    add_copy(inst, inst.operands[0])
                elif isinstance(inst, Cast):
                    # Pointers laundered through integers (ptrtoint stored
                    # into an int slot, loaded back, inttoptr) keep their
                    # points-to sets: casts copy unconditionally.
                    if inst.operands:
                        add_copy(inst, inst.operands[0])
                elif isinstance(inst, (Phi, Select)):
                    sources = (
                        inst.operands[1:]
                        if isinstance(inst, Select)
                        else inst.operands
                    )
                    for op in sources:
                        add_copy(inst, op)
                elif isinstance(inst, Load):
                    loads.append(inst)
                elif isinstance(inst, Store):
                    stores.append(inst)
                elif isinstance(inst, Call):
                    calls.append(inst)
                    if inst.callee.name in MALLOC_NAMES:
                        site = self._site_of_call[id(inst)]
                        self._pts_of(inst).add(AbstractObject("malloc", site))
                    elif not inst.callee.is_declaration:
                        for formal, actual in zip(inst.callee.args, inst.args):
                            add_copy(formal, actual)
                elif isinstance(inst, Ret) and inst.value is not None:
                    if function.name:
                        rets.setdefault(function.name, []).append(inst.value)

        # Call results copy from callee returns.
        for call in calls:
            if call.callee.name not in MALLOC_NAMES:
                for ret_value in rets.get(call.callee.name, []):
                    copy_edges.setdefault(id(call), []).append(ret_value)

        # Fixed-point iteration (simple but robust for kernel-sized modules).
        changed = True
        while changed:
            changed = False
            for dst_id, sources in copy_edges.items():
                bucket = self._pts.setdefault(dst_id, set())
                before = len(bucket)
                for src in sources:
                    bucket |= self.points_to(src)
                changed |= len(bucket) != before
            for load in loads:
                root, offset = strip_constant_offsets(load.pointer)
                bucket = self._pts_of(load)
                before = len(bucket)
                for obj in self.points_to(root):
                    bucket |= self._heap_read(obj, offset)
                changed |= len(bucket) != before
            for store in stores:
                value_pts = self.points_to(store.value)
                if not value_pts:
                    continue
                root, offset = strip_constant_offsets(store.pointer)
                for obj in self.points_to(root):
                    heap = self._heap_slot(obj, offset)
                    before = len(heap)
                    heap |= value_pts
                    changed |= len(heap) != before

    # -- mod/ref -----------------------------------------------------------------------

    def _compute_modref(self) -> None:
        # Direct effects per function.
        direct_mod: dict[str, set[AbstractObject]] = {}
        direct_ref: dict[str, set[AbstractObject]] = {}
        callees: dict[str, set[str]] = {}
        for function in self.module.functions.values():
            mod: set[AbstractObject] = set()
            ref: set[AbstractObject] = set()
            callees[function.name] = set()
            for inst in function.instructions():
                if isinstance(inst, Load):
                    ref |= self.points_to(inst.pointer) or {EXTERNAL}
                elif isinstance(inst, Store):
                    mod |= self.points_to(inst.pointer) or {EXTERNAL}
                elif isinstance(inst, Call):
                    if inst.callee.name not in MALLOC_NAMES:
                        callees[function.name].add(inst.callee.name)
                    if inst.callee.is_declaration and inst.callee.name not in MALLOC_NAMES:
                        mod.add(EXTERNAL)
                        ref.add(EXTERNAL)
            direct_mod[function.name] = mod
            direct_ref[function.name] = ref

        # Transitive closure over the (possibly recursive) call graph.
        changed = True
        while changed:
            changed = False
            for name, callee_names in callees.items():
                for callee in callee_names:
                    if callee not in direct_mod:
                        continue
                    before = len(direct_mod[name]) + len(direct_ref[name])
                    direct_mod[name] |= direct_mod[callee]
                    direct_ref[name] |= direct_ref[callee]
                    changed |= (
                        len(direct_mod[name]) + len(direct_ref[name]) != before
                    )

        for name in direct_mod:
            self.modref[name] = ModRefSummary(
                mod=frozenset(direct_mod[name]), ref=frozenset(direct_ref[name])
            )

    def call_mod(self, call: Call) -> frozenset[AbstractObject]:
        if call.callee.name in MALLOC_NAMES:
            return frozenset()
        summary = self.modref.get(call.callee.name)
        return summary.mod if summary else frozenset({EXTERNAL})

    def call_ref(self, call: Call) -> frozenset[AbstractObject]:
        if call.callee.name in MALLOC_NAMES:
            return frozenset()
        summary = self.modref.get(call.callee.name)
        return summary.ref if summary else frozenset({EXTERNAL})
