"""Shared address-expression decomposition helpers.

Both the points-to solver (field-sensitive heap edges) and the loop memory
dependence analysis (offset-interval disambiguation) need to strip a
pointer expression down to its root value plus a constant byte offset.
"""

from __future__ import annotations

from ..ir.instructions import GEP, Cast
from ..ir.types import ArrayType, StructType
from ..ir.values import Constant, Value


def strip_casts(value: Value) -> Value:
    """Walk through pointer bitcasts."""
    while isinstance(value, Cast) and value.opcode in ("bitcast",):
        value = value.value
    return value


def gep_constant_offset(gep: GEP) -> int | None:
    """Byte offset a GEP adds, or None when any index is non-constant."""
    pointee = gep.base.type.pointee  # type: ignore[union-attr]
    indices = gep.indices
    if not isinstance(indices[0], Constant):
        return None
    total = pointee.size() * int(indices[0].value)
    current = pointee
    for idx in indices[1:]:
        if isinstance(current, StructType):
            field = int(idx.value)  # type: ignore[union-attr]
            total += current.field_offset(field)
            current = current.field_type(field)
        elif isinstance(current, ArrayType):
            if not isinstance(idx, Constant):
                return None
            total += current.element.size() * int(idx.value)
            current = current.element
        else:
            return None
    return total


def strip_constant_offsets(pointer: Value) -> tuple[Value, int | None]:
    """Walk casts and GEPs; returns (root value, byte offset or None).

    The offset is ``None`` when a variable index is crossed; the root is
    still the correct base object for points-to purposes.
    """
    offset: int | None = 0
    current = pointer
    while True:
        current = strip_casts(current)
        if isinstance(current, GEP):
            step = gep_constant_offset(current)
            if step is None:
                offset = None
            elif offset is not None:
                offset += step
            current = current.base
            continue
        return current, offset
