"""Natural-loop detection and loop structure queries.

A loop is identified by a back edge ``latch -> header`` where the header
dominates the latch; its body is every block that can reach the latch
without passing through the header.  CGPA targets one loop at a time, so
:class:`Loop` carries the queries the partitioner and transformer need:
exits, live-ins, live-outs, and the loop-exit branch.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, Phi
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .dominators import DominatorTree, dominator_tree


class Loop:
    """One natural loop."""

    def __init__(self, header: BasicBlock, blocks: list[BasicBlock]) -> None:
        self.header = header
        self.blocks = blocks  # includes header, deterministic order
        self._block_ids = {id(b) for b in blocks}
        self.parent: "Loop | None" = None
        self.children: list["Loop"] = []

    # -- membership -----------------------------------------------------------

    def contains_block(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def contains(self, inst: Instruction) -> bool:
        return inst.parent is not None and self.contains_block(inst.parent)

    @property
    def depth(self) -> int:
        depth = 0
        current = self.parent
        while current is not None:
            depth += 1
            current = current.parent
        return depth

    # -- structure ---------------------------------------------------------------

    def latches(self) -> list[BasicBlock]:
        return [p for p in self.header.predecessors() if self.contains_block(p)]

    def preheader_candidates(self) -> list[BasicBlock]:
        return [p for p in self.header.predecessors() if not self.contains_block(p)]

    def exit_edges(self) -> list[tuple[BasicBlock, BasicBlock]]:
        """(inside, outside) CFG edges leaving the loop."""
        out: list[tuple[BasicBlock, BasicBlock]] = []
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains_block(succ):
                    out.append((block, succ))
        return out

    def exiting_blocks(self) -> list[BasicBlock]:
        seen: set[int] = set()
        result = []
        for inside, _ in self.exit_edges():
            if id(inside) not in seen:
                seen.add(id(inside))
                result.append(inside)
        return result

    def exit_blocks(self) -> list[BasicBlock]:
        seen: set[int] = set()
        result = []
        for _, outside in self.exit_edges():
            if id(outside) not in seen:
                seen.add(id(outside))
                result.append(outside)
        return result

    def instructions(self) -> list[Instruction]:
        out: list[Instruction] = []
        for block in self.blocks:
            out.extend(block.instructions)
        return out

    def header_phis(self) -> list[Phi]:
        return self.header.phis()

    # -- dataflow across the boundary ------------------------------------------------

    def live_ins(self) -> list[Value]:
        """Values defined outside the loop but used inside.

        Includes function arguments; constants and globals are excluded
        (they need no communication — globals are addresses known to every
        worker, matching the paper's live-in register passing).
        """
        result: list[Value] = []
        seen: set[int] = set()
        for inst in self.instructions():
            operands = list(inst.operands)
            if isinstance(inst, Phi) and inst.parent is self.header:
                # Only the value flowing in from outside is a live-in.
                operands = [
                    v
                    for v, pred in inst.incoming()
                    if not self.contains_block(pred)
                ]
            for op in operands:
                if isinstance(op, (Constant, GlobalVariable, BasicBlock)):
                    continue
                if isinstance(op, Instruction) and self.contains(op):
                    continue
                if isinstance(op, (Instruction, Argument)) and id(op) not in seen:
                    seen.add(id(op))
                    result.append(op)
        return result

    def live_outs(self) -> list[Instruction]:
        """Instructions defined inside the loop and used after it."""
        result: list[Instruction] = []
        seen: set[int] = set()
        for inst in self.instructions():
            for user in inst.users:
                if isinstance(user, Instruction) and not self.contains(user):
                    if id(inst) not in seen:
                        seen.add(id(inst))
                        result.append(inst)
                    break
        return result

    def __repr__(self) -> str:
        return f"<Loop header={self.header.short_name()} blocks={len(self.blocks)}>"


class LoopInfo:
    """All natural loops of a function, with the nesting forest."""

    def __init__(self, function: Function, domtree: DominatorTree | None = None) -> None:
        self.function = function
        self.domtree = domtree or dominator_tree(function)
        self.loops: list[Loop] = []
        self._discover()

    def _discover(self) -> None:
        # Find back edges; group by header (a header can have two latches,
        # e.g. from 'continue').
        bodies: dict[int, tuple[BasicBlock, set[int], list[BasicBlock]]] = {}
        for block in self.function.blocks:
            for succ in block.successors():
                if self.domtree.dominates(succ, block):
                    header = succ
                    entry = bodies.setdefault(id(header), (header, set(), []))
                    self._collect_body(header, block, entry[1], entry[2])
        for header, _, blocks in bodies.values():
            ordered = [header] + [b for b in blocks if b is not header]
            self.loops.append(Loop(header, ordered))
        self._build_nesting()

    def _collect_body(
        self,
        header: BasicBlock,
        latch: BasicBlock,
        body_ids: set[int],
        body: list[BasicBlock],
    ) -> None:
        if id(header) not in body_ids:
            body_ids.add(id(header))
            body.append(header)
        stack = [latch]
        while stack:
            block = stack.pop()
            if id(block) in body_ids:
                continue
            body_ids.add(id(block))
            body.append(block)
            stack.extend(block.predecessors())

    def _build_nesting(self) -> None:
        # Sort by body size: a loop's parent is the smallest strictly
        # containing loop.
        by_size = sorted(self.loops, key=lambda loop: len(loop.blocks))
        for i, inner in enumerate(by_size):
            for outer in by_size[i + 1 :]:
                if len(outer.blocks) > len(inner.blocks) and outer.contains_block(
                    inner.header
                ):
                    inner.parent = outer
                    outer.children.append(inner)
                    break

    def top_level(self) -> list[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def loop_of_block(self, block: BasicBlock) -> Loop | None:
        """The innermost loop containing ``block``."""
        best: Loop | None = None
        for loop in self.loops:
            if loop.contains_block(block):
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def loop_with_header(self, header: BasicBlock) -> Loop:
        for loop in self.loops:
            if loop.header is header:
                return loop
        raise AnalysisError(
            f"no loop with header {header.short_name()} in @{self.function.name}"
        )
