"""Dominator and post-dominator trees plus dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative algorithm.  The
post-dominator tree is computed on the reversed CFG with a virtual exit
joining all ``ret`` blocks (functions can have several).  Dominance
frontiers drive SSA construction; post-dominance drives control-dependence
edges in the PDG (Ferrante–Ottenstein–Warren).
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import exit_blocks, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree over the reachable blocks of a function."""

    def __init__(self, function: Function, post: bool = False) -> None:
        self.function = function
        self.post = post
        #: Virtual root used for the post-dominator tree (no IR block).
        self.virtual_exit: BasicBlock | None = None
        self._idom: dict[int, BasicBlock] = {}
        self._children: dict[int, list[BasicBlock]] = {}
        self._order_index: dict[int, int] = {}
        self._compute()

    # -- queries ------------------------------------------------------------------

    def idom(self, block: BasicBlock) -> BasicBlock | None:
        """Immediate dominator (or post-dominator) of ``block``."""
        return self._idom.get(id(block))

    def children(self, block: BasicBlock) -> list[BasicBlock]:
        return self._children.get(id(block), [])

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` (post)dominates ``b`` (reflexive)."""
        current: BasicBlock | None = b
        while current is not None:
            if current is a:
                return True
            current = self._idom.get(id(current))
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominance_frontier(self) -> dict[int, list[BasicBlock]]:
        """block id -> frontier blocks (computed on demand, cached)."""
        if not hasattr(self, "_frontier"):
            self._frontier = self._compute_frontier()
        return self._frontier

    # -- construction --------------------------------------------------------------

    def _succs(self, block: BasicBlock) -> list[BasicBlock]:
        if not self.post:
            return block.successors()
        preds = block.predecessors()
        return preds

    def _preds(self, block: BasicBlock) -> list[BasicBlock]:
        if not self.post:
            return block.predecessors()
        if block is self.virtual_exit:
            return []
        succs = list(block.successors())
        if not succs and self.virtual_exit is not None:
            # ret blocks flow to the virtual exit in the reversed CFG...
            pass
        return succs

    def _compute(self) -> None:
        function = self.function
        if self.post:
            exits = exit_blocks(function)
            if not exits:
                raise AnalysisError(
                    f"@{function.name}: no exit blocks for post-dominators"
                )
            self.virtual_exit = BasicBlock("<virtual-exit>")
            order = self._reverse_cfg_rpo(exits)
        else:
            order = reverse_postorder(function)
        self._order = order
        self._order_index = {id(b): i for i, b in enumerate(order)}
        root = order[0]
        idom: dict[int, BasicBlock] = {id(root): root}

        changed = True
        while changed:
            changed = False
            for block in order[1:]:
                preds = self._cfg_preds(block)
                candidates = [p for p in preds if id(p) in idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = self._intersect(new_idom, p, idom)
                if idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True

        self._idom = {}
        for block in order[1:]:
            if id(block) in idom:
                self._idom[id(block)] = idom[id(block)]
        self.root = root
        self._children = {}
        for block in order[1:]:
            parent = self._idom.get(id(block))
            if parent is not None:
                self._children.setdefault(id(parent), []).append(block)

    def _reverse_cfg_rpo(self, exits: list[BasicBlock]) -> list[BasicBlock]:
        """RPO of the reversed CFG rooted at the virtual exit."""
        visited: set[int] = {id(self.virtual_exit)}
        order: list[BasicBlock] = []

        def successors_in_reverse(block: BasicBlock) -> list[BasicBlock]:
            if block is self.virtual_exit:
                return exits
            return block.predecessors()

        stack = [(self.virtual_exit, iter(successors_in_reverse(self.virtual_exit)))]
        while stack:
            current, successors = stack[-1]
            advanced = False
            for succ in successors:
                if id(succ) not in visited:
                    visited.add(id(succ))
                    stack.append((succ, iter(successors_in_reverse(succ))))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()
        order.reverse()
        return order

    def _cfg_preds(self, block: BasicBlock) -> list[BasicBlock]:
        """Predecessors in the graph the tree is computed over."""
        if not self.post:
            return block.predecessors()
        # Reversed CFG: preds of a block are its successors; ret blocks
        # additionally have the virtual exit as their reversed-CFG pred.
        preds = list(block.successors())
        if not preds and self.virtual_exit is not None:
            preds = [self.virtual_exit]
        return preds

    def _intersect(
        self, a: BasicBlock, b: BasicBlock, idom: dict[int, BasicBlock]
    ) -> BasicBlock:
        index = self._order_index
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    def _compute_frontier(self) -> dict[int, list[BasicBlock]]:
        frontier: dict[int, list[BasicBlock]] = {id(b): [] for b in self._order}
        for block in self._order:
            preds = self._cfg_preds(block)
            if len(preds) < 2:
                continue
            target_idom = self._idom.get(id(block))
            for pred in preds:
                runner = pred
                while runner is not target_idom and id(runner) in frontier:
                    bucket = frontier[id(runner)]
                    if block not in bucket:
                        bucket.append(block)
                    next_runner = self._idom.get(id(runner))
                    if next_runner is None:
                        break
                    runner = next_runner
        return frontier


def dominator_tree(function: Function) -> DominatorTree:
    """Dominator tree of ``function`` (entry-rooted)."""

    return DominatorTree(function, post=False)


def postdominator_tree(function: Function) -> DominatorTree:
    """Post-dominator tree (virtual-exit-rooted)."""

    return DominatorTree(function, post=True)
