"""Control-dependence computation (Ferrante–Ottenstein–Warren).

Block B is control dependent on branch block A when A has successors S1
and S2 such that B post-dominates S1 but does not post-dominate A.  The
classic formulation: for each CFG edge (A -> S) where S's post-dominance
does not cover A, every block on the post-dominator-tree path from S up to
(but excluding) ipdom(A) is control dependent on A.
"""

from __future__ import annotations

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .dominators import DominatorTree, postdominator_tree


def control_dependence(
    function: Function, pdt: DominatorTree | None = None
) -> dict[int, list[BasicBlock]]:
    """id(block) -> blocks whose terminator it is control dependent on."""
    pdt = pdt or postdominator_tree(function)
    result: dict[int, list[BasicBlock]] = {id(b): [] for b in function.blocks}
    for a in function.blocks:
        successors = a.successors()
        if len(successors) < 2:
            continue
        ipdom_a = pdt.idom(a)
        for s in successors:
            runner: BasicBlock | None = s
            while runner is not None and runner is not ipdom_a:
                if runner is a:
                    # A loop header controls itself (back-edge case).
                    bucket = result.setdefault(id(runner), [])
                    if a not in bucket:
                        bucket.append(a)
                    break
                bucket = result.setdefault(id(runner), [])
                if a not in bucket:
                    bucket.append(a)
                next_runner = pdt.idom(runner)
                if next_runner is runner:
                    break
                runner = next_runner
    return result
