"""Region shape declarations — the stand-in for shape analysis.

The paper cites Ghiya–Hendren ("Is it a Tree, DAG, or Cyclic Graph?",
[14]) for the facts that let CGPA break spurious loop-carried dependences
on recursive data structures: a loop that walks an *acyclic* list visits a
different node every iteration, so stores through the traversal pointer in
different iterations cannot collide.

We reproduce the *interface* of that analysis rather than its heuristics:
each benchmark declares the shape of its heap regions (by malloc site),
and the dependence analysis consumes those facts exactly as it would
consume shape-analysis output.  The default for an undeclared region is
``CYCLIC`` — fully conservative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .pointsto import EXTERNAL, AbstractObject


class Shape(enum.Enum):
    """Ghiya–Hendren shape lattice for a heap region."""

    LIST = "list"      # acyclic, in-degree 1 chain (linked list)
    TREE = "tree"      # acyclic, in-degree 1
    DAG = "dag"        # acyclic, shared nodes possible
    CYCLIC = "cyclic"  # anything (conservative default)

    @property
    def is_acyclic(self) -> bool:
        return self is not Shape.CYCLIC


@dataclass
class RegionShapes:
    """Declared shapes per allocation region.

    ``by_site`` maps malloc site ids (the interpreter/points-to numbering)
    to shapes.  Anything not present is :attr:`Shape.CYCLIC`.
    """

    by_site: dict[int, Shape] = field(default_factory=dict)

    def declare(self, site: int, shape: Shape) -> "RegionShapes":
        self.by_site[site] = shape
        return self

    def shape_of(self, obj: AbstractObject) -> Shape:
        if obj == EXTERNAL:
            return Shape.CYCLIC
        if obj.kind == "malloc":
            return self.by_site.get(obj.index, Shape.CYCLIC)
        if obj.kind in ("global", "alloca"):
            # Non-recursive storage: trivially acyclic.
            return Shape.DAG
        return Shape.CYCLIC

    def all_acyclic(self, objects) -> bool:
        return all(self.shape_of(o).is_acyclic for o in objects)


def conservative() -> RegionShapes:
    """No facts: every region is assumed cyclic."""
    return RegionShapes()
