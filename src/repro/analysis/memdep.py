"""Loop-carried memory dependence analysis.

Decides, for a pair of memory instructions inside a target loop, whether
there is an intra-iteration dependence, a loop-carried dependence, or no
dependence — the facts the PDG builder turns into edges.

Three disproof mechanisms, mirroring Section 3.3 of the paper:

1. **Disjoint regions** (points-to): accesses whose points-to sets do not
   intersect can never conflict (the em3d ``from`` vs ``nodelist`` case).
2. **Traversal uniqueness** (shape facts): accesses based on the same
   pointer-chasing recurrence ``p = p->next`` over an *acyclic* region hit
   a different node every iteration, so equal field offsets mean
   intra-iteration-only dependences, and distinct non-overlapping field
   offsets mean no dependence at all.
3. **Affine disambiguation** (induction variables): ``a[i]`` style
   accesses with the same base and stride conflict across iterations only
   when their constant offsets differ by a multiple of the stride
   (distance vector); zero distance means intra-iteration only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..ir.instructions import (
    GEP,
    BinaryOp,
    Call,
    Cast,
    Instruction,
    Load,
    Phi,
    Store,
)
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .addr import gep_constant_offset as _gep_constant_offset
from .addr import strip_casts as _strip_casts
from .addr import strip_constant_offsets
from .loops import Loop
from .pointsto import EXTERNAL, PointsTo
from .shapes import RegionShapes


@dataclass(frozen=True)
class DepVerdict:
    """Outcome for an (a, b) pair where at least one side writes."""

    intra: bool
    carried: bool

    @property
    def any(self) -> bool:
        return self.intra or self.carried


NO_DEP = DepVerdict(False, False)
FULL_DEP = DepVerdict(True, True)
INTRA_ONLY = DepVerdict(True, False)


# ---------------------------------------------------------------------------
# Loop-context facts: invariance, induction variables, traversal phis
# ---------------------------------------------------------------------------


def is_invariant(value: Value, loop: Loop) -> bool:
    """Conservative loop-invariance: defined textually outside the loop."""
    if isinstance(value, (Constant, GlobalVariable, Argument)):
        return True
    if isinstance(value, Instruction):
        return not loop.contains(value)
    return False


@dataclass(frozen=True)
class BasicIV:
    """A basic induction variable: ``phi += step`` once per iteration."""

    phi: Phi
    step: int


def basic_induction_variables(loop: Loop) -> dict[int, BasicIV]:
    """Header phis updated by a constant step each iteration (id(phi) map)."""
    result: dict[int, BasicIV] = {}
    latches = {id(l) for l in loop.latches()}
    for phi in loop.header_phis():
        if not phi.type.is_integer:
            continue
        steps: set[int] = set()
        ok = True
        for value, pred in phi.incoming():
            if id(pred) not in latches:
                continue
            step = _constant_step(value, phi)
            if step is None:
                ok = False
                break
            steps.add(step)
        if ok and len(steps) == 1:
            step = steps.pop()
            if step != 0:
                result[id(phi)] = BasicIV(phi, step)
    return result


def _constant_step(value: Value, phi: Phi) -> int | None:
    if isinstance(value, BinaryOp) and isinstance(value.rhs, Constant):
        if value.lhs is phi and value.opcode == "add":
            return int(value.rhs.value)
        if value.lhs is phi and value.opcode == "sub":
            return -int(value.rhs.value)
    if isinstance(value, BinaryOp) and isinstance(value.lhs, Constant):
        if value.rhs is phi and value.opcode == "add":
            return int(value.lhs.value)
    return None


@dataclass(frozen=True)
class TraversalPhi:
    """A pointer-chasing recurrence ``p = load(p->field)`` in the header."""

    phi: Phi
    acyclic: bool  # region shapes let us assume iteration-unique nodes


def traversal_phis(
    loop: Loop, pointsto: PointsTo, shapes: RegionShapes
) -> dict[int, TraversalPhi]:
    """Header phis whose latch value chases a pointer field of the phi."""
    result: dict[int, TraversalPhi] = {}
    latches = {id(l) for l in loop.latches()}
    for phi in loop.header_phis():
        if not phi.type.is_pointer:
            continue
        is_traversal = True
        for value, pred in phi.incoming():
            if id(pred) not in latches:
                continue
            if not _chases(value, phi):
                is_traversal = False
                break
        if is_traversal:
            objs = pointsto.points_to(phi)
            acyclic = bool(objs) and shapes.all_acyclic(objs) and EXTERNAL not in objs
            result[id(phi)] = TraversalPhi(phi, acyclic)
    return result


def _chases(value: Value, phi: Phi) -> bool:
    """True when ``value`` is ``load(const-offset-of(phi))`` (via casts)."""
    value = _strip_casts(value)
    if not isinstance(value, Load):
        return False
    root, offset = strip_constant_offsets(value.pointer)
    return root is phi and offset is not None


# ---------------------------------------------------------------------------
# Address classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AddressInfo:
    """Decomposed address of one access within the target loop."""

    kind: str  # 'traversal' | 'affine' | 'invariant' | 'other'
    base: Value | None = None  # traversal phi / invariant base value
    offset: int | None = None  # byte offset from base (None = unknown)
    iv: Phi | None = None  # affine: which induction variable
    stride: int = 0  # affine: bytes advanced per iteration
    size: int = 0  # bytes accessed


class LoopMemoryModel:
    """Per-loop context shared by all pairwise dependence queries."""

    def __init__(
        self,
        loop: Loop,
        pointsto: PointsTo,
        shapes: RegionShapes | None = None,
    ) -> None:
        self.loop = loop
        self.pointsto = pointsto
        self.shapes = shapes or RegionShapes()
        self.ivs = basic_induction_variables(loop)
        self.traversals = traversal_phis(loop, pointsto, self.shapes)

    # -- address analysis ---------------------------------------------------------

    def classify_address(self, pointer: Value, access_size: int) -> AddressInfo:
        root, offset = strip_constant_offsets(pointer)
        # Traversal-based: derived from a pointer-chasing phi of this loop.
        traversal = self.traversals.get(id(root))
        if traversal is not None:
            return AddressInfo(
                kind="traversal",
                base=traversal.phi,
                offset=offset,
                size=access_size,
            )
        if is_invariant(root, self.loop):
            if offset is not None:
                return AddressInfo(
                    kind="invariant", base=root, offset=offset, size=access_size
                )
            affine = self._affine_address(pointer)
            if affine is not None:
                return replace(affine, size=access_size)
        return AddressInfo(kind="other", size=access_size)

    def _affine_address(self, pointer: Value) -> "AddressInfo | None":
        """Match ``gep(invariant_base, affine-iv-expr)`` (through casts)."""
        current = _strip_casts(pointer)
        extra = 0
        # Allow trailing constant-offset geps above the affine one.
        while isinstance(current, GEP):
            step = _gep_constant_offset(current)
            if step is not None:
                extra += step
                current = _strip_casts(current.base)
                continue
            break
        if not isinstance(current, GEP):
            return None
        base = _strip_casts(current.base)
        if not is_invariant(base, self.loop):
            return None
        if len(current.indices) != 1:
            return None
        elem_size = current.type.pointee.size()  # type: ignore[union-attr]
        affine = self._affine_int(current.indices[0])
        if affine is None:
            return None
        iv, scale, const = affine
        return AddressInfo(
            kind="affine",
            base=base,
            offset=const * elem_size + extra,
            iv=iv,
            stride=scale * elem_size,
            size=0,
        )

    def _affine_int(self, value: Value) -> tuple[Phi, int, int] | None:
        """Match ``iv*scale + const``; returns (iv, scale, const)."""
        if isinstance(value, Cast) and value.opcode in ("sext", "zext", "trunc"):
            value = value.value
        if isinstance(value, Phi) and id(value) in self.ivs:
            return value, 1, 0
        if isinstance(value, BinaryOp):
            lhs, rhs = value.lhs, value.rhs
            if value.opcode == "add":
                for a, b in ((lhs, rhs), (rhs, lhs)):
                    if isinstance(b, Constant):
                        inner = self._affine_int(a)
                        if inner:
                            iv, scale, const = inner
                            return iv, scale, const + int(b.value)
            elif value.opcode == "sub" and isinstance(rhs, Constant):
                inner = self._affine_int(lhs)
                if inner:
                    iv, scale, const = inner
                    return iv, scale, const - int(rhs.value)
            elif value.opcode == "mul":
                for a, b in ((lhs, rhs), (rhs, lhs)):
                    if isinstance(b, Constant):
                        inner = self._affine_int(a)
                        if inner:
                            iv, scale, const = inner
                            return iv, scale * int(b.value), const * int(b.value)
            elif value.opcode == "shl" and isinstance(rhs, Constant):
                inner = self._affine_int(lhs)
                if inner:
                    iv, scale, const = inner
                    factor = 1 << int(rhs.value)
                    return iv, scale * factor, const * factor
        return None

    # -- pairwise dependence --------------------------------------------------------

    def dependence(self, a: Instruction, b: Instruction) -> DepVerdict:
        """Dependence between two memory instructions of the loop.

        Both orders are covered by one verdict (the PDG adds directional
        edges from it).  Pairs with no write never depend.
        """
        if not (_writes(a, self.pointsto) or _writes(b, self.pointsto)):
            return NO_DEP
        if isinstance(a, Call) or isinstance(b, Call):
            return self._call_dependence(a, b)

        pa = self._access_pointer(a)
        pb = self._access_pointer(b)
        if not self.pointsto.may_alias(pa, pb):
            return NO_DEP

        ia = self.classify_address(pa, _access_size(a))
        ib = self.classify_address(pb, _access_size(b))

        if ia.kind == "traversal" and ib.kind == "traversal" and ia.base is ib.base:
            return self._same_base_verdict(ia, ib, iteration_unique=self._acyclic(ia))
        if (
            ia.kind == "affine"
            and ib.kind == "affine"
            and ia.base is ib.base
            and ia.iv is ib.iv
        ):
            return self._affine_verdict(ia, ib)
        if ia.kind == "invariant" and ib.kind == "invariant" and ia.base is ib.base:
            if ia.offset is not None and ib.offset is not None:
                if _disjoint_intervals(ia, ib):
                    return NO_DEP
                return FULL_DEP
        return FULL_DEP

    def _acyclic(self, info: AddressInfo) -> bool:
        traversal = self.traversals.get(id(info.base))
        return traversal is not None and traversal.acyclic

    def _same_base_verdict(
        self, ia: AddressInfo, ib: AddressInfo, iteration_unique: bool
    ) -> DepVerdict:
        if ia.offset is not None and ib.offset is not None:
            if _disjoint_intervals(ia, ib):
                # Different fields of the same node never overlap — but two
                # *different* iterations could still collide if nodes repeat.
                return NO_DEP if iteration_unique else DepVerdict(False, True)
            return INTRA_ONLY if iteration_unique else FULL_DEP
        # Unknown offsets (e.g. variable-indexed field arrays).
        return DepVerdict(True, not iteration_unique) if iteration_unique else FULL_DEP

    def _affine_verdict(self, ia: AddressInfo, ib: AddressInfo) -> DepVerdict:
        if ia.stride != ib.stride or ia.stride == 0:
            return FULL_DEP
        if ia.offset is None or ib.offset is None:
            return FULL_DEP
        diff = ib.offset - ia.offset
        if diff == 0:
            return INTRA_ONLY
        stride = abs(ia.stride)
        if diff % stride == 0:
            return DepVerdict(False, True)  # fixed cross-iteration distance
        # Offsets differ by a non-multiple of the stride: check overlap of
        # the access windows; non-overlapping lanes never conflict.
        if abs(diff) >= max(ia.size, ib.size) and stride % 1 == 0:
            lane_a = ia.offset % stride
            lane_b = ib.offset % stride
            if _disjoint_lanes(lane_a, ia.size, lane_b, ib.size, stride):
                return NO_DEP
        return FULL_DEP

    def _call_dependence(self, a: Instruction, b: Instruction) -> DepVerdict:
        mod_a, ref_a = self._effects(a)
        mod_b, ref_b = self._effects(b)
        conflict = (mod_a & (mod_b | ref_b)) or (ref_a & mod_b)
        if not conflict:
            return NO_DEP
        if EXTERNAL in mod_a | mod_b | ref_a | ref_b:
            return FULL_DEP
        return FULL_DEP  # calls are opaque: be conservative on direction

    def _effects(self, inst: Instruction):
        if isinstance(inst, Call):
            return set(self.pointsto.call_mod(inst)), set(self.pointsto.call_ref(inst))
        if isinstance(inst, Store):
            return set(self.pointsto.points_to(inst.pointer)) or {EXTERNAL}, set()
        if isinstance(inst, Load):
            return set(), set(self.pointsto.points_to(inst.pointer)) or {EXTERNAL}
        return {EXTERNAL}, {EXTERNAL}

    def _access_pointer(self, inst: Instruction) -> Value:
        if isinstance(inst, Load):
            return inst.pointer
        if isinstance(inst, Store):
            return inst.pointer
        raise TypeError(f"not a direct memory access: {inst.opcode}")


def _writes(inst: Instruction, pointsto: PointsTo) -> bool:
    if isinstance(inst, Store):
        return True
    if isinstance(inst, Call):
        return bool(pointsto.call_mod(inst))
    return False


def _access_size(inst: Instruction) -> int:
    if isinstance(inst, Load):
        return inst.type.size()
    if isinstance(inst, Store):
        return inst.value.type.size()
    return 0


def _disjoint_intervals(a: AddressInfo, b: AddressInfo) -> bool:
    assert a.offset is not None and b.offset is not None
    return a.offset + a.size <= b.offset or b.offset + b.size <= a.offset


def _disjoint_lanes(off_a: int, size_a: int, off_b: int, size_b: int, stride: int) -> bool:
    """Do the two access windows, repeated mod stride, ever overlap?"""
    for shift in range(-1, 2):  # windows can wrap around the stride boundary
        a_lo = off_a + shift * stride
        if not (a_lo + size_a <= off_b or off_b + size_b <= a_lo):
            return False
    return True
