"""Program analyses: CFG, dominators, loops, points-to, dependences, PDG."""

from .cfg import (
    edges,
    exit_blocks,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from .controldep import control_dependence
from .dominators import DominatorTree, dominator_tree, postdominator_tree
from .loops import Loop, LoopInfo
from .memdep import (
    BasicIV,
    DepVerdict,
    LoopMemoryModel,
    basic_induction_variables,
    traversal_phis,
)
from .pdg import DepKind, PDGEdge, ProgramDependenceGraph, SccClass, SccInfo
from .pointsto import EXTERNAL, AbstractObject, ModRefSummary, PointsTo
from .scc import Condensation, condense, tarjan_scc
from .shapes import RegionShapes, Shape, conservative

__all__ = [
    "reverse_postorder", "reachable_blocks", "exit_blocks", "edges",
    "remove_unreachable_blocks",
    "DominatorTree", "dominator_tree", "postdominator_tree",
    "Loop", "LoopInfo",
    "control_dependence",
    "PointsTo", "AbstractObject", "ModRefSummary", "EXTERNAL",
    "RegionShapes", "Shape", "conservative",
    "LoopMemoryModel", "DepVerdict", "BasicIV",
    "basic_induction_variables", "traversal_phis",
    "ProgramDependenceGraph", "PDGEdge", "DepKind", "SccClass", "SccInfo",
    "tarjan_scc", "condense", "Condensation",
]
