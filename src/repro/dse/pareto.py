"""Pareto-frontier extraction over (cycles, total_aluts, energy_uj).

All objectives are minimised.  Failed points (deadlock / timeout / error)
carry no objective vector and are excluded before domination testing, so
a sweep full of pathological configurations yields an empty frontier
rather than a crash.
"""

from __future__ import annotations

from .evaluate import EvalResult

#: Default minimisation objectives (EvalResult attribute names).
OBJECTIVES = ("cycles", "total_aluts", "energy_uj")


def objective_vector(result: EvalResult, objectives=OBJECTIVES) -> tuple:
    return tuple(getattr(result, name) for name in objectives)


def dominates(a: EvalResult, b: EvalResult, objectives=OBJECTIVES) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better somewhere."""
    va, vb = objective_vector(a, objectives), objective_vector(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and any(
        x < y for x, y in zip(va, vb)
    )


def pareto_frontier(
    results: list[EvalResult], objectives=OBJECTIVES
) -> list[EvalResult]:
    """Non-dominated ``status == "ok"`` results, sorted by objectives.

    Ties (identical objective vectors from different configurations) are
    all kept — neither strictly dominates the other — and ordered by
    point label so the frontier is deterministic.
    """
    ok = [r for r in results if r.ok]
    frontier = [
        r
        for r in ok
        if not any(dominates(other, r, objectives) for other in ok)
    ]
    frontier.sort(key=lambda r: (objective_vector(r, objectives), r.point.label))
    return frontier
