"""Exploration strategies: which points to evaluate, in what order.

A strategy is a (possibly stateful) batch generator: the explorer calls
:meth:`Strategy.propose` with everything evaluated so far and runs the
returned batch; an empty batch ends the sweep.  Exhaustive grid and
random sampling propose a single batch; the greedy hill-climb inspects
results between batches.  All strategies are deterministic given their
constructor arguments, which is what makes sweep outputs reproducible
across pool sizes.
"""

from __future__ import annotations

from ..errors import CgpaError
from .evaluate import EvalResult
from .space import ConfigSpace, DesignPoint


class Strategy:
    """Batch-generator interface; subclasses override :meth:`propose`."""

    name = "abstract"

    def propose(
        self,
        space: ConfigSpace,
        evaluated: dict[DesignPoint, EvalResult],
    ) -> list[DesignPoint]:
        raise NotImplementedError


class GridStrategy(Strategy):
    """Exhaustive sweep: every point of the space, one batch."""

    name = "grid"

    def propose(self, space, evaluated):
        if evaluated:
            return []
        return space.grid()


class RandomStrategy(Strategy):
    """Seeded sample of ``n`` distinct grid points, one batch."""

    name = "random"

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 1:
            raise CgpaError(f"random strategy needs n >= 1, got {n}")
        self.n = n
        self.seed = seed

    def propose(self, space, evaluated):
        if evaluated:
            return []
        return space.sample(self.n, seed=self.seed)


class HillClimbStrategy(Strategy):
    """Greedy one-knob descent from a seed configuration.

    Each round proposes the unevaluated neighbors of the current best
    point; the climb moves when some neighbor improves the objective and
    stops at a local optimum or when ``max_evals`` points have been
    proposed.  Failed points (deadlock/timeout/error) score as infinitely
    bad, so the climb walks around broken regions of the space.
    """

    name = "hillclimb"

    def __init__(
        self,
        start: DesignPoint | None = None,
        objective: str = "cycles",
        max_evals: int = 32,
    ) -> None:
        if max_evals < 1:
            raise CgpaError(f"hillclimb needs max_evals >= 1, got {max_evals}")
        self.start = start
        self.objective = objective
        self.max_evals = max_evals
        self._current: DesignPoint | None = None
        self._proposed = 0
        self._done = False

    def _score(self, result: EvalResult | None) -> float:
        if result is None or not result.ok:
            return float("inf")
        return float(getattr(result, self.objective))

    def propose(self, space, evaluated):
        if self._done:
            return []
        if self._current is None:
            self._current = (
                self.start if self.start is not None else space.default_point()
            )
            self._proposed += 1
            return [self._current]
        # Chain moves through already-evaluated neighbors while they improve.
        # Runs before the budget check so the final batch still moves the
        # climb (``best`` reflects every evaluation that was paid for).
        current_score = self._score(evaluated.get(self._current))
        while True:
            candidates = [
                (self._score(evaluated[p]), p.label, p)
                for p in space.neighbors(self._current)
                if p in evaluated
            ]
            if not candidates:
                break
            best_score, _, best = min(candidates)
            if best_score >= current_score:
                break
            self._current, current_score = best, best_score
        if self._proposed >= self.max_evals:
            self._done = True
            return []
        batch = [
            p
            for p in space.neighbors(self._current)
            if p not in evaluated
        ][: self.max_evals - self._proposed]
        if not batch:
            self._done = True
            return []
        self._proposed += len(batch)
        return batch

    @property
    def best(self) -> DesignPoint | None:
        """Where the climb currently sits (the local optimum when done)."""
        return self._current
