"""Content-addressed on-disk cache for design-point evaluations.

The cache key hashes everything that determines an
:class:`~repro.dse.evaluate.EvalResult`: the kernel's C source and
entry-point contract, the full design point, the evaluator's cycle budget
and engine, and :data:`repro.cost.COST_MODEL_VERSION`.  Change any of
those and the key changes — stale entries are never *invalidated*, they
are simply never addressed again.  Entries are one small JSON file each,
sharded two-level by key prefix, so a cache directory can be inspected
(and deleted) with ordinary shell tools.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from ..cost import COST_MODEL_VERSION
from ..kernels import KernelSpec
from .space import DesignPoint

#: Bump when the EvalResult schema or evaluation semantics change.
CACHE_SCHEMA_VERSION = 1


def result_key(
    spec: KernelSpec,
    point: DesignPoint,
    max_cycles: int,
    engine: str,
) -> str:
    """Hex digest addressing one (kernel, config, model-version) result."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "cost_model": COST_MODEL_VERSION,
            "kernel": spec.name,
            "source": spec.source,
            "accel_function": spec.accel_function,
            "measure_entry": spec.measure_entry,
            "setup_function": spec.setup_function,
            "setup_args": list(spec.setup_args),
            "check_function": spec.check_function,
            "point": point.to_dict(),
            "max_cycles": max_cycles,
            "engine": engine,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory of ``<key[:2]>/<key>.json`` evaluation results."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored result dict, or None on miss/corruption."""
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # A torn write (e.g. interrupted sweep) is just a miss; the
            # re-evaluation below will overwrite it atomically.
            return None

    def put(self, key: str, result: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent pool workers and interrupted
        # sweeps can never leave a half-written entry behind.
        tmp = path.with_name(f".{path.name}.tmp")
        tmp.write_text(json.dumps(result, sort_keys=True))
        tmp.replace(path)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
