"""Content-addressed cache for design-point evaluations.

The cache key hashes everything that determines an
:class:`~repro.dse.evaluate.EvalResult`: the kernel's C source and
entry-point contract, the full design point, the evaluator's cycle budget
and engine, and :data:`repro.cost.COST_MODEL_VERSION`.  Change any of
those and the key changes — stale entries are never *invalidated*, they
are simply never addressed again.

Storage is the service-layer :class:`~repro.service.store.ArtifactStore`
(which this module's :class:`ResultCache` predates and is now a
compatibility shim over): the same ``<key[:2]>/<key>.json`` sharding
this cache always used, plus the store's locked atomic writes — an
``os.O_EXCL`` temp stage and an atomic rename — so concurrent pool
workers never interleave partial JSON, and a warm in-process LRU above
the disk layer.  Existing cache directories written by older versions
are read unchanged, and the service's artifact store accepts a DSE
cache directory (and vice versa): keys from the two families hash
disjoint payloads, so they can share one root.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from ..cost import COST_MODEL_VERSION
from ..kernels import KernelSpec
from ..service.store import ArtifactStore
from .space import DesignPoint

#: Bump when the EvalResult schema or evaluation semantics change.
CACHE_SCHEMA_VERSION = 1


def result_key(
    spec: KernelSpec,
    point: DesignPoint,
    max_cycles: int,
    engine: str,
) -> str:
    """Hex digest addressing one (kernel, config, model-version) result."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "cost_model": COST_MODEL_VERSION,
            "kernel": spec.name,
            "source": spec.source,
            "accel_function": spec.accel_function,
            "measure_entry": spec.measure_entry,
            "setup_function": spec.setup_function,
            "setup_args": list(spec.setup_args),
            "check_function": spec.check_function,
            "point": point.to_dict(),
            "max_cycles": max_cycles,
            "engine": engine,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory of ``<key[:2]>/<key>.json`` evaluation results.

    .. deprecated::
        Thin compatibility shim over
        :class:`repro.service.store.ArtifactStore`, kept because sweeps,
        benchmarks and tests construct ``ResultCache(root)`` directly.
        New code should use the store (same layout, plus stats and the
        warm LRU) — or pass an ``ArtifactStore`` wherever a cache is
        accepted; the explorer only needs ``get``/``put``.

    The warm LRU is disabled here (``lru_entries=0``): sweep pools share
    a cache directory across *processes*, so disk must stay the single
    source of truth — a torn or corrupted entry is a miss even for the
    process that just wrote it.
    """

    def __init__(self, root: str | pathlib.Path) -> None:
        self.store = ArtifactStore(root, lru_entries=0)

    @property
    def root(self) -> pathlib.Path:
        return self.store.root

    def _path(self, key: str) -> pathlib.Path:
        return self.store.path(key)

    def get(self, key: str) -> dict | None:
        """The stored result dict, or None on miss/corruption."""
        return self.store.get(key)

    def put(self, key: str, result: dict) -> None:
        self.store.put(key, result)

    def __len__(self) -> int:
        return len(self.store)
