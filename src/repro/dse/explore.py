"""The explorer: fan design points out over a process pool, cache results.

Determinism contract: for a given (kernel, space, strategy, seed) the
sweep result — including the report JSON — is byte-identical whether it
runs serially, on a 4-process pool, or from a warm cache.  Three rules
make that hold:

* results are reassembled in *proposal* order, never completion order;
* nothing time- or pid-dependent is stored on an :class:`EvalResult`
  (wall-clock lives on the :class:`SweepResult` and stays out of its
  deterministic JSON form);
* strategies only see evaluated results, which are themselves
  deterministic, so every round proposes the same batch.

Work is sharded by :attr:`DesignPoint.compile_key`: each pool task is
*all* points of one compile key, and the per-process evaluator memo
(:func:`_process_evaluator`) keeps compiled pipelines alive across
batches and strategy rounds, so each configuration is compiled once per
pool process and its :class:`CompiledPipeline` is reused across the
simulator-knob variants (cache organisation) that share it.

Parallelism comes from the shared :class:`~repro.fleet.FleetExecutor`
(one reusable pool per explorer, or an externally supplied fleet),
which also guarantees the serial path runs the *same* task function —
the mechanism behind "byte-identical at any pool size".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..fleet import FleetExecutor
from ..kernels import KernelSpec
from .cache import ResultCache, result_key
from .evaluate import DEFAULT_EVAL_MAX_CYCLES, EvalResult, Evaluator
from .pareto import OBJECTIVES, pareto_frontier
from .space import ConfigSpace, DesignPoint
from .strategies import Strategy


@dataclass
class SweepResult:
    """All evaluations of one sweep, in deterministic proposal order."""

    kernel: str
    strategy: str
    results: list[EvalResult] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_s: float = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def frontier(self, objectives=OBJECTIVES) -> list[EvalResult]:
        return pareto_frontier(self.results, objectives)

    def to_json_dict(self) -> dict:
        """Deterministic report form (no wall-clock, no cache provenance).

        .. deprecated::
            As a *standalone* report format.  This dict is now the
            ``payload`` of a ``dse-sweep`` :class:`~repro.obs.RunEnvelope`
            (see :func:`repro.obs.emit.sweep_envelope`); the legacy JSON
            mirror files keep exactly this shape for compatibility.
        """
        frontier_labels = [r.point.label for r in self.frontier()]
        return {
            "kernel": self.kernel,
            "strategy": self.strategy,
            "objectives": list(OBJECTIVES),
            "n_points": len(self.results),
            "status_counts": self.status_counts(),
            "frontier": frontier_labels,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_json_dict` output (or from a
        ``dse-sweep`` envelope payload, which wraps the same dict).

        Cache provenance and wall-clock were deliberately excluded from
        the deterministic form, so they come back zeroed — exactly the
        state :func:`repro.harness.report.format_pareto` renders without
        a cache line, keeping reconstructed reports byte-identical to a
        cache-less run's output.
        """
        return cls(
            kernel=data["kernel"],
            strategy=data["strategy"],
            results=[EvalResult.from_dict(r) for r in data.get("results", [])],
        )


#: Per-process evaluator memo: compiled pipelines survive across pool
#: tasks, batches and sweeps that agree on (kernel, budget, engine).
_PROCESS_EVALUATORS: dict = {}

#: Evaluators kept per process before the memo is cleared (each holds
#: compiled-pipeline memos; a handful covers a mixed workload).
_PROCESS_EVALUATOR_ENTRIES = 8


def _process_evaluator(
    spec: KernelSpec, max_cycles: int, engine: str
) -> Evaluator:
    key = (spec.name, spec.source, max_cycles, engine)
    evaluator = _PROCESS_EVALUATORS.get(key)
    if evaluator is None:
        if len(_PROCESS_EVALUATORS) >= _PROCESS_EVALUATOR_ENTRIES:
            _PROCESS_EVALUATORS.clear()
        evaluator = _PROCESS_EVALUATORS[key] = Evaluator(
            spec, max_cycles=max_cycles, engine=engine
        )
    return evaluator


def _evaluate_group(task) -> list[tuple[int, dict]]:
    """Fleet task: evaluate one compile-key group.

    Takes and returns plain picklable data; ``EvalResult`` travels as its
    dict form so the parent rebuilds identical objects on any start
    method (fork or spawn) — and the serial path round-trips through the
    same dicts, keeping its bytes identical to any pool size.
    """
    spec, max_cycles, engine, group = task
    evaluator = _process_evaluator(spec, max_cycles, engine)
    return [(index, evaluator.evaluate(point).to_dict()) for index, point in group]


class Explorer:
    """Run strategies over a config space for one kernel."""

    def __init__(
        self,
        spec: KernelSpec,
        space: ConfigSpace | None = None,
        cache: ResultCache | None = None,
        processes: int = 1,
        max_cycles: int = DEFAULT_EVAL_MAX_CYCLES,
        engine: str = "event",
        fleet: FleetExecutor | None = None,
        envelopes=None,
    ) -> None:
        """``envelopes`` is an optional
        :class:`~repro.obs.emit.EnvelopeWriter`: when set, every freshly
        evaluated point (cache misses; hits were journalled when first
        computed) is persisted as a ``dse-eval`` run envelope.  Emission
        happens in the parent process — the writer never crosses the
        pool boundary, so the byte-determinism contract is untouched."""
        self.spec = spec
        self.space = space if space is not None else ConfigSpace()
        self.cache = cache
        self.processes = max(1, processes)
        self.max_cycles = max_cycles
        self.engine = engine
        self.envelopes = envelopes
        # An externally supplied fleet is shared (and owned) by the
        # caller; otherwise the explorer lazily creates its own and
        # reuses it across every batch and run.
        self._fleet = fleet
        self._owns_fleet = fleet is None

    @property
    def fleet(self) -> FleetExecutor:
        if self._fleet is None:
            self._fleet = FleetExecutor(
                self.processes,
                envelopes=self.envelopes,
                context={"subsystem": "dse", "kernel": self.spec.name},
            )
        return self._fleet

    def close(self) -> None:
        """Release the explorer's own pool (no-op for a shared fleet)."""
        if self._owns_fleet and self._fleet is not None:
            self._fleet.close()

    def __enter__(self) -> "Explorer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, strategy: Strategy) -> SweepResult:
        """Drive ``strategy`` to exhaustion and collect every result."""
        start = time.perf_counter()
        sweep = SweepResult(kernel=self.spec.name, strategy=strategy.name)
        evaluated: dict[DesignPoint, EvalResult] = {}
        while True:
            batch, seen = [], set(evaluated)
            for point in strategy.propose(self.space, evaluated):
                if point not in seen:
                    batch.append(point)
                    seen.add(point)
            if not batch:
                break
            for point, result in zip(batch, self._evaluate_batch(batch, sweep)):
                evaluated[point] = result
                sweep.results.append(result)
        sweep.elapsed_s = time.perf_counter() - start
        return sweep

    # -- batch evaluation --------------------------------------------------

    def _evaluate_batch(
        self, batch: list[DesignPoint], sweep: SweepResult
    ) -> list[EvalResult]:
        slots: list[EvalResult | None] = [None] * len(batch)
        misses: list[tuple[int, DesignPoint]] = []
        keys: dict[int, str] = {}
        want_keys = self.cache is not None or self.envelopes is not None
        for index, point in enumerate(batch):
            if want_keys:
                keys[index] = result_key(
                    self.spec, point, self.max_cycles, self.engine
                )
            if self.cache is not None:
                stored = self.cache.get(keys[index])
                if stored is not None:
                    result = EvalResult.from_dict(stored)
                    result.from_cache = True
                    slots[index] = result
                    sweep.cache_hits += 1
                    continue
            misses.append((index, point))
        sweep.cache_misses += len(misses)

        def persist(index: int, result: EvalResult) -> None:
            # Fires the moment a shard lands (checkpointing: a killed
            # sweep restarted against the same cache replays everything
            # persisted so far).  cache keys are content addresses, so
            # completion-order writes are order-independent.
            if self.cache is not None:
                self.cache.put(keys[index], result.to_dict())
            if self.envelopes is not None:
                from ..obs.emit import eval_envelope

                self.envelopes.write(
                    eval_envelope(
                        result,
                        kernel=self.spec.name,
                        engine=self.engine,
                        config_hash=keys[index],
                    )
                )

        for index, result in self._evaluate_misses(misses, persist):
            slots[index] = result
        assert all(r is not None for r in slots)
        return slots  # type: ignore[return-value]

    def _evaluate_misses(
        self,
        misses: list[tuple[int, DesignPoint]],
        persist=None,
    ) -> list[tuple[int, EvalResult]]:
        if not misses:
            return []
        # Shard by compile key: one task = one compilation, many sim knobs.
        groups: dict[tuple, list[tuple[int, DesignPoint]]] = {}
        for index, point in misses:
            groups.setdefault(point.compile_key, []).append((index, point))
        tasks = [
            (self.spec, self.max_cycles, self.engine, group)
            for group in groups.values()
        ]
        results_by_index: dict[int, EvalResult] = {}

        def on_shard(_task_index: int, shard) -> None:
            for index, data in shard:
                result = EvalResult.from_dict(data)
                results_by_index[index] = result
                if persist is not None:
                    persist(index, result)

        # Serial and pooled runs route through the same fleet task and
        # round-trip results through the same dict form, so reports are
        # byte-identical at any pool size.  on_shard fires per completed
        # shard (completion order); the returned list is proposal-ordered.
        shards = self.fleet.map(_evaluate_group, tasks, on_result=on_shard)
        out: list[tuple[int, EvalResult]] = []
        for shard in shards:
            out.extend((index, results_by_index[index]) for index, _ in shard)
        return out
