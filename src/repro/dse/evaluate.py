"""Score one design point: compile → simulate → cost-model.

The evaluator is deliberately *total*: a configuration that deadlocks,
blows its cycle budget, or fails to compile produces an
:class:`EvalResult` with the corresponding ``status`` instead of raising,
so one pathological point can never abort a sweep.  Compilation is
memoized per :attr:`~repro.dse.space.DesignPoint.compile_key`, so points
that differ only in simulator knobs (cache organisation) reuse the same
:class:`~repro.pipeline.driver.CompiledPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..errors import (
    CgpaError,
    CycleBudgetExceeded,
    DeadlockError,
    SimulationError,
)
from ..fleet import interned_workload
from ..frontend import compile_c
from ..harness.runner import cgpa_area
from ..hw import AcceleratorSystem, DirectMappedCache
from ..cost import power_report
from ..kernels import KernelSpec
from ..pipeline import CompiledPipeline, cgpa_compile
from ..transforms import optimize_module
from .space import DesignPoint

#: Default per-point cycle budget; generous for the paper workloads (the
#: slowest backend finishes in well under a million cycles) yet small
#: enough that a livelocked configuration fails fast.
DEFAULT_EVAL_MAX_CYCLES = 50_000_000

#: ``EvalResult.status`` values.
STATUSES = ("ok", "deadlock", "timeout", "error")


@dataclass
class EvalResult:
    """Flat outcome of one design-point evaluation.

    Every field is plain data (JSON-serialisable via :meth:`to_dict`), so
    results cross process boundaries and survive in the on-disk cache.
    ``from_cache`` is bookkeeping about *this* sweep, not about the
    configuration — it is deliberately excluded from serialisation so a
    warm re-run emits byte-identical report JSON.
    """

    point: DesignPoint
    status: str
    cycles: int | None = None
    total_aluts: int | None = None
    energy_uj: float | None = None
    power_mw: float | None = None
    signature: str | None = None
    stall_cycles: dict[str, int] = field(default_factory=dict)
    cache_hit_rate: float | None = None
    checksum: float | None = None
    error: str | None = None
    #: Multi-line watchdog wait-for-graph report for ``deadlock`` results
    #: (which worker blocked on which FIFO op, occupancy snapshot,
    #: suspected cycle); None for every other status.
    diagnosis: str | None = None
    from_cache: bool = field(default=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def objectives(self) -> tuple[int, int, float]:
        """The (cycles, total_aluts, energy_uj) minimisation vector."""
        assert self.ok, "objectives are only defined for ok results"
        return (self.cycles, self.total_aluts, self.energy_uj)

    def to_dict(self) -> dict:
        return {
            "point": self.point.to_dict(),
            "status": self.status,
            "cycles": self.cycles,
            "total_aluts": self.total_aluts,
            "energy_uj": self.energy_uj,
            "power_mw": self.power_mw,
            "signature": self.signature,
            "stall_cycles": {k: self.stall_cycles[k]
                             for k in sorted(self.stall_cycles)},
            "cache_hit_rate": self.cache_hit_rate,
            "checksum": self.checksum,
            "error": self.error,
            "diagnosis": self.diagnosis,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvalResult":
        # Keep only known fields: cache entries written by a *newer*
        # schema (extra keys) must load, not crash the sweep; entries
        # written before a field existed fall back to its default.
        known = {f.name for f in fields(cls)}
        data = {k: v for k, v in data.items() if k in known}
        data["point"] = DesignPoint.from_dict(data["point"])
        data.setdefault("diagnosis", None)
        return cls(**data)


class Evaluator:
    """Compile-and-simulate scorer for one kernel.

    One evaluator per (kernel, cycle budget, engine); design points are
    passed to :meth:`evaluate`.  Stateless apart from the compile memo, so
    pool workers each hold their own instance.
    """

    def __init__(
        self,
        spec: KernelSpec,
        max_cycles: int = DEFAULT_EVAL_MAX_CYCLES,
        engine: str = "event",
        envelopes=None,
    ) -> None:
        """``envelopes`` is an optional
        :class:`~repro.obs.emit.EnvelopeWriter`: when set, every
        :meth:`evaluate` call also persists a ``dse-eval`` run envelope
        (config hash = the result-cache key, so envelope and cache entry
        describe the same work).  Pool workers leave it unset — the
        explorer emits from the parent process instead."""
        self.spec = spec
        self.max_cycles = max_cycles
        self.engine = engine
        self.envelopes = envelopes
        self._compiled: dict[tuple[str, int, int], CompiledPipeline] = {}

    # -- compilation -------------------------------------------------------

    def compile(self, point: DesignPoint) -> CompiledPipeline:
        """Compile the kernel for ``point``'s compile-time knobs (memoized)."""
        key = point.compile_key
        if key not in self._compiled:
            spec = self.spec
            module = compile_c(spec.source, spec.name)
            optimize_module(module)
            self._compiled[key] = cgpa_compile(
                module,
                spec.accel_function,
                shapes=spec.shapes_for(module),
                policy=point.replication_policy,
                n_workers=point.n_workers,
                fifo_depth=point.fifo_depth,
            )
        return self._compiled[key]

    # -- evaluation --------------------------------------------------------

    def evaluate(self, point: DesignPoint) -> EvalResult:
        """Score one point; failures land in ``status``, never propagate."""
        result = self._evaluate_total(point)
        if self.envelopes is not None:
            from ..obs.emit import eval_envelope
            from .cache import result_key

            self.envelopes.write(
                eval_envelope(
                    result,
                    kernel=self.spec.name,
                    engine=self.engine,
                    config_hash=result_key(
                        self.spec, point, self.max_cycles, self.engine
                    ),
                )
            )
        return result

    def _evaluate_total(self, point: DesignPoint) -> EvalResult:
        try:
            compiled = self.compile(point)
        except CgpaError as exc:
            return EvalResult(point=point, status="error",
                              error=f"compile: {exc}")
        try:
            return self._simulate(point, compiled)
        except DeadlockError as exc:
            diagnosis = exc.diagnosis
            return EvalResult(
                point=point,
                status="deadlock",
                signature=compiled.full_signature,
                error=str(exc).splitlines()[0],
                diagnosis=diagnosis.format() if diagnosis else str(exc),
            )
        except CycleBudgetExceeded as exc:
            return EvalResult(
                point=point,
                status="timeout",
                signature=compiled.full_signature,
                error=str(exc),
            )
        except SimulationError as exc:
            return EvalResult(
                point=point,
                status=_classify_sim_failure(exc),
                signature=compiled.full_signature,
                error=str(exc),
            )
        except CgpaError as exc:
            return EvalResult(point=point, status="error",
                              signature=compiled.full_signature,
                              error=str(exc))

    def _simulate(
        self, point: DesignPoint, compiled: CompiledPipeline
    ) -> EvalResult:
        spec = self.spec
        # Interned per (module, kernel): the functional setup runs once
        # per process; each evaluation gets a bit-identical clone.
        memory, globals_, args = interned_workload(compiled.module, spec)
        system = AcceleratorSystem(
            compiled.module,
            memory,
            channels=compiled.result.channels,
            cache=DirectMappedCache(
                n_lines=point.cache_lines, ports=point.cache_ports
            ),
            global_addresses=globals_,
            private_caches=point.private_caches,
            max_cycles=self.max_cycles,
            engine=self.engine,
        )
        sim = system.run(spec.measure_entry, args)
        area = cgpa_area(compiled)
        power = power_report(
            sim, area, list(compiled.module.functions.values())
        )
        from ..interp import Interpreter

        checksum = Interpreter(
            compiled.module, memory, global_addresses=globals_
        ).call(spec.check_function, [])
        stall: dict[str, int] = {}
        for breakdown in sim.stall_breakdown.values():
            for category, count in breakdown.items():
                stall[category] = stall.get(category, 0) + count
        return EvalResult(
            point=point,
            status="ok",
            cycles=sim.cycles,
            total_aluts=area.total_aluts,
            energy_uj=power.energy_uj,
            power_mw=power.power_mw,
            signature=compiled.full_signature,
            stall_cycles=stall,
            cache_hit_rate=sim.cache_stats.hit_rate,
            checksum=float(checksum),
        )


def _classify_sim_failure(exc: SimulationError) -> str:
    """Deadlock vs. cycle-budget exhaustion vs. anything else.

    .. deprecated::
        Message-grepping fallback, kept only for :class:`SimulationError`
        instances raised by code that predates the typed
        :class:`~repro.errors.DeadlockError` /
        :class:`~repro.errors.CycleBudgetExceeded` hierarchy.  The
        evaluator catches the typed exceptions first; new failure paths
        should raise those instead of relying on this classifier.
    """
    message = str(exc)
    if "deadlock" in message:
        return "deadlock"
    if "max_cycles" in message:
        return "timeout"
    return "error"
