"""Design points and the knob space the explorer enumerates.

A :class:`DesignPoint` pins every knob of one accelerator configuration:
the compile-time knobs (replication policy, parallel-worker count, FIFO
depth — together the *compile key*, because they select a distinct
:class:`~repro.pipeline.driver.CompiledPipeline`) and the simulator-time
knobs (shared vs. private caches, cache lines, cache ports) that reuse
the same compiled pipeline.  A :class:`ConfigSpace` holds the candidate
values per knob and enumerates/samples points deterministically.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, fields

from ..errors import CgpaError
from ..pipeline.spec import ReplicationPolicy

#: Valid ``DesignPoint.policy`` strings (mirrors ReplicationPolicy values).
POLICIES = tuple(p.value for p in ReplicationPolicy)


@dataclass(frozen=True, order=True)
class DesignPoint:
    """One fully-specified accelerator configuration.

    Intentionally permissive: the constructor does not validate ranges, so
    tests (and the robustness machinery) can build known-bad points — e.g.
    a deadlocking ``fifo_depth=0`` — and check the evaluator *captures*
    the failure instead of aborting.  :class:`ConfigSpace` validates the
    values it enumerates.
    """

    policy: str = "p1"
    n_workers: int = 4
    fifo_depth: int = 16
    private_caches: bool = False
    cache_lines: int = 512
    cache_ports: int = 8

    @property
    def compile_key(self) -> tuple[str, int, int]:
        """Knobs that require a fresh CGPA compilation.

        Points sharing a compile key differ only in simulator knobs and
        reuse one compiled pipeline (the explorer groups work by this).
        """
        return (self.policy, self.n_workers, self.fifo_depth)

    @property
    def label(self) -> str:
        """Short human-readable id, e.g. ``p1/w4/d16/shared/c512x8``."""
        mem = "private" if self.private_caches else "shared"
        return (
            f"{self.policy}/w{self.n_workers}/d{self.fifo_depth}/"
            f"{mem}/c{self.cache_lines}x{self.cache_ports}"
        )

    @property
    def replication_policy(self) -> ReplicationPolicy:
        return ReplicationPolicy(self.policy)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "DesignPoint":
        return cls(**data)


@dataclass
class ConfigSpace:
    """Candidate values per knob; the cartesian product is the grid.

    Knob order below is the enumeration order of :meth:`grid`, which makes
    sweeps (and therefore result files) deterministic.
    """

    policies: list[str] = field(default_factory=lambda: ["p1"])
    n_workers: list[int] = field(default_factory=lambda: [1, 2, 4])
    fifo_depths: list[int] = field(default_factory=lambda: [4, 16])
    private_caches: list[bool] = field(default_factory=lambda: [False])
    cache_lines: list[int] = field(default_factory=lambda: [512])
    cache_ports: list[int] = field(default_factory=lambda: [8])

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        def check(name, values, pred, what):
            if not values:
                raise CgpaError(f"config space: {name} must not be empty")
            bad = [v for v in values if not pred(v)]
            if bad:
                raise CgpaError(f"config space: {name} {bad} invalid ({what})")

        check("policies", self.policies, lambda p: p in POLICIES,
              f"must be one of {POLICIES}")
        check("n_workers", self.n_workers,
              lambda n: isinstance(n, int) and n >= 1, "must be >= 1")
        check("fifo_depths", self.fifo_depths,
              lambda d: isinstance(d, int) and d >= 1, "must be >= 1")
        check("cache_lines", self.cache_lines,
              lambda n: isinstance(n, int) and n >= 1 and not (n & (n - 1)),
              "must be a power of two")
        check("cache_ports", self.cache_ports,
              lambda n: isinstance(n, int) and n >= 1, "must be >= 1")

    @property
    def axes(self) -> list[tuple[str, list]]:
        """(point field name, candidate values) in enumeration order."""
        return [
            ("policy", self.policies),
            ("n_workers", self.n_workers),
            ("fifo_depth", self.fifo_depths),
            ("private_caches", self.private_caches),
            ("cache_lines", self.cache_lines),
            ("cache_ports", self.cache_ports),
        ]

    @property
    def size(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def grid(self) -> list[DesignPoint]:
        """Every point of the space, in deterministic axis-major order."""
        names = [name for name, _ in self.axes]
        points = []
        for combo in itertools.product(*(values for _, values in self.axes)):
            points.append(DesignPoint(**dict(zip(names, combo))))
        return points

    def sample(self, n: int, seed: int = 0) -> list[DesignPoint]:
        """``n`` distinct points drawn without replacement (seeded)."""
        grid = self.grid()
        if n >= len(grid):
            return grid
        rng = random.Random(seed)
        return rng.sample(grid, n)

    def default_point(self) -> DesignPoint:
        """First value of every axis — the hill-climb seed by default."""
        return self.grid()[0]

    def neighbors(self, point: DesignPoint) -> list[DesignPoint]:
        """One-knob moves to adjacent candidate values (hill-climb moves)."""
        out: list[DesignPoint] = []
        for name, values in self.axes:
            current = getattr(point, name)
            if current not in values:
                continue
            i = values.index(current)
            for j in (i - 1, i + 1):
                if 0 <= j < len(values):
                    out.append(
                        DesignPoint(**{**point.to_dict(), name: values[j]})
                    )
        return out
