"""Design-space exploration: sweep accelerator knobs, report frontiers.

The subsystem the CGPA paper stops short of: instead of one hand-picked
configuration per kernel, enumerate the knob space (replication policy,
worker count, FIFO depth, cache organisation), evaluate each point with
the event-driven simulator plus the area/power cost model, and extract
the Pareto frontier over (cycles, total_aluts, energy_uj).  Sweeps run
on a process pool, are incremental thanks to a content-addressed on-disk
result cache, and are byte-deterministic across pool sizes.

Entry points: ``python -m repro.harness dse <kernel>`` on the command
line, or::

    from repro.dse import ConfigSpace, Explorer, GridStrategy, ResultCache
    sweep = Explorer(spec, ConfigSpace(), processes=4).run(GridStrategy())
    for best in sweep.frontier():
        print(best.point.label, best.objectives())
"""

from .cache import CACHE_SCHEMA_VERSION, ResultCache, result_key
from .evaluate import (
    DEFAULT_EVAL_MAX_CYCLES,
    STATUSES,
    EvalResult,
    Evaluator,
)
from .explore import Explorer, SweepResult
from .pareto import OBJECTIVES, dominates, pareto_frontier
from .space import POLICIES, ConfigSpace, DesignPoint
from .strategies import (
    GridStrategy,
    HillClimbStrategy,
    RandomStrategy,
    Strategy,
)

__all__ = [
    "ConfigSpace", "DesignPoint", "POLICIES",
    "Evaluator", "EvalResult", "STATUSES", "DEFAULT_EVAL_MAX_CYCLES",
    "ResultCache", "result_key", "CACHE_SCHEMA_VERSION",
    "Strategy", "GridStrategy", "RandomStrategy", "HillClimbStrategy",
    "pareto_frontier", "dominates", "OBJECTIVES",
    "Explorer", "SweepResult",
]
