"""Exception hierarchy for the CGPA reproduction.

Every layer of the tool raises a subclass of :class:`CgpaError` so callers
can catch failures from the whole flow with a single except clause while
still being able to distinguish frontend errors from backend errors.
"""

from __future__ import annotations


class CgpaError(Exception):
    """Base class for all errors raised by this package."""


class LexerError(CgpaError):
    """Raised when the C-subset lexer encounters an invalid token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(CgpaError):
    """Raised when the C-subset parser encounters invalid syntax."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(CgpaError):
    """Raised for type errors and undeclared identifiers."""


class IRError(CgpaError):
    """Raised for malformed IR (verifier failures, bad construction)."""


class InterpError(CgpaError):
    """Raised when the IR interpreter hits undefined behaviour."""


class AnalysisError(CgpaError):
    """Raised when an analysis is asked something it cannot answer."""


class PartitionError(CgpaError):
    """Raised when no legal pipeline partition exists for a loop."""


class TransformError(CgpaError):
    """Raised when the pipeline transformation cannot be applied."""


class ScheduleError(CgpaError):
    """Raised when the RTL scheduler cannot satisfy its constraints."""


class SimulationError(CgpaError):
    """Raised on hardware-simulator level failures (deadlock, bad state)."""


class DeadlockError(SimulationError):
    """The hardware reached a state from which no worker can ever progress.

    Carries a structured wait-for-graph report
    (:class:`repro.faults.watchdog.DeadlockDiagnosis`) in ``diagnosis``:
    which worker is blocked on which FIFO operation, queue occupancy
    snapshots, and the suspected cycle of mutually-waiting workers.  The
    string form is the formatted diagnosis, so legacy callers that grep
    the message keep working.
    """

    def __init__(self, message: str, diagnosis=None) -> None:
        super().__init__(message)
        self.diagnosis = diagnosis


class CycleBudgetExceeded(SimulationError):
    """The simulated clock passed ``max_cycles`` without finishing.

    Distinct from :class:`DeadlockError`: the system was still making
    progress (or at least could have), it just ran past its budget —
    livelock, pathological slowdown, or a budget set too tight.
    """

    def __init__(self, max_cycles: int, cycle: int | None = None) -> None:
        super().__init__(f"exceeded max_cycles={max_cycles}")
        self.max_cycles = max_cycles
        self.cycle = cycle


class InvariantViolationError(SimulationError):
    """A conservation invariant failed during simulation.

    Raised by :class:`repro.faults.monitor.InvariantMonitor` instead of
    letting a corrupt simulator state produce silently wrong results.
    ``violations`` is the list of structured
    :class:`repro.faults.monitor.InvariantViolation` records.
    """

    def __init__(self, message: str, violations=None) -> None:
        super().__init__(message)
        self.violations = violations or []
