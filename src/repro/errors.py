"""Exception hierarchy for the CGPA reproduction.

Every layer of the tool raises a subclass of :class:`CgpaError` so callers
can catch failures from the whole flow with a single except clause while
still being able to distinguish frontend errors from backend errors.
"""

from __future__ import annotations


class CgpaError(Exception):
    """Base class for all errors raised by this package."""


class LexerError(CgpaError):
    """Raised when the C-subset lexer encounters an invalid token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(CgpaError):
    """Raised when the C-subset parser encounters invalid syntax."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class SemanticError(CgpaError):
    """Raised for type errors and undeclared identifiers."""


class IRError(CgpaError):
    """Raised for malformed IR (verifier failures, bad construction)."""


class InterpError(CgpaError):
    """Raised when the IR interpreter hits undefined behaviour."""


class AnalysisError(CgpaError):
    """Raised when an analysis is asked something it cannot answer."""


class PartitionError(CgpaError):
    """Raised when no legal pipeline partition exists for a loop."""


class TransformError(CgpaError):
    """Raised when the pipeline transformation cannot be applied."""


class ScheduleError(CgpaError):
    """Raised when the RTL scheduler cannot satisfy its constraints."""


class SimulationError(CgpaError):
    """Raised on hardware-simulator level failures (deadlock, bad state)."""
