"""Typed request contracts for the CGPA service.

A :class:`JobRequest` is the wire form of one unit of toolchain work:
which *kind* of job (compile / simulate / dse / faults / rtl), which
kernel (optionally with the C source overridden, so clients can submit
modified programs), and a per-kind option mapping.  Construction
normalises the options against a declared schema — defaults filled,
types checked, unknown keys rejected — so every accepted request is
fully specified and two requests meaning the same work serialise to the
same canonical payload.

That canonical payload is the request's **content key**
(:attr:`JobRequest.key`): the sha256 of the kind, the kernel's resolved
source and entry-point contract, the normalised options, and the
cost-model + contract schema versions.  The key addresses the artifact
in :class:`~repro.service.store.ArtifactStore`, drives request
coalescing in the job queue, and makes "have we done this before?" a
single dictionary probe rather than a semantic question.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

from ..cost import COST_MODEL_VERSION
from ..errors import CgpaError
from ..kernels import KERNELS_BY_NAME, KernelSpec
from .store import content_key

#: Bump when the request schema or job semantics change: every key
#: changes, so stale artifacts are never addressed again.
CONTRACT_VERSION = 1

#: The job kinds the service executes, in documentation order.
JOB_KINDS = ("compile", "simulate", "dse", "faults", "rtl")

#: Replication policies accepted by compile-like options.
_POLICIES = ("p1", "p2", "none")

#: Simulator engines accepted by simulate-like options.
_ENGINES = ("event", "lockstep", "specialized")


class ContractError(CgpaError):
    """A request that fails validation (maps to HTTP 400)."""


# --------------------------------------------------------------------------
# Option schemas
# --------------------------------------------------------------------------


def _is_pos_int(v: Any) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 1


def _is_int(v: Any) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _is_pos_int_list(v: Any) -> bool:
    return (
        isinstance(v, list) and bool(v) and all(_is_pos_int(i) for i in v)
    )


def _is_bool_list(v: Any) -> bool:
    return (
        isinstance(v, list) and bool(v)
        and all(isinstance(i, bool) for i in v)
    )


def _is_policy_list(v: Any) -> bool:
    return (
        isinstance(v, list) and bool(v) and all(p in _POLICIES for p in v)
    )


@dataclass(frozen=True)
class Option:
    """One schema slot: default value, validator, and a doc string."""

    default: Any
    check: Callable[[Any], bool]
    doc: str


def _choice(values: tuple) -> Callable[[Any], bool]:
    return lambda v: v in values


_COMPILE_OPTIONS = {
    "policy": Option("p1", _choice(_POLICIES), f"one of {_POLICIES}"),
    "n_workers": Option(4, _is_pos_int, "int >= 1"),
    "fifo_depth": Option(16, _is_pos_int, "int >= 1"),
}

_SIMULATE_OPTIONS = {
    **_COMPILE_OPTIONS,
    "private_caches": Option(
        False, lambda v: isinstance(v, bool), "bool"
    ),
    "cache_lines": Option(
        512,
        lambda v: _is_pos_int(v) and not (v & (v - 1)),
        "power-of-two int >= 1",
    ),
    "cache_ports": Option(8, _is_pos_int, "int >= 1"),
    "engine": Option("event", _choice(_ENGINES), f"one of {_ENGINES}"),
    "max_cycles": Option(50_000_000, _is_pos_int, "int >= 1"),
}

_DSE_OPTIONS = {
    "strategy": Option(
        "grid", _choice(("grid", "random", "hillclimb")),
        "one of ('grid', 'random', 'hillclimb')",
    ),
    "policies": Option(["p1"], _is_policy_list, f"list of {_POLICIES}"),
    "n_workers": Option([1, 2, 4], _is_pos_int_list, "list of int >= 1"),
    "fifo_depths": Option([4, 16], _is_pos_int_list, "list of int >= 1"),
    "private_caches": Option([False], _is_bool_list, "list of bool"),
    "cache_lines": Option(
        [512],
        lambda v: _is_pos_int_list(v) and all(not (i & (i - 1)) for i in v),
        "list of power-of-two int >= 1",
    ),
    "cache_ports": Option([8], _is_pos_int_list, "list of int >= 1"),
    "samples": Option(8, _is_pos_int, "int >= 1"),
    "seed": Option(0, _is_int, "int"),
    "max_evals": Option(24, _is_pos_int, "int >= 1"),
    "objective": Option(
        "cycles", _choice(("cycles", "total_aluts", "energy_uj")),
        "one of ('cycles', 'total_aluts', 'energy_uj')",
    ),
    "engine": Option("event", _choice(_ENGINES), f"one of {_ENGINES}"),
    "max_cycles": Option(50_000_000, _is_pos_int, "int >= 1"),
}

_FAULTS_OPTIONS = {
    "plans": Option(8, _is_pos_int, "int >= 1"),
    "seed": Option(0, _is_int, "int"),
    "engine": Option("event", _choice(_ENGINES), f"one of {_ENGINES}"),
    "n_workers": Option(4, _is_pos_int, "int >= 1"),
    "fifo_depth": Option(16, _is_pos_int, "int >= 1"),
    "max_cycles": Option(
        None, lambda v: v is None or _is_pos_int(v),
        "int >= 1 or null (64x the fault-free baseline)",
    ),
}

_RTL_OPTIONS = {
    "policy": Option("p1", _choice(_POLICIES), f"one of {_POLICIES}"),
    "n_workers": Option(2, _is_pos_int, "int >= 1"),
    "fifo_depth": Option(16, _is_pos_int, "int >= 1"),
    "setup_args": Option(
        None, lambda v: v is None or _is_pos_int_list(v),
        "list of int >= 1 or null (smoke-scale workload)",
    ),
    "max_cycles": Option(500_000, _is_pos_int, "int >= 1"),
}

#: kind -> {option name -> Option}.
OPTION_SCHEMAS: dict[str, dict[str, Option]] = {
    "compile": _COMPILE_OPTIONS,
    "simulate": _SIMULATE_OPTIONS,
    "dse": _DSE_OPTIONS,
    "faults": _FAULTS_OPTIONS,
    "rtl": _RTL_OPTIONS,
}


def normalize_options(kind: str, options: dict | None) -> dict:
    """Fill defaults and validate ``options`` against ``kind``'s schema."""
    schema = OPTION_SCHEMAS[kind]
    options = dict(options or {})
    unknown = sorted(set(options) - set(schema))
    if unknown:
        raise ContractError(
            f"{kind} job: unknown option(s) {unknown}; "
            f"valid options: {sorted(schema)}"
        )
    normalized = {}
    for name, slot in schema.items():
        value = options.get(name, slot.default)
        if not slot.check(value):
            raise ContractError(
                f"{kind} job: option {name}={value!r} invalid "
                f"(expected {slot.doc})"
            )
        normalized[name] = value
    return normalized


# --------------------------------------------------------------------------
# The request
# --------------------------------------------------------------------------


@dataclass
class JobRequest:
    """One validated, fully-specified unit of toolchain work.

    Build with :meth:`from_dict` (the wire path, which validates) or
    :meth:`make` (the in-process path).  ``options`` is always complete:
    every schema slot is present with either the submitted or the
    default value, so the content key never depends on which defaults a
    client spelled out.
    """

    kind: str
    kernel: str
    options: dict = field(default_factory=dict)
    #: Optional replacement C source for the kernel (same entry-point
    #: contract as the named kernel's spec).
    source: str | None = None
    #: Optional wall-clock budget (seconds) for executing this job.
    #: Transport-level: it bounds *this submission's* patience, not the
    #: work's identity, so it is deliberately **excluded from the content
    #: key** — a deadline must never split the artifact address space or
    #: defeat coalescing.
    deadline_s: float | None = None

    @classmethod
    def make(
        cls,
        kind: str,
        kernel: str,
        options: dict | None = None,
        source: str | None = None,
        deadline_s: float | None = None,
    ) -> "JobRequest":
        if kind not in JOB_KINDS:
            raise ContractError(
                f"unknown job kind {kind!r}; valid kinds: {list(JOB_KINDS)}"
            )
        if kernel not in KERNELS_BY_NAME:
            raise ContractError(
                f"unknown kernel {kernel!r}; "
                f"valid kernels: {sorted(KERNELS_BY_NAME)}"
            )
        if source is not None and not isinstance(source, str):
            raise ContractError("source override must be a string")
        if deadline_s is not None:
            if (
                isinstance(deadline_s, bool)
                or not isinstance(deadline_s, (int, float))
                or deadline_s <= 0
            ):
                raise ContractError(
                    "deadline_s must be a positive number of seconds"
                )
            deadline_s = float(deadline_s)
        return cls(
            kind=kind,
            kernel=kernel,
            options=normalize_options(kind, options),
            source=source,
            deadline_s=deadline_s,
        )

    @classmethod
    def from_dict(cls, data: Any) -> "JobRequest":
        """Validate a wire-form dict (the POST /v1/jobs body)."""
        if not isinstance(data, dict):
            raise ContractError("request body must be a JSON object")
        unknown = sorted(
            set(data) - {"kind", "kernel", "options", "source", "deadline_s"}
        )
        if unknown:
            raise ContractError(f"unknown request field(s) {unknown}")
        for name in ("kind", "kernel"):
            if not isinstance(data.get(name), str):
                raise ContractError(f"request field {name!r} must be a string")
        options = data.get("options")
        if options is not None and not isinstance(options, dict):
            raise ContractError("request field 'options' must be an object")
        return cls.make(
            data["kind"], data["kernel"],
            options=options, source=data.get("source"),
            deadline_s=data.get("deadline_s"),
        )

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "kernel": self.kernel,
            "options": dict(self.options),
        }
        if self.source is not None:
            out["source"] = self.source
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        return out

    # -- resolution --------------------------------------------------------

    def spec(self) -> KernelSpec:
        """The kernel spec this request targets (source override applied)."""
        spec = KERNELS_BY_NAME[self.kernel]
        if self.source is not None:
            spec = dataclasses.replace(spec, source=self.source)
        return spec

    @property
    def key(self) -> str:
        """Content address of this request's artifact.

        Hashes the same inputs as the DSE result cache — resolved C
        source, the kernel's entry-point contract, the full normalised
        option set — plus the job kind and the contract + cost-model
        versions, so any semantic change re-keys the world.
        """
        spec = self.spec()
        return content_key({
            "contract": CONTRACT_VERSION,
            "cost_model": COST_MODEL_VERSION,
            "kind": self.kind,
            "kernel": spec.name,
            "source": spec.source,
            "accel_function": spec.accel_function,
            "measure_entry": spec.measure_entry,
            "setup_function": spec.setup_function,
            "setup_args": list(spec.setup_args),
            "check_function": spec.check_function,
            "options": self.options,
        })
