"""The CGPA service: a stdlib-only asyncio HTTP/1.1 JSON server.

No framework, no dependencies: one ``asyncio.start_server`` callback
parses HTTP/1.1 (request line, headers, Content-Length body, keep-alive)
and routes to a handful of JSON endpoints::

    POST   /v1/jobs              submit a JobRequest        -> job record
    GET    /v1/jobs/<id>         poll status                -> job record
    DELETE /v1/jobs/<id>         cancel a queued/running job
    GET    /v1/jobs/<id>/result  fetch the artifact (409 until done)
    GET    /v1/artifacts/<key>   fetch any artifact by content key
    GET    /v1/stats             store/queue/rate-limit counters
    GET    /v1/healthz           liveness probe (ok / degraded / draining)

Submissions pass the per-client token-bucket limiter (client id =
``X-Client-Id`` header, else peer address; over budget -> 429 with
``Retry-After``), then the :class:`~repro.service.queue.JobQueue`,
which answers from the artifact store, coalesces identical in-flight
keys, or queues work for the thread-pool workers.  The event loop only
ever parses bytes and probes dictionaries — every simulation runs on a
worker thread — so status polls stay fast while jobs grind.

``python -m repro.harness serve`` wraps :func:`run_server`; tests and
the load benchmark use :func:`start_service` to run the whole service
on a background thread with an ephemeral port.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from typing import Callable

from ..fleet import FleetExecutor
from ..obs.emit import EnvelopeWriter
from .contracts import ContractError, JobRequest
from .queue import JobQueue
from .ratelimit import DEFAULT_CAPACITY, DEFAULT_REFILL_PER_S, RateLimiter
from .store import DEFAULT_LRU_ENTRIES, ArtifactStore

#: A service request body larger than this is refused (HTTP 413).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Idle keep-alive connections are closed after this many seconds.
KEEP_ALIVE_TIMEOUT_S = 75.0

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Everything one service instance needs to boot."""

    host: str = "127.0.0.1"
    port: int = 8337
    workers: int = 2
    #: >1 attaches a :class:`~repro.fleet.FleetExecutor` and runs jobs in
    #: pool processes instead of worker threads (GIL-free simulation).
    processes: int = 1
    store_root: str = ".cgpa-store"
    lru_entries: int = DEFAULT_LRU_ENTRIES
    rate_capacity: float = DEFAULT_CAPACITY
    rate_refill_per_s: float = DEFAULT_REFILL_PER_S
    #: Default wall-clock budget per job (None = unbounded; a request's
    #: own ``deadline_s`` overrides it).
    job_deadline_s: float | None = None
    #: Re-runs allowed after a crashed pool worker before a job fails.
    job_retries: int = 1
    #: Seconds shutdown lets in-flight jobs finish before cancelling.
    drain_timeout: float = 5.0


class _HttpError(Exception):
    """Internal: unwinds request handling into an error response."""

    def __init__(self, status: int, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message}
        self.retry_after = retry_after


class CgpaService:
    """One server instance: store + queue + limiter + HTTP front end."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        run: Callable[[JobRequest], dict] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.store = ArtifactStore(
            self.config.store_root, lru_entries=self.config.lru_entries
        )
        self.fleet = (
            FleetExecutor(self.config.processes)
            if self.config.processes > 1 else None
        )
        # Every executed job lands in the store's run journal, so one
        # `harness obs query <store>` covers the service's whole history.
        self.envelopes = EnvelopeWriter(self.store)
        self.queue = JobQueue(
            self.store, workers=self.config.workers, run=run,
            fleet=self.fleet, envelopes=self.envelopes,
            deadline_s=self.config.job_deadline_s,
            job_retries=self.config.job_retries,
            drain_timeout=self.config.drain_timeout,
        )
        limiter_kwargs = {} if clock is None else {"clock": clock}
        self.limiter = RateLimiter(
            capacity=self.config.rate_capacity,
            refill_per_s=self.config.rate_refill_per_s,
            **limiter_kwargs,
        )
        self.requests_served = 0
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "service not started"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain_timeout: float | None = None) -> None:
        """Graceful drain, then teardown.

        Submissions start answering 503 the moment the queue's
        ``draining`` flag flips; the HTTP front end stays up through the
        drain so clients can keep polling their in-flight jobs, and only
        then do the listener, connections, and pool come down.
        """
        self.queue.draining = True
        await self.queue.close(drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Keep-alive connections outlive the listening socket: cancel
        # their handler tasks so shutdown never leaves pending readers.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.fleet is not None:
            self.fleet.close()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        peer = writer.get_extra_info("peername")
        peer_id = peer[0] if isinstance(peer, tuple) else "local"
        try:
            while True:
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), KEEP_ALIVE_TIMEOUT_S
                    )
                except asyncio.TimeoutError:
                    break
                if not request_line.strip():
                    if not request_line:
                        break  # EOF: client closed the connection
                    continue  # stray CRLF between pipelined requests
                keep_alive = await self._handle_request(
                    request_line, reader, writer, peer_id
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # service shutting down
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_id: str,
    ) -> bool:
        """Parse, route and answer one request; returns keep-alive."""
        try:
            method, target, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, close=True
            )
            return False
        headers = await self._read_headers(reader)
        if headers is None:
            return False
        keep_alive = (
            headers.get("connection", "keep-alive").lower() != "close"
            and version.upper() != "HTTP/1.0"
        )
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            await self._respond(
                writer, 400,
                {"error": f"bad Content-Length {length_text!r}"}, close=True,
            )
            return False
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413,
                {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}, close=True,
            )
            return False
        if length:
            body = await reader.readexactly(length)

        self.requests_served += 1
        client_id = headers.get("x-client-id", peer_id)
        extra_headers: dict[str, str] = {}
        try:
            status, payload = self._route(method, target, body, client_id)
        except _HttpError as exc:
            status, payload = exc.status, exc.payload
            if exc.retry_after is not None:
                extra_headers["Retry-After"] = f"{exc.retry_after:.3f}"
        except Exception as exc:  # route bug: answer 500, keep serving
            status, payload = 500, {
                "error": f"internal: {type(exc).__name__}: {exc}"
            }
        await self._respond(
            writer, status, payload, close=not keep_alive,
            extra_headers=extra_headers,
        )
        return keep_alive

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return None  # EOF mid-headers
            line = line.strip()
            if not line:
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool = False,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    def _route(
        self, method: str, target: str, body: bytes, client_id: str
    ) -> tuple[int, dict]:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        parts = path.strip("/").split("/")

        if path == "/v1/healthz":
            self._require(method, "GET")
            draining = self.queue.draining
            health = (
                "draining" if draining
                else "degraded" if self.queue.degraded
                else "ok"
            )
            return 200, {"ok": not draining, "status": health,
                         "draining": draining}
        if path == "/v1/stats":
            self._require(method, "GET")
            return 200, self._stats()
        if path == "/v1/jobs":
            self._require(method, "POST")
            return self._submit(body, client_id)
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            if method == "DELETE":
                return 200, self._cancel(parts[2])
            self._require(method, "GET")
            return 200, self._job(parts[2]).to_dict()
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
            self._require(method, "GET")
            return self._result(parts[2])
        if len(parts) == 3 and parts[:2] == ["v1", "artifacts"]:
            self._require(method, "GET")
            artifact = self.store.get(parts[2])
            if artifact is None:
                raise _HttpError(404, f"no artifact {parts[2]!r}")
            return 200, artifact
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    def _submit(self, body: bytes, client_id: str) -> tuple[int, dict]:
        if self.queue.draining:
            raise _HttpError(
                503, "service is draining; not accepting new jobs",
                retry_after=self.config.drain_timeout,
            )
        decision = self.limiter.check(client_id)
        if not decision.allowed:
            raise _HttpError(
                429,
                f"rate limit exceeded for client {client_id!r}",
                retry_after=decision.retry_after,
            )
        try:
            data = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        try:
            request = JobRequest.from_dict(data)
        except ContractError as exc:
            raise _HttpError(400, str(exc))
        record = self.queue.submit(request)
        return 200, record.to_dict()

    def _job(self, job_id: str):
        record = self.queue.get(job_id)
        if record is None:
            raise _HttpError(404, f"no job {job_id!r}")
        return record

    def _cancel(self, job_id: str) -> dict:
        record = self.queue.cancel(job_id)
        if record is None:
            raise _HttpError(404, f"no job {job_id!r}")
        return record.to_dict()

    def _result(self, job_id: str) -> tuple[int, dict]:
        record = self._job(job_id)
        if record.status in ("failed", "timeout"):
            raise _HttpError(500, record.error or "job failed")
        artifact = self.queue.result(record)
        if artifact is None:
            raise _HttpError(
                409, f"job {job_id} is {record.status}; result not ready"
            )
        return 200, artifact

    def _stats(self) -> dict:
        return {
            "service": {
                "requests": self.requests_served,
                "clients": len(self.limiter),
            },
            "store": {**self.store.stats.to_dict(), "entries": len(self.store)},
            "queue": {**self.queue.stats.to_dict(), "depth": self.queue.depth},
            "rate": {"rejected": self.limiter.rejected},
        }


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def run_server(config: ServiceConfig) -> None:
    """Blocking entry point for ``python -m repro.harness serve``.

    SIGINT and SIGTERM both trigger a graceful drain (via explicit loop
    signal handlers, so drain works even when the process was launched
    with SIGINT ignored — e.g. backgrounded from a shell script — or is
    being stopped by a process manager that sends SIGTERM).
    """
    import signal as _signal

    async def main() -> None:
        service = CgpaService(config)
        await service.start()
        pool = (
            f"{config.processes} pool process(es)"
            if config.processes > 1 else f"{config.workers} worker(s)"
        )
        print(
            f"CGPA service on http://{config.host}:{service.port} "
            f"({pool}, store: {config.store_root})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        hooked: list[int] = []
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, shutdown.set)
                hooked.append(sig)
            except (NotImplementedError, OSError, RuntimeError):
                pass  # non-main thread / platforms without signal support
        serve = asyncio.ensure_future(service.serve_forever())
        stop = asyncio.ensure_future(shutdown.wait())
        stopped = False
        try:
            await asyncio.wait({serve, stop}, return_when=asyncio.FIRST_COMPLETED)
            if shutdown.is_set():
                # Drain while serve_forever still holds the listener up,
                # so clients can poll in-flight jobs to completion;
                # stop() closes the listener only after the drain.
                await service.stop()
                stopped = True
        finally:
            serve.cancel()
            stop.cancel()
            await asyncio.gather(serve, stop, return_exceptions=True)
            for sig in hooked:
                loop.remove_signal_handler(sig)
            if not stopped:
                await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class ServiceHandle:
    """A service running on a daemon thread (tests / load generators)."""

    def __init__(self, service: CgpaService, loop, thread: threading.Thread):
        self.service = service
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def host(self) -> str:
        return self.service.config.host

    @property
    def port(self) -> int:
        return self.service.port

    def stop(
        self, timeout: float = 10.0, drain_timeout: float | None = None
    ) -> None:
        if self._stopped:
            return
        self._stopped = True

        async def _shutdown() -> None:
            await self.service.stop(drain_timeout)
            asyncio.get_running_loop().stop()

        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(_shutdown())
        )
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service(
    config: ServiceConfig | None = None,
    run: Callable[[JobRequest], dict] | None = None,
    clock: Callable[[], float] | None = None,
    timeout: float = 10.0,
) -> ServiceHandle:
    """Boot a service on a background thread; returns once it's listening.

    Pass ``port=0`` in the config for an ephemeral port (read it back
    from ``handle.port``).  The handle is a context manager; exiting it
    stops the server and the worker pool.
    """
    config = config or ServiceConfig(port=0)
    service = CgpaService(config, run=run, clock=clock)
    started = threading.Event()
    boot_error: list[BaseException] = []
    loop_box: list[asyncio.AbstractEventLoop] = []

    def main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_box.append(loop)

        async def boot() -> None:
            try:
                await service.start()
            except BaseException as exc:
                boot_error.append(exc)
                raise
            finally:
                started.set()

        try:
            loop.run_until_complete(boot())
        except BaseException:
            loop.close()
            return
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=main, name="cgpa-service", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("service failed to start within timeout")
    if boot_error:
        raise RuntimeError(f"service failed to start: {boot_error[0]}")
    return ServiceHandle(service, loop_box[0], thread)
