"""Blocking HTTP client for the CGPA service (stdlib ``http.client``).

The client the harness smoke-test and the load benchmark drive: submit
a job, poll its record, fetch the artifact — or do all three with
:meth:`ServiceClient.run`.  One client holds one keep-alive connection
(and transparently reconnects if the server closed an idle one), so a
load generator uses one client per thread.

Failures are typed: any non-2xx answer raises :class:`ServiceError`
carrying the HTTP status and decoded payload, with :class:`RateLimited`
(429, with ``retry_after``) and :class:`JobFailed` (a job that executed
and failed) split out so callers can back off or report precisely.
"""

from __future__ import annotations

import http.client
import json
import time

from ..errors import CgpaError
from .contracts import JobRequest


class ServiceError(CgpaError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: dict):
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(message or f"HTTP {status}")
        self.status = status
        self.payload = payload


class RateLimited(ServiceError):
    """HTTP 429; ``retry_after`` says when a token will be available."""

    def __init__(self, status: int, payload: dict, retry_after: float):
        super().__init__(status, payload)
        self.retry_after = retry_after


class JobFailed(ServiceError):
    """The job ran and failed (compile error, deadlock, executor bug)."""


class ServiceClient:
    """One keep-alive connection to one CGPA service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8337,
        client_id: str | None = None,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- transport ---------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        for attempt in (1, 2):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # The server may have reaped an idle keep-alive connection;
                # one reconnect covers that, a second failure is real.
                self.close()
                if attempt == 2:
                    raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": f"non-JSON response: {raw[:200]!r}"}
        if response.status == 429:
            retry_after = float(
                response.headers.get("Retry-After")
                or decoded.get("retry_after", 1.0)
            )
            raise RateLimited(response.status, decoded, retry_after)
        if response.status >= 400:
            raise ServiceError(response.status, decoded)
        return decoded

    # -- endpoints ---------------------------------------------------------

    def health(self) -> bool:
        return bool(self._request("GET", "/v1/healthz").get("ok"))

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, request: JobRequest | dict) -> dict:
        """POST one job; returns its record dict (job_id, key, status...)."""
        if isinstance(request, JobRequest):
            request = request.to_dict()
        return self._request("POST", "/v1/jobs", body=request)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished artifact; raises ServiceError 409 until done."""
        try:
            return self._request("GET", f"/v1/jobs/{job_id}/result")
        except RateLimited:
            raise
        except ServiceError as exc:
            if exc.status == 500:
                raise JobFailed(exc.status, exc.payload) from None
            raise

    def artifact(self, key: str) -> dict | None:
        try:
            return self._request("GET", f"/v1/artifacts/{key}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    # -- conveniences ------------------------------------------------------

    def wait(
        self, job_id: str, timeout: float = 600.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job leaves the queue; returns its final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, {"error": f"job {job_id} still {record['status']} "
                                   f"after {timeout}s"}
                )
            time.sleep(poll_s)

    def run(
        self,
        request: JobRequest | dict,
        timeout: float = 600.0,
        poll_s: float = 0.05,
    ) -> dict:
        """Submit, wait, fetch: the whole round trip, returning the artifact."""
        record = self.submit(request)
        if record["status"] not in ("done", "failed"):
            record = self.wait(record["job_id"], timeout, poll_s)
        if record["status"] == "failed":
            raise JobFailed(500, {"error": record.get("error") or "job failed"})
        return self.result(record["job_id"])
