"""Blocking HTTP client for the CGPA service (stdlib ``http.client``).

The client the harness smoke-test and the load benchmark drive: submit
a job, poll its record, fetch the artifact — or do all three with
:meth:`ServiceClient.run`.  One client holds one keep-alive connection
(and transparently reconnects if the server closed an idle one), so a
load generator uses one client per thread.

Failures are typed: any non-2xx answer raises :class:`ServiceError`
carrying the HTTP status and decoded payload, with :class:`RateLimited`
(429, with ``retry_after``) and :class:`JobFailed` (a job that executed
and failed) split out so callers can back off or report precisely.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import time

from ..errors import CgpaError
from .contracts import JobRequest

#: Statuses a polled job can never leave.
_TERMINAL = ("done", "failed", "cancelled", "timeout")

#: A server-suggested Retry-After is honored only up to this many
#: seconds per retry — a misconfigured server must not park the client.
RETRY_AFTER_CAP_S = 5.0


class ServiceError(CgpaError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: dict):
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(message or f"HTTP {status}")
        self.status = status
        self.payload = payload


class RateLimited(ServiceError):
    """HTTP 429; ``retry_after`` says when a token will be available."""

    def __init__(self, status: int, payload: dict, retry_after: float):
        super().__init__(status, payload)
        self.retry_after = retry_after


class JobFailed(ServiceError):
    """The job ran and failed (compile error, deadlock, executor bug)."""


class JobCancelled(ServiceError):
    """The job was cancelled (by this client or another) before it ran."""


class ServiceClient:
    """One keep-alive connection to one CGPA service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8337,
        client_id: str | None = None,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- transport ---------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        for attempt in (1, 2):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                # The server may have reaped an idle keep-alive connection;
                # one reconnect covers that, a second failure is real.
                self.close()
                if attempt == 2:
                    raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": f"non-JSON response: {raw[:200]!r}"}
        if response.status == 429:
            retry_after = float(
                response.headers.get("Retry-After")
                or decoded.get("retry_after", 1.0)
            )
            raise RateLimited(response.status, decoded, retry_after)
        if response.status >= 400:
            raise ServiceError(response.status, decoded)
        return decoded

    # -- endpoints ---------------------------------------------------------

    def health(self) -> bool:
        return bool(self._request("GET", "/v1/healthz").get("ok"))

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, request: JobRequest | dict) -> dict:
        """POST one job; returns its record dict (job_id, key, status...)."""
        if isinstance(request, JobRequest):
            request = request.to_dict()
        return self._request("POST", "/v1/jobs", body=request)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """DELETE the job; returns its (terminal or soon-terminal) record."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished artifact; raises ServiceError 409 until done."""
        try:
            return self._request("GET", f"/v1/jobs/{job_id}/result")
        except RateLimited:
            raise
        except ServiceError as exc:
            if exc.status == 500:
                raise JobFailed(exc.status, exc.payload) from None
            raise

    def artifact(self, key: str) -> dict | None:
        try:
            return self._request("GET", f"/v1/artifacts/{key}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    # -- conveniences ------------------------------------------------------

    def _retry_delay(self, retry_after: float, attempt: int) -> float:
        """Capped server hint plus deterministic per-client jitter.

        The jitter fraction is a pure function of ``(client_id,
        attempt)``, so a retrying client's timing is reproducible while
        distinct clients still de-synchronise instead of stampeding the
        bucket on the same tick.
        """
        digest = hashlib.sha256(
            f"{self.client_id or 'anon'}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        base = min(max(retry_after, 0.0), RETRY_AFTER_CAP_S)
        return base * (1.0 + 0.25 * fraction)

    def _with_retries(self, call, retries: int):
        """Run ``call``, honoring up to ``retries`` RateLimited answers."""
        attempt = 0
        while True:
            try:
                return call()
            except RateLimited as exc:
                attempt += 1
                if attempt > retries:
                    raise
                time.sleep(self._retry_delay(exc.retry_after, attempt))

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.05,
        retries: int = 0,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its record.

        ``retries`` bounds how many 429 answers are absorbed (sleeping
        out each ``Retry-After``) before :class:`RateLimited` propagates;
        the default 0 keeps the historical raise-on-first-429 behavior.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self._with_retries(lambda: self.job(job_id), retries)
            if record["status"] in _TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    408, {"error": f"job {job_id} still {record['status']} "
                                   f"after {timeout}s"}
                )
            time.sleep(poll_s)

    def run(
        self,
        request: JobRequest | dict,
        timeout: float = 600.0,
        poll_s: float = 0.05,
        retries: int = 0,
    ) -> dict:
        """Submit, wait, fetch: the whole round trip, returning the artifact.

        Terminal failures are typed: ``cancelled`` raises
        :class:`JobCancelled`, ``failed``/``timeout`` raise
        :class:`JobFailed`.  ``retries`` lets submission and polling ride
        out up to that many 429s (default 0: first 429 raises, as before).
        """
        record = self._with_retries(lambda: self.submit(request), retries)
        if record["status"] not in _TERMINAL:
            record = self.wait(record["job_id"], timeout, poll_s, retries)
        if record["status"] == "cancelled":
            raise JobCancelled(
                409, {"error": record.get("error") or "job cancelled"}
            )
        if record["status"] in ("failed", "timeout"):
            raise JobFailed(500, {"error": record.get("error") or "job failed"})
        return self.result(record["job_id"])
