"""Job executors: turn a validated :class:`JobRequest` into an artifact.

One pure function per job kind, dispatched by :func:`execute`.  Every
executor returns a plain JSON-serialisable dict with no wall-clock, pid,
or host state in it, so an artifact computed by a service worker thread
is byte-identical to one computed by the corresponding direct CLI run —
the property the load benchmark verifies and the content-addressed store
depends on (same key ⇒ same bytes, whoever computed them).

Executors reuse the DSE layer rather than reimplementing it:
``simulate`` scores a single :class:`~repro.dse.space.DesignPoint`
through :class:`~repro.dse.evaluate.Evaluator` (sharing the evaluator's
compile memo across jobs via a per-thread registry), and both
``simulate`` and ``dse`` read/write design-point evaluations through the
same :class:`~repro.service.store.ArtifactStore` the service persists
its artifacts in — one directory, one keying discipline, shared between
the service, the CLI sweeps, and any concurrent pool workers.
"""

from __future__ import annotations

import threading

from ..dse import (
    ConfigSpace,
    DesignPoint,
    Evaluator,
    GridStrategy,
    HillClimbStrategy,
    RandomStrategy,
)
from ..dse.cache import result_key
from ..dse.explore import Explorer
from ..frontend import compile_c
from ..harness.runner import cgpa_area
from ..kernels import KernelSpec
from ..pipeline import cgpa_compile
from ..pipeline.spec import ReplicationPolicy
from ..transforms import optimize_module
from .contracts import ContractError, JobRequest
from .store import ArtifactStore

#: Per-thread evaluator registry size; evaluators hold compiled-pipeline
#: memos, so a handful per worker thread covers a mixed workload.
_EVALUATOR_MEMO_ENTRIES = 8

_tls = threading.local()


def _evaluator(spec: KernelSpec, max_cycles: int, engine: str) -> Evaluator:
    """A per-thread memoized Evaluator (compiled pipelines are reused
    across jobs that hit the same thread, never shared across threads —
    simulation mutates per-system state, so cross-thread sharing would
    race)."""
    memo = getattr(_tls, "evaluators", None)
    if memo is None:
        memo = _tls.evaluators = {}
    key = (spec.name, hash(spec.source), max_cycles, engine)
    evaluator = memo.get(key)
    if evaluator is None:
        if len(memo) >= _EVALUATOR_MEMO_ENTRIES:
            memo.clear()
        evaluator = memo[key] = Evaluator(
            spec, max_cycles=max_cycles, engine=engine
        )
    return evaluator


# --------------------------------------------------------------------------
# Executors (one per kind)
# --------------------------------------------------------------------------


def _run_compile(request: JobRequest, store: ArtifactStore | None) -> dict:
    spec = request.spec()
    opts = request.options
    module = compile_c(spec.source, spec.name)
    optimize_module(module)
    compiled = cgpa_compile(
        module,
        spec.accel_function,
        shapes=spec.shapes_for(module),
        policy=ReplicationPolicy(opts["policy"]),
        n_workers=opts["n_workers"],
        fifo_depth=opts["fifo_depth"],
    )
    area = cgpa_area(compiled)
    return {
        "kind": "compile",
        "kernel": spec.name,
        "policy": opts["policy"],
        "n_workers": opts["n_workers"],
        "fifo_depth": opts["fifo_depth"],
        "signature": compiled.signature,
        "full_signature": compiled.full_signature,
        "n_channels": len(compiled.result.channels),
        "total_aluts": area.total_aluts,
        "worker_aluts": dict(sorted(area.worker_aluts.items())),
        "fifo_aluts": area.fifo_aluts,
        "arbiter_aluts": area.arbiter_aluts,
        "bram_bits": area.bram_bits,
    }


def _run_simulate(request: JobRequest, store: ArtifactStore | None) -> dict:
    spec = request.spec()
    opts = request.options
    point = DesignPoint(
        policy=opts["policy"],
        n_workers=opts["n_workers"],
        fifo_depth=opts["fifo_depth"],
        private_caches=opts["private_caches"],
        cache_lines=opts["cache_lines"],
        cache_ports=opts["cache_ports"],
    )
    eval_key = result_key(spec, point, opts["max_cycles"], opts["engine"])
    stored = store.get(eval_key) if store is not None else None
    if stored is not None:
        result = stored
    else:
        evaluator = _evaluator(spec, opts["max_cycles"], opts["engine"])
        result = evaluator.evaluate(point).to_dict()
        if store is not None:
            store.put(eval_key, result)
    return {
        "kind": "simulate",
        "kernel": spec.name,
        "engine": opts["engine"],
        "max_cycles": opts["max_cycles"],
        "eval_key": eval_key,
        **result,
    }


def _run_dse(request: JobRequest, store: ArtifactStore | None) -> dict:
    spec = request.spec()
    opts = request.options
    space = ConfigSpace(
        policies=opts["policies"],
        n_workers=opts["n_workers"],
        fifo_depths=opts["fifo_depths"],
        private_caches=opts["private_caches"],
        cache_lines=opts["cache_lines"],
        cache_ports=opts["cache_ports"],
    )
    strategy = {
        "grid": lambda: GridStrategy(),
        "random": lambda: RandomStrategy(opts["samples"], seed=opts["seed"]),
        "hillclimb": lambda: HillClimbStrategy(
            objective=opts["objective"], max_evals=opts["max_evals"]
        ),
    }[opts["strategy"]]()
    # The store doubles as the design-point result cache (same key/layout
    # family as the historical ResultCache), so sweeps submitted by many
    # clients — and single-point simulate jobs — share evaluations.
    explorer = Explorer(
        spec,
        space,
        cache=store,
        processes=1,  # concurrency comes from the service worker pool
        max_cycles=opts["max_cycles"],
        engine=opts["engine"],
    )
    sweep = explorer.run(strategy)
    return {"kind": "dse", **sweep.to_json_dict()}


def _run_faults(request: JobRequest, store: ArtifactStore | None) -> dict:
    from ..faults.sweep import resilience_sweep

    spec = request.spec()
    opts = request.options
    report = resilience_sweep(
        spec,
        n_plans=opts["plans"],
        seed=opts["seed"],
        engine=opts["engine"],
        n_workers=opts["n_workers"],
        fifo_depth=opts["fifo_depth"],
        max_cycles=opts["max_cycles"],
    )
    return {"kind": "faults", **report.to_dict()}


def _run_rtl(request: JobRequest, store: ArtifactStore | None) -> dict:
    from ..vsim.cosim import run_rtl_cosim

    spec = request.spec()
    opts = request.options
    report = run_rtl_cosim(
        spec,
        policy=opts["policy"],
        n_workers=opts["n_workers"],
        fifo_depth=opts["fifo_depth"],
        setup_args=opts["setup_args"],
        max_cycles=opts["max_cycles"],
    )
    return {"kind": "rtl", **report.to_dict()}


_EXECUTORS = {
    "compile": _run_compile,
    "simulate": _run_simulate,
    "dse": _run_dse,
    "faults": _run_faults,
    "rtl": _run_rtl,
}


def execute(request: JobRequest, store: ArtifactStore | None = None) -> dict:
    """Run one job to completion and return its artifact dict.

    ``store``, when given, is consulted and populated for *inner*
    results (design-point evaluations shared between simulate and dse
    jobs); the caller persists the returned artifact under
    ``request.key`` itself.  Deterministic: no timestamps, pids, or
    ordering artifacts — equal requests produce equal bytes.
    """
    runner = _EXECUTORS.get(request.kind)
    if runner is None:
        raise ContractError(f"unknown job kind {request.kind!r}")
    return runner(request, store)


#: Per-process artifact stores for fleet-pool execution, keyed by root.
#: Store instances hold only an LRU and counters; the disk layout and
#: its atomic-write discipline are shared with every other process.
_PROCESS_STORES: dict = {}


def execute_in_process(store_root: str, request: JobRequest) -> dict:
    """Fleet-pool entry point: :func:`execute` against a per-process store.

    Module-level and picklable (bind ``store_root`` with
    ``functools.partial``), so the service job queue can dispatch jobs to
    :class:`~repro.fleet.FleetExecutor` pool processes.  Each process
    rebuilds one :class:`ArtifactStore` per root and keeps it — its warm
    LRU, the per-process evaluator/harness memos, and the interned
    workload images all amortize across the jobs that land on it.
    """
    store = _PROCESS_STORES.get(store_root)
    if store is None:
        store = _PROCESS_STORES[store_root] = ArtifactStore(store_root)
    return execute(request, store=store)
