"""CGPA-as-a-service: async compile/simulate/explore server + artifact store.

The long-lived front end over the whole toolchain: submit a kernel
(named, or with overridden C source) plus a typed config to an asyncio
HTTP server and poll a job id; a worker pool drains the queue and every
result lands in a content-addressed :class:`ArtifactStore` shared with
the CLI subcommands and the DSE result cache.  Identical in-flight
requests coalesce onto one job, repeated requests are answered straight
from the store, and a per-client token bucket keeps any one caller from
starving the rest.

Entry points::

    python -m repro.harness serve --port 8337          # the server
    from repro.service import ServiceClient, JobRequest
    art = ServiceClient(port=8337).run(
        JobRequest.make("simulate", "ks", {"n_workers": 4}))

Module map: :mod:`.store` (content-addressed artifacts + warm LRU +
locked atomic writes), :mod:`.contracts` (typed requests and content
keys), :mod:`.jobs` (per-kind executors), :mod:`.queue` (worker pool +
coalescing), :mod:`.ratelimit` (token buckets), :mod:`.app` (the HTTP
server), :mod:`.client` (blocking client).
"""

from .contracts import CONTRACT_VERSION, JOB_KINDS, ContractError, JobRequest
from .store import (
    ArtifactCorrupt, ArtifactStore, StoreStats, content_key, publish,
)
from .client import (
    JobCancelled, JobFailed, RateLimited, ServiceClient, ServiceError,
)

__all__ = [
    "JOB_KINDS", "CONTRACT_VERSION", "JobRequest", "ContractError",
    "ArtifactStore", "ArtifactCorrupt", "StoreStats", "content_key",
    "publish", "ServiceClient", "ServiceError", "RateLimited", "JobFailed",
    "JobCancelled",
]
