"""Async job queue: submissions in, artifacts out, nothing done twice.

The queue owns the service's execution pipeline:

* **store short-circuit** — a submission whose artifact already exists
  completes instantly (``cached=True``), which is what makes a repeated
  workload a pure cache exercise;
* **coalescing** — identical in-flight keys collapse onto one
  :class:`JobRecord`; the second client polls the same job id and the
  work runs exactly once;
* **worker pool** — N asyncio worker tasks drain a FIFO queue, running
  the (CPU-bound, blocking) executor on a thread pool — or, when a
  :class:`~repro.fleet.FleetExecutor` is attached, on its process pool
  (sidestepping the GIL for simulation-bound workloads) — so the HTTP
  event loop stays responsive while simulations grind;
* **fault tolerance** — each job may carry a wall-clock ``deadline_s``
  (per request, or a queue-wide default) after which it lands in the
  ``timeout`` terminal state; a crashed pool worker
  (``BrokenProcessPool``) respawns the fleet pool and re-runs the job up
  to ``job_retries`` times before failing it; :meth:`cancel` moves a
  queued or running job to the ``cancelled`` terminal state; and
  :meth:`close` *drains* by default — in-flight jobs get
  ``drain_timeout`` seconds to land their artifacts in the store before
  anything is hard-cancelled.

All bookkeeping (records, in-flight map, stats) is touched only from
the event loop thread, so there are no locks here; the executor runs on
pool threads/processes but communicates only through its return value.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
from concurrent.futures import Executor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from ..errors import CgpaError
from ..fleet import FleetExecutor
from . import jobs
from .contracts import JobRequest
from .store import ArtifactStore

#: JobRecord.status values, in lifecycle order.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled", "timeout")

#: Statuses a record can never leave (its ``done`` event is set).
TERMINAL_STATUSES = ("done", "failed", "cancelled", "timeout")


@dataclass
class QueueStats:
    """Submission-side counters (monotonic, per queue instance)."""

    submitted: int = 0
    cached: int = 0  # answered straight from the artifact store
    coalesced: int = 0  # attached to an identical in-flight job
    executed: int = 0
    failed: int = 0
    cancelled: int = 0
    timeouts: int = 0  # jobs that blew their wall-clock deadline
    crashes: int = 0  # BrokenProcessPool observed under a job
    crash_retries: int = 0  # re-runs scheduled after a crash

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "crash_retries": self.crash_retries,
        }


@dataclass
class JobRecord:
    """One tracked unit of work (shared by every coalesced submitter)."""

    job_id: str
    request: JobRequest
    key: str
    status: str = "queued"
    error: str | None = None
    #: True when the submission was answered from the store without
    #: queueing any work.
    cached: bool = False
    #: How many submissions this record absorbed (1 = no coalescing).
    submissions: int = 1
    #: Wall-clock budget for execution (None = unbounded).
    deadline_s: float | None = None
    #: Execution attempts so far (crash retries re-run the same record).
    attempts: int = 0
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    #: Set by :meth:`JobQueue.cancel` while the job is running.
    cancel: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.request.kind,
            "kernel": self.request.kernel,
            "key": self.key,
            "status": self.status,
            "cached": self.cached,
            "submissions": self.submissions,
            "attempts": self.attempts,
            "error": self.error,
        }


class JobQueue:
    """Bounded worker pool over an asyncio FIFO with key coalescing."""

    def __init__(
        self,
        store: ArtifactStore,
        workers: int = 2,
        run: Callable[[JobRequest], dict] | None = None,
        max_records: int = 10_000,
        fleet: FleetExecutor | None = None,
        envelopes=None,
        deadline_s: float | None = None,
        job_retries: int = 1,
        drain_timeout: float = 5.0,
    ) -> None:
        """``envelopes`` is an optional
        :class:`~repro.obs.emit.EnvelopeWriter`: when set, every job that
        actually executes (cache short-circuits and coalesced attachments
        run no work, so they journal nothing) persists a ``service-job``
        run envelope referencing its artifact key.  Emission happens on
        the event-loop thread, after the artifact is stored."""
        self.store = store
        self.envelopes = envelopes
        self.workers = max(1, workers)
        #: A non-serial fleet moves the default executor onto its process
        #: pool.  A custom ``run`` pins execution to the thread pool (it
        #: may close over unpicklable state — tests do).
        self.fleet = fleet
        self._custom_run = run
        self._run = run if run is not None else (
            lambda request: jobs.execute(request, store=store)
        )
        self.max_records = max_records
        #: Default wall-clock budget for jobs that don't carry their own.
        self.deadline_s = deadline_s
        #: Crash (BrokenProcessPool) re-runs allowed per job.
        self.job_retries = max(0, job_retries)
        #: Seconds :meth:`close` lets in-flight jobs finish before
        #: cancelling them.
        self.drain_timeout = drain_timeout
        #: True once :meth:`close` begins: the HTTP layer answers 503.
        self.draining = False
        self._degraded = False
        self.stats = QueueStats()
        self._records: dict[str, JobRecord] = {}
        self._inflight: dict[str, JobRecord] = {}  # key -> queued/running
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue[JobRecord] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._pool: Executor | None = None
        self._owns_pool = True

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if (
            self._custom_run is None
            and self.fleet is not None
            and not self.fleet.serial
        ):
            # Jobs run in fleet pool processes; each process keeps its
            # own artifact store, evaluator memos and interned workload
            # images across the jobs that land on it.
            self._pool = self.fleet.futures_pool
            self._owns_pool = False
            self._run = functools.partial(
                jobs.execute_in_process, str(self.store.root)
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="cgpa-job"
            )
            self._owns_pool = True
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"job-worker-{i}")
            for i in range(self.workers)
        ]

    async def close(self, drain_timeout: float | None = None) -> None:
        """Drain, then stop: in-flight jobs get ``drain_timeout`` seconds
        (default: the queue's ``drain_timeout``) to land their artifacts
        in the store before the worker tasks are cancelled."""
        timeout = self.drain_timeout if drain_timeout is None else drain_timeout
        self.draining = True
        if self._tasks and self._inflight and timeout and timeout > 0:
            try:
                await asyncio.wait_for(self._queue.join(), timeout)
            except asyncio.TimeoutError:
                pass  # drain budget spent; hard-cancel what's left
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._pool is not None:
            # The fleet owns its pool; only shut down one we created.
            if self._owns_pool:
                self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    @property
    def depth(self) -> int:
        """Jobs waiting or running right now."""
        return len(self._inflight)

    @property
    def degraded(self) -> bool:
        """True when the last execution crashed a worker, or a worker
        task has died: the service still answers but recent history says
        jobs are at risk (surfaced via ``/v1/healthz``)."""
        return self._degraded or any(task.done() for task in self._tasks)

    # -- submission --------------------------------------------------------

    def submit(self, request: JobRequest) -> JobRecord:
        """Register ``request``; returns its (possibly shared) record.

        Resolution order: completed artifact in the store → instant
        ``done`` record; identical key already queued/running → the
        existing record (coalesced); otherwise a fresh record enters the
        queue.
        """
        self.stats.submitted += 1
        key = request.key
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.stats.coalesced += 1
            inflight.submissions += 1
            return inflight
        if self.store.get(key) is not None:
            self.stats.cached += 1
            record = self._new_record(request, key)
            record.status = "done"
            record.cached = True
            record.done.set()
            return record
        record = self._new_record(request, key)
        record.deadline_s = (
            request.deadline_s if request.deadline_s is not None
            else self.deadline_s
        )
        self._inflight[key] = record
        self._queue.put_nowait(record)
        return record

    def get(self, job_id: str) -> JobRecord | None:
        return self._records.get(job_id)

    def cancel(self, job_id: str) -> JobRecord | None:
        """Cancel a job; returns its record (None if the id is unknown).

        A queued job lands in ``cancelled`` immediately; a running job is
        flagged and its worker abandons it at the next await point (the
        blocking executor call itself cannot be interrupted, but its
        result is discarded).  Cancelling a terminal record is an
        idempotent no-op.
        """
        record = self._records.get(job_id)
        if record is None:
            return None
        if record.done.is_set():
            return record
        if record.status == "queued":
            record.status = "cancelled"
            record.error = "cancelled by client"
            self.stats.cancelled += 1
            self._inflight.pop(record.key, None)
            record.done.set()
        else:
            record.cancel.set()
        return record

    def result(self, record: JobRecord) -> dict | None:
        """The finished artifact (None unless ``status == "done"``)."""
        if record.status != "done":
            return None
        return self.store.get(record.key)

    async def wait(self, record: JobRecord, timeout: float | None = None) -> bool:
        """Block until the record finishes; False on timeout."""
        try:
            await asyncio.wait_for(record.done.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- internals ---------------------------------------------------------

    def _new_record(self, request: JobRequest, key: str) -> JobRecord:
        record = JobRecord(
            job_id=f"job-{next(self._ids):08d}", request=request, key=key
        )
        self._records[record.job_id] = record
        # Cap the registry: forget the oldest *finished* records first so
        # a long-lived server doesn't grow without bound.
        if len(self._records) > self.max_records:
            for job_id, old in list(self._records.items()):
                if old.done.is_set() and len(self._records) > self.max_records:
                    del self._records[job_id]
        return record

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            record = await self._queue.get()
            try:
                if record.done.is_set():
                    continue  # cancelled while still queued
                record.status = "running"
                await self._execute(loop, record)
            except asyncio.CancelledError:
                record.status = "failed"
                record.error = "service shutting down"
                raise
            finally:
                if not record.done.is_set():
                    record.done.set()
                self._inflight.pop(record.key, None)
                self._queue.task_done()

    async def _execute(self, loop, record: JobRecord) -> None:
        """Run one record to a terminal state (with crash retries)."""
        while True:
            record.attempts += 1
            exec_future = loop.run_in_executor(
                self._pool, self._run, record.request
            )
            cancel_task = asyncio.ensure_future(record.cancel.wait())
            try:
                done, _ = await asyncio.wait(
                    {exec_future, cancel_task},
                    timeout=record.deadline_s,
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                cancel_task.cancel()
            if exec_future not in done:
                # Cancelled or past deadline.  The blocking call cannot
                # be interrupted mid-flight; discard its (eventual)
                # result and silence its exception, and move the record
                # to its terminal state now.
                exec_future.cancel()
                exec_future.add_done_callback(
                    lambda f: f.cancelled() or f.exception()
                )
                if record.cancel.is_set():
                    record.status = "cancelled"
                    record.error = "cancelled by client"
                    self.stats.cancelled += 1
                else:
                    record.status = "timeout"
                    record.error = (
                        f"exceeded {record.deadline_s:g}s deadline"
                    )
                    self.stats.timeouts += 1
                return
            try:
                artifact = exec_future.result()
            except BrokenProcessPool as exc:
                self.stats.crashes += 1
                self._degraded = True
                if self.fleet is not None and not self._owns_pool:
                    # Fleet-owned pool: replace it so retries (and every
                    # other queued job) land on live workers.
                    self._pool = self.fleet.respawn()
                if record.attempts <= self.job_retries:
                    self.stats.crash_retries += 1
                    continue
                record.status = "failed"
                detail = str(exc).splitlines()[0] if str(exc) else (
                    type(exc).__name__
                )
                record.error = (
                    f"worker process crashed on all {record.attempts} "
                    f"attempt(s): {detail}"
                )
                self.stats.failed += 1
                return
            except CgpaError as exc:
                record.status = "failed"
                record.error = str(exc).splitlines()[0]
                self.stats.failed += 1
                return
            except Exception as exc:  # executor bug: fail the job only
                record.status = "failed"
                record.error = f"internal: {type(exc).__name__}: {exc}"
                self.stats.failed += 1
                return
            self.store.put(record.key, artifact)
            record.status = "done"
            self.stats.executed += 1
            self._degraded = False
            if self.envelopes is not None:
                from ..obs.emit import job_envelope

                self.envelopes.write(job_envelope(record.to_dict(), artifact))
            return
