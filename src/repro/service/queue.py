"""Async job queue: submissions in, artifacts out, nothing done twice.

The queue owns the service's execution pipeline:

* **store short-circuit** — a submission whose artifact already exists
  completes instantly (``cached=True``), which is what makes a repeated
  workload a pure cache exercise;
* **coalescing** — identical in-flight keys collapse onto one
  :class:`JobRecord`; the second client polls the same job id and the
  work runs exactly once;
* **worker pool** — N asyncio worker tasks drain a FIFO queue, running
  the (CPU-bound, blocking) executor on a thread pool — or, when a
  :class:`~repro.fleet.FleetExecutor` is attached, on its process pool
  (sidestepping the GIL for simulation-bound workloads) — so the HTTP
  event loop stays responsive while simulations grind.

All bookkeeping (records, in-flight map, stats) is touched only from
the event loop thread, so there are no locks here; the executor runs on
pool threads/processes but communicates only through its return value.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from ..errors import CgpaError
from ..fleet import FleetExecutor
from . import jobs
from .contracts import JobRequest
from .store import ArtifactStore

#: JobRecord.status values, in lifecycle order.
JOB_STATUSES = ("queued", "running", "done", "failed")


@dataclass
class QueueStats:
    """Submission-side counters (monotonic, per queue instance)."""

    submitted: int = 0
    cached: int = 0  # answered straight from the artifact store
    coalesced: int = 0  # attached to an identical in-flight job
    executed: int = 0
    failed: int = 0

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "failed": self.failed,
        }


@dataclass
class JobRecord:
    """One tracked unit of work (shared by every coalesced submitter)."""

    job_id: str
    request: JobRequest
    key: str
    status: str = "queued"
    error: str | None = None
    #: True when the submission was answered from the store without
    #: queueing any work.
    cached: bool = False
    #: How many submissions this record absorbed (1 = no coalescing).
    submissions: int = 1
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.request.kind,
            "kernel": self.request.kernel,
            "key": self.key,
            "status": self.status,
            "cached": self.cached,
            "submissions": self.submissions,
            "error": self.error,
        }


class JobQueue:
    """Bounded worker pool over an asyncio FIFO with key coalescing."""

    def __init__(
        self,
        store: ArtifactStore,
        workers: int = 2,
        run: Callable[[JobRequest], dict] | None = None,
        max_records: int = 10_000,
        fleet: FleetExecutor | None = None,
        envelopes=None,
    ) -> None:
        """``envelopes`` is an optional
        :class:`~repro.obs.emit.EnvelopeWriter`: when set, every job that
        actually executes (cache short-circuits and coalesced attachments
        run no work, so they journal nothing) persists a ``service-job``
        run envelope referencing its artifact key.  Emission happens on
        the event-loop thread, after the artifact is stored."""
        self.store = store
        self.envelopes = envelopes
        self.workers = max(1, workers)
        #: A non-serial fleet moves the default executor onto its process
        #: pool.  A custom ``run`` pins execution to the thread pool (it
        #: may close over unpicklable state — tests do).
        self.fleet = fleet
        self._custom_run = run
        self._run = run if run is not None else (
            lambda request: jobs.execute(request, store=store)
        )
        self.max_records = max_records
        self.stats = QueueStats()
        self._records: dict[str, JobRecord] = {}
        self._inflight: dict[str, JobRecord] = {}  # key -> queued/running
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue[JobRecord] = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._pool: Executor | None = None
        self._owns_pool = True

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if (
            self._custom_run is None
            and self.fleet is not None
            and not self.fleet.serial
        ):
            # Jobs run in fleet pool processes; each process keeps its
            # own artifact store, evaluator memos and interned workload
            # images across the jobs that land on it.
            self._pool = self.fleet.futures_pool
            self._owns_pool = False
            self._run = functools.partial(
                jobs.execute_in_process, str(self.store.root)
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="cgpa-job"
            )
            self._owns_pool = True
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"job-worker-{i}")
            for i in range(self.workers)
        ]

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._pool is not None:
            # The fleet owns its pool; only shut down one we created.
            if self._owns_pool:
                self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    @property
    def depth(self) -> int:
        """Jobs waiting or running right now."""
        return len(self._inflight)

    # -- submission --------------------------------------------------------

    def submit(self, request: JobRequest) -> JobRecord:
        """Register ``request``; returns its (possibly shared) record.

        Resolution order: completed artifact in the store → instant
        ``done`` record; identical key already queued/running → the
        existing record (coalesced); otherwise a fresh record enters the
        queue.
        """
        self.stats.submitted += 1
        key = request.key
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.stats.coalesced += 1
            inflight.submissions += 1
            return inflight
        if self.store.get(key) is not None:
            self.stats.cached += 1
            record = self._new_record(request, key)
            record.status = "done"
            record.cached = True
            record.done.set()
            return record
        record = self._new_record(request, key)
        self._inflight[key] = record
        self._queue.put_nowait(record)
        return record

    def get(self, job_id: str) -> JobRecord | None:
        return self._records.get(job_id)

    def result(self, record: JobRecord) -> dict | None:
        """The finished artifact (None unless ``status == "done"``)."""
        if record.status != "done":
            return None
        return self.store.get(record.key)

    async def wait(self, record: JobRecord, timeout: float | None = None) -> bool:
        """Block until the record finishes; False on timeout."""
        try:
            await asyncio.wait_for(record.done.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- internals ---------------------------------------------------------

    def _new_record(self, request: JobRequest, key: str) -> JobRecord:
        record = JobRecord(
            job_id=f"job-{next(self._ids):08d}", request=request, key=key
        )
        self._records[record.job_id] = record
        # Cap the registry: forget the oldest *finished* records first so
        # a long-lived server doesn't grow without bound.
        if len(self._records) > self.max_records:
            for job_id, old in list(self._records.items()):
                if old.done.is_set() and len(self._records) > self.max_records:
                    del self._records[job_id]
        return record

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            record = await self._queue.get()
            record.status = "running"
            try:
                artifact = await loop.run_in_executor(
                    self._pool, self._run, record.request
                )
                self.store.put(record.key, artifact)
                record.status = "done"
                self.stats.executed += 1
                if self.envelopes is not None:
                    from ..obs.emit import job_envelope

                    self.envelopes.write(
                        job_envelope(record.to_dict(), artifact)
                    )
            except asyncio.CancelledError:
                record.status = "failed"
                record.error = "service shutting down"
                record.done.set()
                self._inflight.pop(record.key, None)
                raise
            except CgpaError as exc:
                record.status = "failed"
                record.error = str(exc).splitlines()[0]
                self.stats.failed += 1
            except Exception as exc:  # executor bug: fail the job, not the server
                record.status = "failed"
                record.error = f"internal: {type(exc).__name__}: {exc}"
                self.stats.failed += 1
            finally:
                if not record.done.is_set():
                    record.done.set()
                self._inflight.pop(record.key, None)
                self._queue.task_done()
