"""Content-addressed artifact store: the service's single source of truth.

Every result the toolchain produces — compiled-pipeline summaries,
simulation ``EvalResult`` dicts, DSE sweeps, fault reports, RTL co-sim
verdicts, chrome traces — lands here as one JSON file addressed by the
sha256 of everything that determines it (kernel source, full config,
cost-model version; see :mod:`repro.service.contracts`).  Entries are
immutable: a key is never *invalidated*, it simply stops being addressed
when any input changes.

Layout is ``<root>/<key[:2]>/<key>.json``, the exact sharding the DSE
:class:`~repro.dse.cache.ResultCache` introduced, so design-point
evaluations and service artifacts share one directory and one locking
discipline.  ``ResultCache`` is now a compatibility shim over this class.

Four layers sit above the files:

* a **warm in-process LRU** (``lru_entries`` decoded dicts) so repeated
  fetches of hot artifacts never touch the filesystem;
* **locked atomic writes** — the journal file is staged under an
  ``os.O_EXCL`` temp name and published with :func:`os.replace`, so
  concurrent pool workers, service worker threads, and interrupted
  sweeps can never interleave or expose partial JSON;
* **read-side integrity** — every ``put`` also writes a
  ``<key>.json.sha256`` sidecar; ``get`` re-hashes the payload against
  it, and a mismatch (bit rot, an outside writer, chaos injection)
  quarantines the bad file under ``<root>/quarantine/`` and reads as a
  miss, so the job simply re-executes.  ``get(key, strict=True)``
  raises the typed :class:`ArtifactCorrupt` instead.  Sidecar-less
  files (legacy stores, hand-dropped artifacts) are accepted as-is;
* **stats** (warm/cold hits, misses, writes, conflicts, corruptions)
  that the service's ``/v1/stats`` endpoint and the load benchmark
  report.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import CgpaError

#: Default number of decoded artifacts kept in the in-process LRU.
DEFAULT_LRU_ENTRIES = 512


class ArtifactCorrupt(CgpaError):
    """A stored artifact failed its content-hash check (or won't parse).

    Only raised from ``get(key, strict=True)``; the default read path
    quarantines the file and reports a miss instead.
    """

    def __init__(self, message: str, key: str | None = None,
                 quarantined: str | None = None):
        super().__init__(message)
        self.key = key
        self.quarantined = quarantined


def content_key(payload: dict) -> str:
    """sha256 hex digest of a canonical-JSON payload.

    The payload must contain *everything* that determines the artifact
    (source text, full config, schema/cost-model versions); two payloads
    serialise identically iff they are the same request.
    """
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


@dataclass
class StoreStats:
    """Counters for one store instance (process-local, monotonic)."""

    warm_hits: int = 0  # served from the in-process LRU
    cold_hits: int = 0  # served from disk (then promoted to the LRU)
    misses: int = 0
    writes: int = 0
    write_conflicts: int = 0  # O_EXCL lost to a concurrent writer
    corrupt: int = 0  # failed integrity check; quarantined + counted a miss

    @property
    def hits(self) -> int:
        return self.warm_hits + self.cold_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "warm_hits": self.warm_hits,
            "cold_hits": self.cold_hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_conflicts": self.write_conflicts,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }


class ArtifactStore:
    """Sharded directory of ``<key[:2]>/<key>.json`` artifacts + warm LRU.

    Thread-safe: the LRU and stats are guarded by one lock, and disk
    writes are atomic (staged + renamed), so any number of worker threads
    or processes may share one root.  Cross-process readers only ever see
    absent or complete files.
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        lru_entries: int = DEFAULT_LRU_ENTRIES,
    ) -> None:
        self.root = pathlib.Path(root)
        self.lru_entries = max(0, lru_entries)
        self.stats = StoreStats()
        self._lru: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()

    def path(self, key: str) -> pathlib.Path:
        """Where ``key``'s artifact lives (whether or not it exists yet)."""
        return self.root / key[:2] / f"{key}.json"

    def integrity_path(self, key: str) -> pathlib.Path:
        """The artifact's content-hash sidecar (``<key>.json.sha256``)."""
        return self.root / key[:2] / f"{key}.json.sha256"

    # -- reads -------------------------------------------------------------

    def get(self, key: str, strict: bool = False) -> dict | None:
        """The stored artifact, or None on miss/torn write/corruption.

        A payload that fails its sidecar hash check or won't parse is
        quarantined under ``<root>/quarantine/`` and counted as a miss,
        so callers re-execute and re-``put`` cleanly.  With
        ``strict=True`` corruption raises :class:`ArtifactCorrupt`
        instead of reading as a miss (misses still return None).
        """
        with self._lock:
            cached = self._lru.get(key)
            if cached is not None:
                self._lru.move_to_end(key)
                self.stats.warm_hits += 1
                return cached
        try:
            raw = self.path(key).read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except OSError:
            with self._lock:
                self.stats.misses += 1
            return None
        reason = None
        artifact = None
        try:
            expected = self.integrity_path(key).read_text().strip()
        except OSError:
            expected = None  # legacy artifact without a sidecar
        if expected is not None:
            actual = hashlib.sha256(raw).hexdigest()
            if actual != expected:
                reason = f"sha256 mismatch ({actual[:12]} != {expected[:12]})"
        if reason is None:
            try:
                artifact = json.loads(raw.decode())
            except UnicodeDecodeError as exc:
                reason = f"undecodable bytes ({exc})"
            except json.JSONDecodeError as exc:
                reason = f"undecodable JSON ({exc})"
        if reason is not None:
            quarantined = self._quarantine(key)
            with self._lock:
                self.stats.corrupt += 1
                self.stats.misses += 1
            if strict:
                raise ArtifactCorrupt(
                    f"artifact {key[:12]}… failed integrity check: {reason}"
                    + (f"; quarantined to {quarantined}" if quarantined else ""),
                    key=key, quarantined=quarantined,
                )
            return None
        with self._lock:
            self.stats.cold_hits += 1
            self._remember(key, artifact)
        return artifact

    def _quarantine(self, key: str) -> str | None:
        """Move a corrupt artifact (+ sidecar) out of the addressable tree.

        Quarantined files keep a ``.corrupt`` suffix so they never match
        the ``*/*.json`` key glob; returns the new path (or None if a
        concurrent reader already moved it).
        """
        quarantine_dir = self.root / "quarantine"
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination = quarantine_dir / f"{key}.json.corrupt"
        try:
            os.replace(self.path(key), destination)
        except OSError:
            return None
        sidecar = self.integrity_path(key)
        try:
            os.replace(sidecar, quarantine_dir / f"{key}.json.sha256.corrupt")
        except OSError:
            pass
        return str(destination)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._lru:
                return True
        return self.path(key).is_file()

    # -- writes ------------------------------------------------------------

    def put(self, key: str, artifact: dict) -> pathlib.Path:
        """Persist ``artifact`` under ``key``; returns its path.

        The write is staged to a ``.{key}.json.tmp`` sibling opened with
        ``O_CREAT | O_EXCL`` — the lock file — and published with the
        atomic :func:`os.replace`.  Losing the O_EXCL race means another
        writer is persisting the *same content* (keys are content
        addresses), so the loser retries under a unique temp name rather
        than waiting; either rename landing is correct and complete.
        """
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(artifact, sort_keys=True)
        tmp = path.with_name(f".{path.name}.tmp")
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            with self._lock:
                self.stats.write_conflicts += 1
            if path.is_file():
                # The concurrent writer already published; nothing to do.
                with self._lock:
                    self._remember(key, artifact)
                return path
            # Concurrent writer mid-flight (or a stale lock from a killed
            # process): stage under a writer-unique name instead.  Both
            # renames are atomic and carry identical bytes.
            tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            with os.fdopen(fd, "w") as fp:
                fp.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._write_sidecar(key, payload)
        with self._lock:
            self.stats.writes += 1
            self._remember(key, artifact)
        return path

    def _write_sidecar(self, key: str, payload: str) -> None:
        """Publish the payload's sha256 next to the artifact (atomic).

        Written *after* the artifact rename: a crash in between leaves a
        sidecar-less file, which reads as a legacy (unchecked) artifact
        rather than a false corruption.
        """
        sidecar = self.integrity_path(key)
        digest = hashlib.sha256(payload.encode()).hexdigest()
        tmp = sidecar.with_name(
            f".{sidecar.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_text(digest + "\n")
            os.replace(tmp, sidecar)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- introspection -----------------------------------------------------

    def keys(self) -> list[str]:
        """Every persisted key (sorted; ignores in-flight temp files)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*/*.json"))

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def lru_keys(self) -> list[str]:
        """Keys currently warm in memory, oldest first (for tests/stats)."""
        with self._lock:
            return list(self._lru)

    def drop_memory(self) -> None:
        """Forget the warm layer (disk entries survive; next gets are cold)."""
        with self._lock:
            self._lru.clear()

    # -- internals ---------------------------------------------------------

    def _remember(self, key: str, artifact: dict) -> None:
        """Insert into the LRU, evicting the least recently used (locked)."""
        if self.lru_entries == 0:
            return
        self._lru[key] = artifact
        self._lru.move_to_end(key)
        while len(self._lru) > self.lru_entries:
            self._lru.popitem(last=False)


def publish(
    store: ArtifactStore,
    key: str,
    artifact: dict,
    mirror: str | pathlib.Path | None = None,
) -> pathlib.Path:
    """Persist ``artifact`` and optionally mirror it at a legacy path.

    The store is the canonical location; ``mirror`` (e.g. the historical
    ``benchmarks/results/dse_ks_grid.json``) becomes a symlink to the
    stored file so old consumers keep working, falling back to a byte
    copy on filesystems without symlink support.  Returns the canonical
    store path.
    """
    path = store.put(key, artifact)
    if mirror is not None:
        mirror = pathlib.Path(mirror)
        mirror.parent.mkdir(parents=True, exist_ok=True)
        try:
            if mirror.is_symlink() or mirror.exists():
                mirror.unlink()
            mirror.symlink_to(path.resolve())
        except OSError:
            shutil.copyfile(path, mirror)
    return path
