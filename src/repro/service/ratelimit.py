"""Per-client token-bucket rate limiting for the service front door.

Classic token bucket: each client id owns a bucket of ``capacity``
tokens refilled at ``refill_per_s``; a request spends one token, and an
empty bucket means HTTP 429 with a computed ``Retry-After``.  The clock
is injectable so tests exercise refill behaviour without sleeping.
Buckets are created on first sight of a client id and evicted
least-recently-seen beyond ``max_clients``, so an open service cannot
be memory-exhausted by id churn.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

#: Default bucket size (burst) and sustained refill rate.
DEFAULT_CAPACITY = 64.0
DEFAULT_REFILL_PER_S = 32.0


@dataclass
class Decision:
    """Outcome of one rate-limit check."""

    allowed: bool
    #: Seconds until one token is available (0.0 when allowed).
    retry_after: float = 0.0


class TokenBucket:
    """One client's bucket; time is supplied by the owner."""

    __slots__ = ("capacity", "refill_per_s", "tokens", "updated")

    def __init__(self, capacity: float, refill_per_s: float, now: float) -> None:
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self.tokens = float(capacity)
        self.updated = now

    def spend(self, now: float, cost: float = 1.0) -> Decision:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(
            self.capacity, self.tokens + elapsed * self.refill_per_s
        )
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return Decision(allowed=True)
        if self.refill_per_s <= 0.0:
            return Decision(allowed=False, retry_after=60.0)
        deficit = cost - self.tokens
        return Decision(
            allowed=False, retry_after=deficit / self.refill_per_s
        )


class RateLimiter:
    """Token buckets keyed by client id, with LRU eviction."""

    def __init__(
        self,
        capacity: float = DEFAULT_CAPACITY,
        refill_per_s: float = DEFAULT_REFILL_PER_S,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self.max_clients = max(1, max_clients)
        self.clock = clock
        self.rejected = 0
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def check(self, client_id: str, cost: float = 1.0) -> Decision:
        """Spend ``cost`` tokens from ``client_id``'s bucket."""
        now = self.clock()
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self.capacity, self.refill_per_s, now)
            self._buckets[client_id] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        self._buckets.move_to_end(client_id)
        decision = bucket.spend(now, cost)
        if not decision.allowed:
            self.rejected += 1
        return decision

    def __len__(self) -> int:
        return len(self._buckets)
