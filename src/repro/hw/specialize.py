"""Worker-FSM specialization: compile schedules into Python closures.

The base :class:`~repro.hw.worker.HwWorker` interprets ``Instruction``
objects on every tick: a long ``isinstance`` dispatch chain, an
``id()``-keyed environment dict per operand, and a per-block-entry rebuild
of the schedule's state table.  All of that is loop-invariant — the FSM,
the operand routing and the dispatch targets are fixed the moment the
pipeline is compiled — so ``engine="specialized"`` resolves it once per
function:

* every FSM state becomes a flat list of *step closures*; the per-opcode
  dispatch happens here, at build time, never on the hot path;
* every SSA value gets a slot in a flat ``regs`` list (constants are baked
  into the closures, globals are filled in at frame construction);
* the ``eval_binop``-family semantics are bound directly into the
  closures (same functions, same error messages, same rounding);
* branch edges pre-resolve the target's phi moves, so a taken edge is a
  batch of register copies instead of a phi walk.

Everything observable is kept **bit-identical** to the event engine:
``WorkerStats`` (including the exact ``ops_executed`` increment/decrement
order for blocked FIFO and join ops), stall attribution, telemetry
spans/states, fault-injection hooks (hang probe, back-pressure window,
block-transition marking) and the watchdog's wait-for-graph attributes
(``_frames[*].function``, ``_blocked_fifo``/``_blocked_index``/
``_blocked_loop``, ``last_category``).  The differential suite in
``tests/test_specialized_engine.py`` pins this against both oracles.

The clock loop is unchanged: a specialized system runs under the same
:class:`~repro.hw.engine.EventScheduler` as ``engine="event"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import InterpError, SimulationError
from ..interp.interpreter import MALLOC_NAMES
from ..interp.memory import round_f32, to_unsigned, wrap_int
from ..interp.ops import eval_cast, eval_gep
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    FCMP_FUNCS,
    FLOAT_BINOP_FUNCS,
    GEP,
    ICMP_FUNCS,
    INT_BINOP_FUNCS,
    Alloca,
    BinaryOp,
    Call,
    Cast,
    CondBranch,
    Consume,
    FCmp,
    ICmp,
    Instruction,
    Jump,
    Load,
    ParallelFork,
    ParallelJoin,
    Phi,
    Produce,
    ProduceBroadcast,
    Ret,
    RetrieveLiveout,
    Select,
    Store,
    StoreLiveout,
)
from ..ir.types import ArrayType, FloatType, StructType
from ..ir.values import Constant, GlobalVariable
from ..rtl.schedule import FunctionSchedule, schedule_function
from ..telemetry.events import CycleCategory
from .worker import NEVER, HwWorker

if TYPE_CHECKING:  # pragma: no cover
    from .system import AcceleratorSystem

# Step outcomes (compared with ``is`` in the tick loop; module-level
# constants so every closure returns the same interned object).
_OK = "ok"
_WAIT_MEM = "wait_mem"
_WAIT_FULL = "wait_full"
_WAIT_EMPTY = "wait_empty"
_WAIT_JOIN = "wait_join"
_CALL = "call"
_RET = "ret"
_BRANCH = "branch"

#: Opcodes whose int-binop operands are reinterpreted as unsigned
#: (mirrors :func:`repro.interp.ops.eval_binop` exactly).
_UNSIGNED_BINOPS = ("udiv", "urem", "lshr", "ult")

#: Instruction classes whose steps touch only the frame's registers.
_PURE_OPS = (BinaryOp, ICmp, FCmp, GEP, Cast, Select, Phi)


class SpecBlock:
    """One basic block compiled to per-state step-closure lists.

    ``states[s]`` holds the step closures issued in FSM state ``s`` and
    ``probes[s]`` the aligned side-effect-free would-block probes (None
    for ops that can never stall).  ``entry_cursor`` is the number of
    leading phi steps in state 0, skipped when the block is entered via a
    branch edge (the edge already latched the phi registers).
    """

    __slots__ = ("label", "trace_label", "n_states", "states", "probes",
                 "pure", "entry_cursor")

    def __init__(self, label: str, trace_label: str, n_states: int) -> None:
        self.label = label
        self.trace_label = trace_label
        self.n_states = n_states
        self.states: list[list] = []
        self.probes: list[list] = []
        #: ``pure[s]`` — every op in state ``s`` reads/writes only the
        #: frame's private register file (no memory, FIFO, liveout, fork,
        #: join, call or control flow).  A run of pure states can be
        #: executed in one tick and attributed as a batch of COMPUTE
        #: cycles: nothing in it is observable by any other worker.
        self.pure: list[bool] = []
        self.entry_cursor = 0


class SpecFrame:
    """Activation record of a specialized function: a flat register file."""

    __slots__ = ("function", "program", "block", "state", "cursor", "steps",
                 "regs", "ret_slot")

    def __init__(
        self,
        program: "SpecializedProgram",
        system: "AcceleratorSystem",
        ret_slot: int | None = None,
    ) -> None:
        self.function = program.function
        self.program = program
        entry = program.entry
        self.block = entry
        self.state = 0
        self.cursor = 0
        self.steps = entry.states[0]
        regs: list = [None] * program.n_slots
        if program.global_slots:
            addresses = system.global_addresses
            for name, slot in program.global_slots:
                regs[slot] = addresses[name]
        self.regs = regs
        self.ret_slot = ret_slot


class SpecializedProgram:
    """One function's FSM schedule compiled into closures (shared by all
    workers and systems running that function)."""

    def __init__(self, function: Function, schedule: FunctionSchedule) -> None:
        self.function = function
        self._slots: dict[int, int] = {}  # id(arg/inst) -> register slot
        self._globals: dict[str, int] = {}  # global name -> register slot
        self.n_slots = 0
        self._blocks: dict[int, SpecBlock] = {}
        for arg in function.args:
            self._slots[id(arg)] = self._alloc()
        for block in function.blocks:
            for inst in block.instructions:
                self._slots[id(inst)] = self._alloc()
        for block in function.blocks:
            bs = schedule.block_schedule(block)
            self._blocks[id(block)] = SpecBlock(
                block.short_name(),
                f"{function.name}:{block.short_name()}",
                bs.n_states,
            )
        self.entry = self._blocks[id(function.entry)]
        for block in function.blocks:
            self._compile_block(block, schedule.block_schedule(block))
        #: (name, slot) pairs for frame construction, deterministic order.
        self.global_slots = sorted(self._globals.items())

    # -- slot plumbing ------------------------------------------------------

    def _alloc(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def slot_of(self, value) -> int:
        return self._slots[id(value)]

    def _bind(self, value) -> tuple[int, int | float | None]:
        """Operand descriptor ``(slot, const)``: closures read
        ``regs[slot]`` when ``slot >= 0``, else the baked constant."""
        if isinstance(value, Constant):
            return -1, value.value
        if isinstance(value, GlobalVariable):
            slot = self._globals.get(value.name)
            if slot is None:
                slot = self._globals[value.name] = self._alloc()
            return slot, None
        return self._slots[id(value)], None

    # -- block compilation --------------------------------------------------

    def _compile_block(self, block: BasicBlock, bs) -> None:
        sb = self._blocks[id(block)]
        table = bs.states  # built once, at specialize time
        for state_ops in table:
            steps: list = []
            probes: list = []
            for inst in state_ops:
                step, probe = self._compile_inst(inst, block)
                steps.append(step)
                probes.append(probe)
            sb.states.append(steps)
            sb.probes.append(probes)
            sb.pure.append(
                all(isinstance(inst, _PURE_OPS) for inst in state_ops)
            )
        # Leading phis of state 0 are latched by the incoming edge; a
        # branch entry starts past them (function entry executes them as
        # no-op steps, matching the interpreted worker's cursor rule).
        ops0 = table[0] if table else []
        skip = 0
        while skip < len(ops0) and isinstance(ops0[skip], Phi):
            skip += 1
        sb.entry_cursor = skip

    def _compile_edge(self, from_block: BasicBlock, target: BasicBlock):
        """Closure applying one CFG edge: latch the target's phis from
        this edge's incoming values (fetched atomically, before any phi
        register is overwritten), then enter the target block."""
        sb = self._blocks[id(target)]
        phis = target.phis()
        binds = [self._bind(phi.incoming_for(from_block)) for phi in phis]
        slots = [self._slots[id(phi)] for phi in phis]
        n_phis = len(phis)

        def edge(worker: HwWorker, frame: SpecFrame) -> None:
            regs = frame.regs
            if n_phis:
                values = [regs[s] if s >= 0 else c for s, c in binds]
                for slot, value in zip(slots, values):
                    regs[slot] = value
                worker.stats.ops_executed["phi"] += n_phis
            frame.block = sb
            frame.state = 0
            frame.steps = sb.states[0]
            frame.cursor = sb.entry_cursor

        return edge

    # -- instruction compilation --------------------------------------------

    def _compile_inst(self, inst: Instruction, block: BasicBlock):
        """Return ``(step, probe)`` closures for one scheduled op."""
        opcode = inst.opcode
        if isinstance(inst, BinaryOp):
            return self._compile_binop(inst), None
        if isinstance(inst, ICmp):
            return self._compile_icmp(inst), None
        if isinstance(inst, FCmp):
            dst = self._slots[id(inst)]
            ia, ca = self._bind(inst.lhs)
            ib, cb = self._bind(inst.rhs)
            fn = FCMP_FUNCS[inst.pred]

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                a = regs[ia] if ia >= 0 else ca
                b = regs[ib] if ib >= 0 else cb
                regs[dst] = int(fn(a, b))
                return _OK

            return step, None
        if isinstance(inst, GEP):
            return self._compile_gep(inst), None
        if isinstance(inst, Cast):
            return self._compile_cast(inst), None
        if isinstance(inst, Select):
            dst = self._slots[id(inst)]
            ic, cc = self._bind(inst.operands[0])
            it, ct = self._bind(inst.operands[1])
            if_, cf = self._bind(inst.operands[2])

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                c = regs[ic] if ic >= 0 else cc
                t = regs[it] if it >= 0 else ct
                f = regs[if_] if if_ >= 0 else cf
                regs[dst] = t if c else f
                return _OK

            return step, None
        if isinstance(inst, Load):
            return self._compile_load(inst), None
        if isinstance(inst, Store):
            return self._compile_store(inst), None
        if isinstance(inst, Produce):
            return self._compile_produce(inst)
        if isinstance(inst, ProduceBroadcast):
            return self._compile_produce_broadcast(inst)
        if isinstance(inst, Consume):
            return self._compile_consume(inst)
        if isinstance(inst, StoreLiveout):
            lid = inst.liveout_id
            iv, cv = self._bind(inst.value)

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                worker.system.liveout_regs[lid] = regs[iv] if iv >= 0 else cv
                return _OK

            return step, None
        if isinstance(inst, RetrieveLiveout):
            lid = inst.liveout_id
            dst = self._slots[id(inst)]

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                liveouts = worker.system.liveout_regs
                if lid not in liveouts:
                    raise SimulationError(f"liveout #{lid} never stored")
                frame.regs[dst] = liveouts[lid]
                return _OK

            return step, None
        if isinstance(inst, ParallelFork):
            binds = [self._bind(v) for v in inst.liveins]

            def step(worker, frame, cycle, inst=inst):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                liveins = [regs[s] if s >= 0 else c for s, c in binds]
                worker.system.fork_worker(inst, liveins, cycle)
                return _OK

            return step, None
        if isinstance(inst, ParallelJoin):
            return self._compile_join(inst)
        if isinstance(inst, Call):
            return self._compile_call(inst), None
        if isinstance(inst, Ret):
            return self._compile_ret(inst), None
        if isinstance(inst, Jump):
            edge = self._compile_edge(block, inst.target)

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                edge(worker, frame)
                return _BRANCH

            return step, None
        if isinstance(inst, CondBranch):
            ic, cc = self._bind(inst.cond)
            edge_true = self._compile_edge(block, inst.if_true)
            edge_false = self._compile_edge(block, inst.if_false)

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                cond = frame.regs[ic] if ic >= 0 else cc
                (edge_true if cond else edge_false)(worker, frame)
                return _BRANCH

            return step, None
        if isinstance(inst, Alloca):
            dst = self._slots[id(inst)]
            atype = inst.allocated_type

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                frame.regs[dst] = worker.system.memory.alloc_object(
                    atype, site=-2
                )
                return _OK

            return step, None
        if isinstance(inst, Phi):
            # Only reached when a frame starts at the function entry (the
            # branch-entry cursor skips latched phis): count and move on,
            # exactly like the interpreted worker's phi case.
            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                return _OK

            return step, None

        def step(worker, frame, cycle):  # pragma: no cover - malformed IR
            worker.stats.ops_executed[opcode] += 1
            raise SimulationError(f"worker cannot execute opcode {opcode}")

        return step, None

    def _compile_binop(self, inst: BinaryOp):
        dst = self._slots[id(inst)]
        opcode = inst.opcode
        ia, ca = self._bind(inst.lhs)
        ib, cb = self._bind(inst.rhs)
        if opcode in FLOAT_BINOP_FUNCS:
            fn = FLOAT_BINOP_FUNCS[opcode]
            narrow = isinstance(inst.type, FloatType) and inst.type.bits == 32

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                a = regs[ia] if ia >= 0 else ca
                b = regs[ib] if ib >= 0 else cb
                try:
                    result = fn(a, b)
                except ZeroDivisionError:
                    raise InterpError("float division by zero") from None
                regs[dst] = round_f32(result) if narrow else result
                return _OK

            return step
        bits = inst.type.bits  # type: ignore[union-attr]
        fn = INT_BINOP_FUNCS[opcode]
        if opcode in _UNSIGNED_BINOPS:

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                a = to_unsigned(int(regs[ia] if ia >= 0 else ca), bits)
                b = to_unsigned(int(regs[ib] if ib >= 0 else cb), bits)
                try:
                    raw = fn(a, b)
                except ZeroDivisionError:
                    raise InterpError("integer division by zero") from None
                regs[dst] = wrap_int(raw, bits)
                return _OK

            return step

        def step(worker, frame, cycle):
            worker.stats.ops_executed[opcode] += 1
            regs = frame.regs
            a = regs[ia] if ia >= 0 else ca
            b = regs[ib] if ib >= 0 else cb
            try:
                raw = fn(int(a), int(b))
            except ZeroDivisionError:
                raise InterpError("integer division by zero") from None
            regs[dst] = wrap_int(raw, bits)
            return _OK

        return step

    def _compile_icmp(self, inst: ICmp):
        dst = self._slots[id(inst)]
        opcode = inst.opcode
        ia, ca = self._bind(inst.lhs)
        ib, cb = self._bind(inst.rhs)
        fn = ICMP_FUNCS[inst.pred]
        if inst.pred.startswith("u") or inst.lhs.type.is_pointer:
            bits = 32 if inst.lhs.type.is_pointer else inst.lhs.type.bits

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                a = to_unsigned(int(regs[ia] if ia >= 0 else ca), bits)
                b = to_unsigned(int(regs[ib] if ib >= 0 else cb), bits)
                regs[dst] = int(fn(a, b))
                return _OK

            return step

        def step(worker, frame, cycle):
            worker.stats.ops_executed[opcode] += 1
            regs = frame.regs
            a = regs[ia] if ia >= 0 else ca
            b = regs[ib] if ib >= 0 else cb
            regs[dst] = int(fn(a, b))
            return _OK

        return step

    def _compile_gep(self, inst: GEP):
        dst = self._slots[id(inst)]
        opcode = inst.opcode
        ibase, cbase = self._bind(inst.base)
        binds = [self._bind(i) for i in inst.indices]
        # Reduce the address computation to ``base + const + Σ coef·idx``
        # by walking the pointee type at specialize time (struct field
        # offsets need constant indices — the frontend only emits those).
        pointee = inst.base.type.pointee  # type: ignore[union-attr]
        terms: list[tuple[int, tuple[int, object]]] = [(pointee.size(), binds[0])]
        const_off = 0
        current = pointee
        static = True
        for bind, _idx in zip(binds[1:], inst.indices[1:]):
            if isinstance(current, StructType):
                slot, const = bind
                if slot >= 0:
                    static = False
                    break
                field = int(const)  # type: ignore[arg-type]
                const_off += current.field_offset(field)
                current = current.field_type(field)
            elif isinstance(current, ArrayType):
                terms.append((current.element.size(), bind))
                current = current.element
            else:
                static = False
                break
        if static:
            live: list[tuple[int, int]] = []
            for coef, (slot, const) in terms:
                if slot < 0:
                    const_off += coef * int(const)  # type: ignore[arg-type]
                else:
                    live.append((coef, slot))
            if len(live) == 1:
                coef0, s0 = live[0]

                def step(worker, frame, cycle):
                    worker.stats.ops_executed[opcode] += 1
                    regs = frame.regs
                    base = regs[ibase] if ibase >= 0 else cbase
                    regs[dst] = (
                        int(base) + coef0 * int(regs[s0]) + const_off
                    ) & 0xFFFFFFFF
                    return _OK

                return step
            if len(live) == 2:
                coef0, s0 = live[0]
                coef1, s1 = live[1]

                def step(worker, frame, cycle):
                    worker.stats.ops_executed[opcode] += 1
                    regs = frame.regs
                    base = regs[ibase] if ibase >= 0 else cbase
                    regs[dst] = (
                        int(base)
                        + coef0 * int(regs[s0])
                        + coef1 * int(regs[s1])
                        + const_off
                    ) & 0xFFFFFFFF
                    return _OK

                return step

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                addr = int(regs[ibase] if ibase >= 0 else cbase) + const_off
                for coef, slot in live:
                    addr += coef * int(regs[slot])
                regs[dst] = addr & 0xFFFFFFFF
                return _OK

            return step

        def step(worker, frame, cycle, inst=inst):
            worker.stats.ops_executed[opcode] += 1
            regs = frame.regs
            base = regs[ibase] if ibase >= 0 else cbase
            idx = [regs[s] if s >= 0 else c for s, c in binds]
            regs[dst] = eval_gep(inst, base, idx)
            return _OK

        return step

    def _compile_cast(self, inst: Cast):
        dst = self._slots[id(inst)]
        opcode = inst.opcode
        iv, cv = self._bind(inst.value)
        if opcode in ("trunc", "fptosi"):
            bits = inst.type.bits  # type: ignore[union-attr]

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                regs[dst] = wrap_int(int(regs[iv] if iv >= 0 else cv), bits)
                return _OK

            return step
        if opcode == "zext":
            src_bits = inst.value.type.bits  # type: ignore[union-attr]

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                regs[dst] = to_unsigned(
                    int(regs[iv] if iv >= 0 else cv), src_bits
                )
                return _OK

            return step
        if opcode == "sext":

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                regs = frame.regs
                regs[dst] = int(regs[iv] if iv >= 0 else cv)
                return _OK

            return step

        def step(worker, frame, cycle, inst=inst):
            worker.stats.ops_executed[opcode] += 1
            regs = frame.regs
            regs[dst] = eval_cast(inst, regs[iv] if iv >= 0 else cv)
            return _OK

        return step

    def _compile_load(self, inst: Load):
        dst = self._slots[id(inst)]
        opcode = inst.opcode
        ip, cp = self._bind(inst.pointer)
        type_ = inst.type

        def complete(worker, frame, addr):
            frame.regs[dst] = worker.system.memory.load(addr, type_)

        def step(worker, frame, cycle):
            worker.stats.ops_executed[opcode] += 1
            regs = frame.regs
            addr = int(regs[ip] if ip >= 0 else cp)
            ready = worker.cache.access(addr, False, cycle)
            worker.stats.loads += 1
            worker._pending_mem = (complete, addr)
            worker._waiting_until = ready
            return _WAIT_MEM

        return step

    def _compile_store(self, inst: Store):
        opcode = inst.opcode
        ip, cp = self._bind(inst.pointer)
        iv, cv = self._bind(inst.value)
        vtype = inst.value.type

        def complete(worker, frame, addr):
            # The stored value is fetched at completion time, exactly as
            # the interpreted worker's _complete_memory does.
            regs = frame.regs
            worker.system.memory.store(
                addr, vtype, regs[iv] if iv >= 0 else cv
            )

        def step(worker, frame, cycle):
            worker.stats.ops_executed[opcode] += 1
            regs = frame.regs
            addr = int(regs[ip] if ip >= 0 else cp)
            ready = worker.cache.access(addr, True, cycle)
            worker.stats.stores += 1
            worker._pending_mem = (complete, addr)
            worker._waiting_until = ready
            return _WAIT_MEM

        return step

    def _compile_produce(self, inst: Produce):
        opcode = inst.opcode
        channel = inst.channel
        n_channels = channel.n_channels
        isel, csel = self._bind(inst.worker_select)
        ival, cval = self._bind(inst.value)

        def step(worker, frame, cycle):
            stats = worker.stats
            stats.ops_executed[opcode] += 1
            regs = frame.regs
            fifo = worker.system.fifo_for(channel)
            index = int(regs[isel] if isel >= 0 else csel) % n_channels
            blocked_until = (
                fifo.injected_block_until(cycle)
                if worker._injector.enabled
                else 0
            )
            if blocked_until > cycle or not fifo.can_push(index):
                if (
                    blocked_until > cycle
                    and worker.last_category is not CycleCategory.FIFO_FULL
                ):
                    worker._injector.note_backpressure_block(fifo, cycle)
                fifo.stats.full_stall_cycles += 1
                stats.ops_executed[opcode] -= 1
                worker._blocked_fifo = fifo
                worker._blocked_index = index
                worker._blocked_until = blocked_until
                return _WAIT_FULL
            fifo.push(index, regs[ival] if ival >= 0 else cval, cycle)
            stats.fifo_pushes += 1
            return _OK

        def probe(worker, frame, cycle):
            fifo = worker.system.fifo_for(channel)
            regs = frame.regs
            index = int(regs[isel] if isel >= 0 else csel) % n_channels
            if worker._injector.enabled and fifo.injected_block_until(cycle) > cycle:
                return True
            return not fifo.can_push(index)

        return step, probe

    def _compile_produce_broadcast(self, inst: ProduceBroadcast):
        opcode = inst.opcode
        channel = inst.channel
        n_channels = channel.n_channels
        ival, cval = self._bind(inst.value)

        def step(worker, frame, cycle):
            stats = worker.stats
            stats.ops_executed[opcode] += 1
            fifo = worker.system.fifo_for(channel)
            blocked_until = (
                fifo.injected_block_until(cycle)
                if worker._injector.enabled
                else 0
            )
            if blocked_until > cycle or not fifo.can_push_broadcast():
                if (
                    blocked_until > cycle
                    and worker.last_category is not CycleCategory.FIFO_FULL
                ):
                    worker._injector.note_backpressure_block(fifo, cycle)
                fifo.stats.full_stall_cycles += 1
                stats.ops_executed[opcode] -= 1
                worker._blocked_fifo = fifo
                worker._blocked_index = None  # needs space in every queue
                worker._blocked_until = blocked_until
                return _WAIT_FULL
            regs = frame.regs
            fifo.push_broadcast(regs[ival] if ival >= 0 else cval, cycle)
            stats.fifo_pushes += n_channels
            return _OK

        def probe(worker, frame, cycle):
            fifo = worker.system.fifo_for(channel)
            if worker._injector.enabled and fifo.injected_block_until(cycle) > cycle:
                return True
            return not fifo.can_push_broadcast()

        return step, probe

    def _compile_consume(self, inst: Consume):
        opcode = inst.opcode
        channel = inst.channel
        n_channels = channel.n_channels
        dst = self._slots[id(inst)]
        select = inst.worker_select
        isel, csel = self._bind(select) if select is not None else (-1, None)
        has_select = select is not None

        def step(worker, frame, cycle):
            stats = worker.stats
            stats.ops_executed[opcode] += 1
            fifo = worker.system.fifo_for(channel)
            if has_select:
                regs = frame.regs
                index = int(regs[isel] if isel >= 0 else csel) % n_channels
            else:
                index = worker.worker_id % n_channels
            if not fifo.can_pop(index):
                fifo.stats.empty_stall_cycles += 1
                stats.ops_executed[opcode] -= 1
                worker._blocked_fifo = fifo
                worker._blocked_index = index
                return _WAIT_EMPTY
            frame.regs[dst] = fifo.pop(index, cycle)
            stats.fifo_pops += 1
            return _OK

        def probe(worker, frame, cycle):
            fifo = worker.system.fifo_for(channel)
            if has_select:
                regs = frame.regs
                index = int(regs[isel] if isel >= 0 else csel) % n_channels
            else:
                index = worker.worker_id % n_channels
            return not fifo.can_pop(index)

        return step, probe

    def _compile_join(self, inst: ParallelJoin):
        opcode = inst.opcode
        loop_id = inst.loop_id

        def step(worker, frame, cycle):
            worker.stats.ops_executed[opcode] += 1
            system = worker.system
            if not system.join_ready(loop_id):
                worker.stats.ops_executed[opcode] -= 1
                worker._blocked_loop = loop_id
                return _WAIT_JOIN
            system.finish_join(loop_id, cycle)
            return _OK

        def probe(worker, frame, cycle):
            return not worker.system.join_ready(loop_id)

        return step, probe

    def _compile_call(self, inst: Call):
        opcode = inst.opcode
        dst = self._slots[id(inst)]
        callee = inst.callee
        if callee.is_declaration:
            if callee.name in MALLOC_NAMES:
                isz, csz = self._bind(inst.args[0])

                def step(worker, frame, cycle):
                    worker.stats.ops_executed[opcode] += 1
                    regs = frame.regs
                    size = int(regs[isz] if isz >= 0 else csz)
                    regs[dst] = worker.system.memory.malloc(size, site=-4)
                    return _OK

                return step

            def step(worker, frame, cycle):
                worker.stats.ops_executed[opcode] += 1
                raise SimulationError(
                    f"call to undefined @{callee.name} in hardware"
                )

            return step
        arg_binds = [self._bind(a) for a in inst.args]
        # The callee program is resolved lazily (first execution) so
        # mutually recursive functions can specialize each other.
        cell: list = [None]

        def step(worker, frame, cycle):
            worker.stats.ops_executed[opcode] += 1
            bound = cell[0]
            if bound is None:
                program = specialized_for(callee)
                bound = cell[0] = (
                    program,
                    [program.slot_of(formal) for formal in callee.args],
                )
            program, formal_slots = bound
            new_frame = SpecFrame(program, worker.system, ret_slot=dst)
            nregs = new_frame.regs
            regs = frame.regs
            for slot, (s, c) in zip(formal_slots, arg_binds):
                nregs[slot] = regs[s] if s >= 0 else c
            worker._frames.append(new_frame)
            return _CALL

        return step

    def _compile_ret(self, inst: Ret):
        opcode = inst.opcode
        value_op = inst.value
        iv, cv = self._bind(value_op) if value_op is not None else (-1, None)
        has_value = value_op is not None

        def step(worker, frame, cycle):
            worker.stats.ops_executed[opcode] += 1
            if has_value:
                regs = frame.regs
                value = regs[iv] if iv >= 0 else cv
            else:
                value = None
            frames = worker._frames
            frames.pop()
            if not frames:
                worker.done = True
                worker.system.worker_finished(worker)
                worker.return_value = value
                return _RET
            caller = frames[-1]
            if value is not None:
                caller.regs[frame.ret_slot] = value
            caller.cursor += 1
            return _RET

        return step


def specialized_for(function: Function) -> SpecializedProgram:
    """The (cached) specialized program for ``function``.

    The cache lives on the function object itself, so the one-time
    specialization cost is amortized across every worker, system and
    process-local run that executes the function — exactly the sharing
    DSE and fault sweeps need.
    """
    program = getattr(function, "_specialized_program", None)
    if program is None:
        program = SpecializedProgram(function, schedule_function(function))
        function._specialized_program = program  # type: ignore[attr-defined]
    return program


class SpecializedWorker(HwWorker):
    """An :class:`HwWorker` whose FSM executes pre-compiled step closures.

    Only value plumbing and dispatch are overridden; stall categories,
    event arming, fault hooks and stats attribution are the inherited
    (bit-identical) machinery.
    """

    def __init__(
        self,
        name: str,
        function: Function,
        args,
        system: "AcceleratorSystem",
        worker_id: int = 0,
        start_cycle: int = 0,
    ) -> None:
        super().__init__(
            name, function, args, system,
            worker_id=worker_id, start_cycle=start_cycle,
        )
        # Compute-run batching (see ``tick``) is legal only when nothing
        # observes per-cycle state mid-run: no trace sink, no invariant
        # monitor, no fault injector.  All three are fixed at system
        # construction, so decide once.
        self._can_batch = (
            not self._trace
            and system.monitor is None
            and not system.injector.enabled
        )

    def _make_entry_frames(self, function: Function, args):
        program = specialized_for(function)
        if len(args) != len(function.args):
            raise SimulationError(
                f"worker {self.name}: expected {len(function.args)} args, "
                f"got {len(args)}"
            )
        frame = SpecFrame(program, self.system)
        regs = frame.regs
        for formal, actual in zip(function.args, args):
            regs[program.slot_of(formal)] = actual
        return [frame]

    def tick(self, cycle: int) -> None:
        """Fused tick + attribute + arm for the event-engine hot path.

        Folds :meth:`HwWorker.tick`'s category dispatch and
        :meth:`HwWorker._arm` into the step loop's exit paths (one branch
        chain instead of three), and — when no trace sink, monitor or
        injector is attached — executes runs of *pure* FSM states (states
        whose ops touch only the frame's registers) in a single tick,
        attributing the whole run as a batch of COMPUTE cycles.  Batching
        is invisible to every other worker: pure states read and write
        nothing shared, the worker stays runnable (finite ``next_due``),
        and the batch never extends past ``max_cycles`` (so the cycle
        budget fires at the same cycle as the unbatched engines).
        """
        engine = self.engine
        if engine is None or self._trace:
            # Lockstep oracle or traced run: the base path emits per-cycle
            # trace events and keeps per-cycle semantics throughout.
            HwWorker.tick(self, cycle)
            return
        stats = self.stats
        if self.done or self.hung:
            stats.idle_cycles += 1
            self.last_category = CycleCategory.IDLE
            self.synced_until = cycle + 1
            self.next_due = NEVER
            self.wait_category = CycleCategory.IDLE
            return
        if cycle < self.start_cycle:
            stats.idle_cycles += 1
            self.last_category = CycleCategory.IDLE
            self.synced_until = cycle + 1
            self.next_due = max(self.start_cycle, cycle + 1)
            self.wait_category = CycleCategory.IDLE
            return
        if cycle < self._waiting_until:
            stats.mem_stall_cycles += 1
            self.last_category = CycleCategory.CACHE
            self.synced_until = cycle + 1
            self.next_due = max(self._waiting_until, cycle + 1)
            self.wait_category = CycleCategory.CACHE
            return
        injector = self._injector
        if (
            injector.enabled
            and injector.hang_pending(self, cycle)
            and not self._would_block(cycle)
        ):
            self.hung = True
            injector.hang_triggered(self)
            stats.idle_cycles += 1
            self.last_category = CycleCategory.IDLE
            self.synced_until = cycle + 1
            self.next_due = NEVER
            self.wait_category = CycleCategory.IDLE
            return
        if self._pending_mem is not None:
            self._complete_memory()
        frame = self._frames[-1]
        steps = frame.steps
        cursor = frame.cursor
        n = len(steps)
        executed = 0
        while cursor < n:
            outcome = steps[cursor](self, frame, cycle)
            if outcome is _OK:
                cursor += 1
                frame.cursor = cursor
                executed += 1
                continue
            self.progress += executed
            if outcome is _WAIT_MEM:
                stats.mem_stall_cycles += 1
                self.last_category = CycleCategory.CACHE
                self.synced_until = cycle + 1
                self.next_due = max(self._waiting_until, cycle + 1)
                self.wait_category = CycleCategory.CACHE
                return
            if outcome is _WAIT_FULL:
                stats.fifo_full_stall_cycles += 1
                self.last_category = CycleCategory.FIFO_FULL
                self.synced_until = cycle + 1
                self.wait_category = CycleCategory.FIFO_FULL
                if self._blocked_until > cycle:
                    self.next_due = self._blocked_until
                else:
                    self.next_due = NEVER
                    engine.wait_on_fifo(self, self._blocked_fifo)
                return
            if outcome is _WAIT_EMPTY:
                stats.fifo_empty_stall_cycles += 1
                self.last_category = CycleCategory.FIFO_EMPTY
                self.synced_until = cycle + 1
                self.wait_category = CycleCategory.FIFO_EMPTY
                self.next_due = NEVER
                engine.wait_on_fifo(self, self._blocked_fifo)
                return
            if outcome is _WAIT_JOIN:
                stats.join_stall_cycles += 1
                self.last_category = CycleCategory.JOIN
                self.synced_until = cycle + 1
                self.wait_category = CycleCategory.JOIN
                self.next_due = NEVER
                engine.wait_on_join(self, self._blocked_loop)
                return
            # call / ret / branch: the closure already moved the frame.
            self.progress += 1
            stats.active_cycles += 1
            self.last_category = CycleCategory.COMPUTE
            self.synced_until = cycle + 1
            if self.done or self.hung:
                self.next_due = NEVER
                self.wait_category = CycleCategory.IDLE
            else:
                self.next_due = cycle + 1
            return
        # State complete: advance within the block (one state per cycle).
        self.progress += executed + 1
        block = frame.block
        state = frame.state + 1
        if state >= block.n_states:
            raise SimulationError(
                f"worker {self.name}: fell off the end of block "
                f"{block.label} (missing terminator?)"
            )
        steps = block.states[state]
        k = 1
        if self._can_batch:
            # Absorb the following run of pure states: each absorbed
            # state is one more COMPUTE cycle.  The loop always stops
            # before the block ends (the terminator state is impure).
            pure = block.pure
            max_cycles = self.system.max_cycles
            while pure[state] and cycle + k < max_cycles:
                for step in steps:
                    step(self, frame, cycle)
                self.progress += len(steps) + 1
                state += 1
                k += 1
                steps = block.states[state]
        frame.state = state
        frame.cursor = 0
        frame.steps = steps
        stats.active_cycles += k
        self.last_category = CycleCategory.COMPUTE
        self.synced_until = cycle + k
        self.next_due = cycle + k

    def _tick(self, cycle: int) -> CycleCategory:
        if self.done or self.hung:
            return CycleCategory.IDLE
        if cycle < self.start_cycle:
            return CycleCategory.IDLE
        if cycle < self._waiting_until:
            return CycleCategory.CACHE
        if (
            self._injector.enabled
            and self._injector.hang_pending(self, cycle)
            and not self._would_block(cycle)
        ):
            self.hung = True
            self._injector.hang_triggered(self)
            return CycleCategory.IDLE
        if self._pending_mem is not None:
            self._complete_memory()
        frame = self._frames[-1]
        steps = frame.steps
        cursor = frame.cursor
        n = len(steps)
        while cursor < n:
            outcome = steps[cursor](self, frame, cycle)
            if outcome is _OK:
                cursor += 1
                frame.cursor = cursor
                self.progress += 1
                continue
            if outcome is _WAIT_MEM:
                return CycleCategory.CACHE
            if outcome is _WAIT_FULL:
                return CycleCategory.FIFO_FULL
            if outcome is _WAIT_EMPTY:
                return CycleCategory.FIFO_EMPTY
            if outcome is _WAIT_JOIN:
                return CycleCategory.JOIN
            # call / ret / branch: the closure already moved the frame.
            self.progress += 1
            if self._trace and not self.done:
                self._emit_state(cycle)
            return CycleCategory.COMPUTE
        # State complete: advance within the block (one state per cycle).
        self.progress += 1
        frame.state += 1
        frame.cursor = 0
        if frame.state >= frame.block.n_states:
            raise SimulationError(
                f"worker {self.name}: fell off the end of block "
                f"{frame.block.label} (missing terminator?)"
            )
        frame.steps = frame.block.states[frame.state]
        if self._trace:
            self._emit_state(cycle)
        return CycleCategory.COMPUTE

    def _would_block(self, cycle: int) -> bool:
        if self._pending_mem is not None:
            return False  # completing the outstanding access is progress
        frame = self._frames[-1]
        if frame.cursor >= len(frame.steps):
            return False  # state advance is progress
        probe = frame.block.probes[frame.state][frame.cursor]
        if probe is None:
            return False
        return probe(self, frame, cycle)

    def _complete_memory(self) -> None:
        complete, addr = self._pending_mem  # type: ignore[misc]
        frame = self._frames[-1]
        complete(self, frame, addr)
        self._pending_mem = None
        frame.cursor += 1
        self.progress += 1

    def _emit_state(self, cycle: int) -> None:
        frame = self._frames[-1]
        self._sink.worker_state(
            self.name, cycle, frame.block.trace_label, frame.state
        )
